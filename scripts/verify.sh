#!/usr/bin/env bash
# Offline verification gate: formatting, lints, build, tests.
#
# Everything runs with --offline — the workspace has no external
# dependencies by policy (see DESIGN.md §5), so a bare toolchain with no
# registry access must be able to pass this script end to end.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (warnings denied)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --offline --release --workspace

echo "== cargo test"
cargo test --offline --workspace -q

echo "verify: OK"
