#!/usr/bin/env bash
# Offline verification gate: formatting, lints, policy lint, build, tests.
#
# Everything runs with --offline — the workspace has no external
# dependencies by policy (see DESIGN.md §5), so a bare toolchain with no
# registry access must be able to pass this script end to end.
#
# Usage:
#   scripts/verify.sh               full gate
#   scripts/verify.sh --fix-allow   run only the policy lint, printing
#                                   ready-to-paste lint:allow comments
#                                   for each finding (triage mode)
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--fix-allow" ]]; then
    exec cargo run --offline -q -p lockgran-lint -- --fix-allow
fi

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (warnings denied)"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== lockgran-lint (static analysis: lock protocol, determinism flow, policy)"
if [[ -n "${GITHUB_ACTIONS:-}" ]]; then
    # Under Actions, emit workflow commands so findings show up as
    # inline annotations on the PR diff (same exit status either way).
    cargo run --offline -q -p lockgran-lint -- --github
else
    cargo run --offline -q -p lockgran-lint
fi

echo "== cargo build --release"
cargo build --offline --release --workspace

echo "== differential property test (lock table vs ordered-map oracle, quick profile)"
# QUICK_PROP trims the seed sweep (24 → 4 seeds per shape) so the
# cross-check runs early and fast; the full sweep still runs as part of
# the workspace test pass below.
QUICK_PROP=1 cargo test --offline -q -p lockgran-lockmgr --test prop_difftable

echo "== cargo test"
cargo test --offline --workspace -q

echo "== determinism under parallelism (jobs = 1/2/8 byte-identical)"
cargo test --offline -q --test parallel_determinism

echo "== twophase smoke (incremental 2PL end to end: deadlocks detected, victims replayed)"
# Contended single run in the new conflict mode, then a quick extI
# figure pass (explicit vs twophase under an 80/20 hot spot). Both are
# cheap; the figure's own unit tests carry the shape assertions.
# Capture, then grep: `grep -q` exits on first match and closes the
# pipe mid-print, which the binary reports as a broken-pipe panic.
twophase_out=$(cargo run --offline -q --release --bin lockgran -- run --conflict twophase \
    --ltot 10 --ntrans 50 --maxtransize 50 --placement random --tmax 1000 --seed 7)
grep -q "deadlocks" <<<"$twophase_out" || { echo "twophase run smoke failed"; exit 1; }
cargo run --offline -q --release --bin lockgran -- extI --quick --jobs 2 > /dev/null

echo "== capacity smoke (scaled-down bench_capacity, single pass per point)"
# One iteration of each capacity point at the quick scale: proves the
# 10⁷-entity code paths (arena reuse, ln-gamma Yao routing, batch-means
# collection) still complete, independent of the timing smoke below.
LOCKGRAN_BENCH_QUICK=1 cargo bench --offline -p lockgran-bench --bench bench_capacity -- --test

echo "== bench smoke (quick scale, diff vs committed baseline)"
LOCKGRAN_BENCH_QUICK=1 LOCKGRAN_BENCH_THRESHOLD=10000 scripts/bench.sh

echo "verify: OK"
