#!/usr/bin/env bash
# Run the benchmark suite and diff it against the committed baseline.
#
# A fresh full (or quick) bench run writes its JSON reports to a scratch
# directory; `bench_diff` then compares every benchmark's median ns/iter
# against `results/bench/` and fails on slowdowns beyond the threshold.
#
# Usage:
#   scripts/bench.sh                         full run, diff vs baseline
#   LOCKGRAN_BENCH_QUICK=1 scripts/bench.sh  smoke-scale run (CI)
#   LOCKGRAN_BENCH_THRESHOLD=40 scripts/bench.sh   widen the tolerance
#   LOCKGRAN_BENCH_SUMMARY=BENCH_5.json scripts/bench.sh
#                                            also write the machine-readable
#                                            comparison summary to that path
#   scripts/bench.sh --update                full run, summary + diff vs the
#                                            old baseline (informational),
#                                            then overwrite the committed
#                                            baseline with the fresh run
#
# Quick mode shrinks sample counts so medians are noisy — the threshold
# still applies, so use it as a smoke test, not as a perf gate.
set -euo pipefail
cd "$(dirname "$0")/.."

THRESHOLD="${LOCKGRAN_BENCH_THRESHOLD:-25}"
BASELINE="results/bench"
OUT="$(mktemp -d "${TMPDIR:-/tmp}/lockgran-bench.XXXXXX")"
trap 'rm -rf "$OUT"' EXIT

SUMMARY_ARGS=()
if [[ -n "${LOCKGRAN_BENCH_SUMMARY:-}" ]]; then
    SUMMARY_ARGS=(--summary "$LOCKGRAN_BENCH_SUMMARY")
fi

echo "== cargo bench (reports -> $OUT)"
LOCKGRAN_BENCH_OUT="$OUT" cargo bench --offline -p lockgran-bench

if [[ "${1:-}" == "--update" ]]; then
    # Record how the fresh run compares against the baseline being
    # replaced (and write the summary, if requested) before overwriting.
    # Informational: an intentional re-pin is allowed to move numbers.
    echo "== bench_diff vs outgoing baseline (informational)"
    cargo run --offline -q -p lockgran-bench --bin bench_diff -- \
        --baseline "$BASELINE" --current "$OUT" --threshold "$THRESHOLD" \
        "${SUMMARY_ARGS[@]}" || true
    echo "== updating baseline $BASELINE"
    mkdir -p "$BASELINE"
    cp "$OUT"/*.json "$BASELINE"/
    echo "baseline updated; review and commit results/bench/*.json"
    exit 0
fi

echo "== bench_diff (threshold ±${THRESHOLD}%)"
cargo run --offline -q -p lockgran-bench --bin bench_diff -- \
    --baseline "$BASELINE" --current "$OUT" --threshold "$THRESHOLD" \
    "${SUMMARY_ARGS[@]}"
