//! # lockgran — locking granularity in multiprocessor database systems
//!
//! A from-scratch Rust reproduction of **S. Dandamudi and S.-L. Au,
//! "Locking Granularity in Multiprocessor Database Systems", Proc. IEEE
//! ICDE 1991, pp. 268–277**: a closed-system simulation study of how the
//! number of physical granule locks (`ltot`) affects throughput, response
//! time and lock-management overhead in a shared-nothing parallel
//! database machine.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`sim`] ([`lockgran_sim`]) — the deterministic discrete-event
//!   simulation kernel (integer-tick clock, preemptive-resume servers,
//!   statistics).
//! * [`workload`] ([`lockgran_workload`]) — transaction sizes, granule
//!   placement (best / random-Yao / worst), partitioning, explicit
//!   granule sets.
//! * [`lockmgr`] ([`lockgran_lockmgr`]) — a real lock manager: Gray's
//!   lock modes, hashed lock table, conservative (static) locking,
//!   incremental 2PL with deadlock detection, multi-granularity
//!   hierarchy.
//! * [`core`] ([`lockgran_core`]) — the paper's model: configuration,
//!   the `ConcurrencyControl` layer (probabilistic, explicit lock-table
//!   and multigranularity/escalation conflict models), the event-driven
//!   system, output metrics.
//! * [`experiments`] ([`lockgran_experiments`]) — one module per paper
//!   table/figure, sweep machinery, emitters, and the `lockgran` CLI.
//!
//! ## Quickstart
//!
//! ```
//! use lockgran::prelude::*;
//!
//! // Paper Table 1 baseline at 100 locks, 10 processors.
//! let cfg = ModelConfig::table1().with_tmax(500.0);
//! let metrics = run(&cfg, 42);
//! println!("throughput = {:.4} txn/unit", metrics.throughput);
//! assert!(metrics.throughput > 0.0);
//! ```
//!
//! See `examples/` for runnable scenarios and the `lockgran` binary for
//! regenerating every figure of the paper.

#![warn(missing_docs)]

pub use lockgran_core as core;
pub use lockgran_experiments as experiments;
pub use lockgran_lockmgr as lockmgr;
pub use lockgran_sim as sim;
pub use lockgran_workload as workload;

/// The most common imports for driving the model.
pub mod prelude {
    pub use lockgran_core::sim::{
        run, run_replicated, run_timeline, run_traced, suggest_warmup, Estimate, ReplicatedMetrics,
    };
    pub use lockgran_core::{
        ConflictMode, HierarchySpec, LockDistribution, ModelConfig, QueueDiscipline, RunMetrics,
        ServiceVariability, TimelinePoint,
    };
    pub use lockgran_experiments::{Figure, Metric, RunOptions};
    pub use lockgran_workload::{FailureSpec, HotSpot, Partitioning, Placement, SizeDistribution};
}
