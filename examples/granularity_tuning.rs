//! Granularity tuning: the DBA question the paper answers.
//!
//! Given a workload (transaction size mix, machine size), how many
//! granule locks should the system use? This example sweeps `ltot` for a
//! user-described workload, prints the throughput/response curve, and
//! recommends an operating point — including how much throughput an
//! entity-level lock table (the "obvious" choice) would give away.
//!
//! ```text
//! cargo run --release --example granularity_tuning
//! ```

use lockgran::prelude::*;

fn main() {
    // An OLTP-ish workload: 20 processors, 40 concurrent terminals,
    // moderately small transactions scanning sequentially (best
    // placement), lock table on disk.
    let base = ModelConfig::table1()
        .with_npros(20)
        .with_ntrans(40)
        .with_maxtransize(100)
        .with_tmax(5_000.0);

    let ltots = [1u64, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000];
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "ltot", "throughput", "response", "denial%"
    );

    let mut best: Option<(u64, f64)> = None;
    let mut results = Vec::new();
    for &ltot in &ltots {
        let cfg = base.clone().with_ltot(ltot);
        let reps = run_replicated(&cfg, 7, 3);
        let tput = reps.throughput.mean;
        let resp = reps.response_time.mean;
        let denial = reps.runs.iter().map(|m| m.denial_rate).sum::<f64>() / reps.runs.len() as f64;
        println!(
            "{ltot:>6} {tput:>12.4} {resp:>12.1} {:>11.1}%",
            denial * 100.0
        );
        if best.is_none_or(|(_, b)| tput > b) {
            best = Some((ltot, tput));
        }
        results.push((ltot, tput));
    }

    let (opt_ltot, opt_tput) = best.expect("sweep is non-empty");
    let fine_tput = results.last().expect("non-empty").1;
    let coarse_tput = results.first().expect("non-empty").1;
    println!();
    println!("recommendation: ltot ≈ {opt_ltot} (throughput {opt_tput:.4})");
    println!(
        "  entity-level locking (ltot = 5000) gives up {:.0}% of peak throughput",
        (1.0 - fine_tput / opt_tput) * 100.0
    );
    println!(
        "  a single database lock (ltot = 1) gives up {:.0}% of peak throughput",
        (1.0 - coarse_tput / opt_tput) * 100.0
    );
    println!();
    println!(
        "paper's rule of thumb: the optimum stays below ~200 locks even at \
         30 processors; block- or file-level granularity is adequate."
    );
}
