//! Heavy load and admission control (§3.7 + extension A).
//!
//! At 200 concurrent terminals the paper observes fine granularity
//! *collapsing*: lock-processing overhead scales with `ntrans × ltot`
//! while almost every request is denied. The paper points at
//! "transaction level scheduling" as the remedy; this example runs that
//! remedy — an admission cap on the transactions competing for locks —
//! and shows how it revives the overloaded system.
//!
//! ```text
//! cargo run --release --example heavy_load_scheduling
//! ```

use lockgran::prelude::*;

fn main() {
    let base = ModelConfig::table1()
        .with_ntrans(200)
        .with_npros(20)
        .with_tmax(4_000.0);

    println!("ntrans = 200, npros = 20, maxtransize = 500\n");
    println!(
        "{:>8} {:>10} {:>12} {:>10} {:>10} {:>10}",
        "ltot", "cap", "throughput", "response", "denial%", "pending"
    );
    for ltot in [10u64, 100, 1000, 5000] {
        for cap in [None, Some(50u32), Some(20)] {
            let cfg = base.clone().with_ltot(ltot).with_mpl_limit(cap);
            let m = run(&cfg, 17);
            println!(
                "{:>8} {:>10} {:>12.4} {:>10.1} {:>9.1}% {:>10.1}",
                ltot,
                cap.map_or("none".to_string(), |c| c.to_string()),
                m.throughput,
                m.response_time,
                m.denial_rate * 100.0,
                m.mean_pending
            );
        }
        println!();
    }

    println!("reading the table:");
    println!(" * uncapped, fine granularity: the system spends its capacity paying");
    println!("   lock charges for requests that are then denied (94%+ denial).");
    println!(" * a cap of 20 lets at most 20 transactions contend; the other 180");
    println!("   wait for free — no lock charges, no denials, no wasted I/O.");
    println!(" * response time *improves* under the cap even though transactions");
    println!("   queue for admission: denied attempts cost real resource time.");
    println!(" * this is the paper's §3.7 'transaction level scheduling', built.");
}
