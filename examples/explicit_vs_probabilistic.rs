//! Validating the paper's conflict approximation (ablation).
//!
//! The paper never builds a lock table: it *approximates* conflicts with
//! the Ries–Stonebraker probabilistic draw (block on `T_j` with
//! probability `L_j / ltot`). This repository also implements the real
//! thing — explicit granule sets checked against a conservative lock
//! table — so the approximation can be validated, something the original
//! study could not do.
//!
//! ```text
//! cargo run --release --example explicit_vs_probabilistic
//! ```

use lockgran::prelude::*;

fn main() {
    let ltots = [1u64, 10, 50, 100, 500, 1000, 5000];
    let base = ModelConfig::table1().with_npros(10).with_tmax(5_000.0);

    for (title, cfg) in [
        (
            "large sequential transactions (best placement, maxtransize=500)",
            base.clone(),
        ),
        (
            "small random transactions (random placement, maxtransize=50)",
            base.clone()
                .with_maxtransize(50)
                .with_placement(Placement::Random),
        ),
    ] {
        println!("\n-- {title} --");
        println!(
            "{:>6} {:>14} {:>14} {:>8}",
            "ltot", "probabilistic", "explicit", "ratio"
        );
        for &ltot in &ltots {
            let p = run(
                &cfg.clone()
                    .with_ltot(ltot)
                    .with_conflict(ConflictMode::Probabilistic),
                5,
            );
            let e = run(
                &cfg.clone()
                    .with_ltot(ltot)
                    .with_conflict(ConflictMode::Explicit),
                5,
            );
            println!(
                "{ltot:>6} {:>14.4} {:>14.4} {:>8.2}",
                p.throughput,
                e.throughput,
                p.throughput / e.throughput
            );
        }
    }

    println!();
    println!("the probabilistic model tracks the real lock table closely across");
    println!("three orders of magnitude of granularity — the paper's shortcut is");
    println!("sound for its conclusions. Deviations concentrate where realized");
    println!("overlap between granule sets differs most from its expectation");
    println!("(moderate ltot with large transactions).");
}
