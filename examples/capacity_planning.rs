//! Capacity planning: scaling out a shared-nothing machine (§3.1, §3.4).
//!
//! How do throughput and response time move as processors are added, and
//! how much does the declustering strategy matter? This example grows the
//! machine from 1 to 30 processors at a fixed, sensible granularity and
//! compares horizontal (round-robin over all disks) against random
//! partitioning.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use lockgran::prelude::*;

fn main() {
    let npros_grid = [1u32, 2, 5, 10, 20, 30];
    let base = ModelConfig::table1().with_ltot(100).with_tmax(5_000.0);

    println!("granularity fixed at ltot = 100 (near the paper's optimum)\n");
    println!(
        "{:>6} {:>12} {:>12} {:>10} | {:>12} {:>12}",
        "npros", "tput(horiz)", "resp(horiz)", "speedup", "tput(random)", "resp(random)"
    );

    let mut base_tput = None;
    for &n in &npros_grid {
        let h = run(
            &base
                .clone()
                .with_npros(n)
                .with_partitioning(Partitioning::Horizontal),
            3,
        );
        let r = run(
            &base
                .clone()
                .with_npros(n)
                .with_partitioning(Partitioning::Random),
            3,
        );
        let base_t = *base_tput.get_or_insert(h.throughput);
        println!(
            "{n:>6} {:>12.4} {:>12.1} {:>9.1}x | {:>12.4} {:>12.1}",
            h.throughput,
            h.response_time,
            h.throughput / base_t,
            r.throughput,
            r.response_time
        );
    }

    println!();
    println!("observations (matching the paper):");
    println!(" * throughput scales with processors; response time falls because");
    println!("   sub-transactions shrink and lock work is shared by all nodes.");
    println!(" * horizontal partitioning beats random partitioning at every size:");
    println!("   full declustering makes sub-transactions as small as possible,");
    println!("   cutting queueing and fork/join synchronization time.");
    println!(" * the partitioning choice does not move the granularity optimum.");
}
