//! Placement study: sequential scans vs random point accesses (§3.5).
//!
//! The paper's sharpest qualitative result: the right granularity depends
//! on *how* transactions touch the database. Sequential workloads (best
//! placement) want coarse granularity; small random workloads (random /
//! worst placement) want one lock per entity. This example reproduces
//! that crossover for a 30-processor machine.
//!
//! ```text
//! cargo run --release --example placement_study
//! ```

use lockgran::prelude::*;

fn sweep(label: &str, cfg: &ModelConfig) {
    let ltots = [1u64, 10, 50, 100, 500, 1000, 5000];
    print!("{label:>28}:");
    let mut curve = Vec::new();
    for &ltot in &ltots {
        let m = run(&cfg.clone().with_ltot(ltot), 11);
        curve.push((ltot, m.throughput));
        print!(" {:>7.3}", m.throughput);
    }
    let best = curve
        .iter()
        .copied()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty");
    println!("   <- optimum at ltot={}", best.0);
}

fn main() {
    let base = ModelConfig::table1().with_npros(30).with_tmax(5_000.0);
    let ltots = [1u64, 10, 50, 100, 500, 1000, 5000];
    print!("{:>28} ", "throughput @ ltot =");
    for l in ltots {
        print!(" {l:>7}");
    }
    println!();

    println!("\n-- large transactions (maxtransize = 500, mean 250 entities) --");
    for placement in [Placement::Best, Placement::Random, Placement::Worst] {
        let cfg = base.clone().with_maxtransize(500).with_placement(placement);
        sweep(&format!("large/{placement}"), &cfg);
    }

    println!("\n-- small transactions (maxtransize = 50, mean 25 entities) --");
    for placement in [Placement::Best, Placement::Random, Placement::Worst] {
        let cfg = base.clone().with_maxtransize(50).with_placement(placement);
        sweep(&format!("small/{placement}"), &cfg);
    }

    println!();
    println!("reading the table (paper §3.5 and conclusion):");
    println!(" * sequential scans (best placement): coarse granularity is enough;");
    println!("   finer locks only add overhead once past the small optimum.");
    println!(" * large random transactions: throughput *dips* until ltot reaches");
    println!("   the mean transaction size — each transaction locks everything");
    println!("   anyway, so extra locks are pure overhead — then recovers.");
    println!(" * small random transactions: finest granularity (one lock per");
    println!("   entity) wins — the paper's exception to 'coarse is fine'.");
}
