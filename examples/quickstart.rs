//! Quickstart: run the paper's Table 1 baseline once and print every
//! output parameter.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lockgran::prelude::*;

fn main() {
    // The paper's baseline: 5000-entity database, 10 terminals,
    // transactions U(1, 500) entities, 10 processors, 100 granule locks.
    let cfg = ModelConfig::table1();
    println!(
        "running: dbsize={} ltot={} ntrans={} npros={} tmax={}",
        cfg.dbsize, cfg.ltot, cfg.ntrans, cfg.npros, cfg.tmax
    );

    let m = run(&cfg, 42);

    println!();
    println!("paper output parameters (§2):");
    println!("  totcom      = {:>10}   transactions completed", m.totcom);
    println!(
        "  throughput  = {:>10.4}   completions / time unit",
        m.throughput
    );
    println!(
        "  response    = {:>10.2}   mean response time",
        m.response_time
    );
    println!(
        "  totcpus     = {:>10.1}   CPU busy time (all work)",
        m.totcpus
    );
    println!(
        "  totios      = {:>10.1}   I/O busy time (all work)",
        m.totios
    );
    println!("  lockcpus    = {:>10.1}   CPU lock overhead", m.lockcpus);
    println!("  lockios     = {:>10.1}   I/O lock overhead", m.lockios);
    println!(
        "  usefulcpus  = {:>10.2}   per-processor transaction CPU",
        m.usefulcpus
    );
    println!(
        "  usefulios   = {:>10.2}   per-processor transaction I/O",
        m.usefulios
    );
    println!();
    println!("extended diagnostics:");
    println!(
        "  denial rate = {:>10.3}   lock attempts denied",
        m.denial_rate
    );
    println!(
        "  mean active = {:>10.2}   lock-holding transactions",
        m.mean_active
    );
    println!(
        "  mean blocked= {:>10.2}   blocked transactions",
        m.mean_blocked
    );
    println!("  cpu util    = {:>10.3}", m.cpu_utilization);
    println!("  io util     = {:>10.3}", m.io_utilization);
    println!("  p95 response= {:>10.1}", m.response_time_p95);

    // Replications put a confidence interval on the headline numbers.
    let reps = run_replicated(&cfg, 42, 5);
    println!();
    println!(
        "throughput over 5 replications: {:.4} ± {:.4} (95% CI)",
        reps.throughput.mean, reps.throughput.ci95
    );
}
