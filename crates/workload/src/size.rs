//! Transaction size distributions (`NU_i`).
//!
//! The paper draws each transaction's entity count uniformly over
//! `[1, maxtransize]` (§2), and §3.6 studies a mixture of 80% small
//! (`maxtransize = 50`) and 20% large (`maxtransize = 500`) transactions.
//! [`SizeDistribution`] covers both plus a fixed size used in tests and
//! ablations.

use lockgran_sim::{FromJson, Json, SimRng, ToJson};

/// Distribution of the number of database entities a transaction accesses.
#[derive(Clone, Debug, PartialEq)]
pub enum SizeDistribution {
    /// `NU_i ~ U(1, max)` — the paper's default. Mean ≈ `max / 2`.
    Uniform {
        /// `maxtransize`: the largest possible transaction.
        max: u64,
    },
    /// Every transaction accesses exactly `size` entities.
    Fixed {
        /// The constant transaction size.
        size: u64,
    },
    /// A finite mixture: with probability `weight_k / Σ weights`, draw
    /// `U(1, max_k)`. The paper's §3.6 uses
    /// `[(0.8, 50), (0.2, 500)]`.
    Mixture {
        /// `(weight, maxtransize)` components; weights need not sum to 1.
        components: Vec<(f64, u64)>,
    },
    /// Empirical distribution: sample (with replacement) from recorded
    /// transaction sizes — trace-driven workloads from a production
    /// system or a benchmark log.
    Trace {
        /// Observed transaction sizes (entities per transaction).
        sizes: Vec<u64>,
    },
}

impl SizeDistribution {
    /// The paper's §3.6 mix: 80% small (max 50), 20% large (max 500).
    pub fn eighty_twenty() -> Self {
        SizeDistribution::Mixture {
            components: vec![(0.8, 50), (0.2, 500)],
        }
    }

    /// Draw one transaction size. Always ≥ 1.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        match self {
            SizeDistribution::Uniform { max } => rng.uniform_inclusive(1, (*max).max(1)),
            SizeDistribution::Fixed { size } => (*size).max(1),
            SizeDistribution::Mixture { components } => {
                let total: f64 = components.iter().map(|(w, _)| *w).sum();
                debug_assert!(total > 0.0, "mixture weights must be positive");
                let mut p = rng.uniform01() * total;
                for (w, max) in components {
                    p -= w;
                    if p < 0.0 {
                        return rng.uniform_inclusive(1, (*max).max(1));
                    }
                }
                // Floating-point slack: fall back to the last component
                // (an empty mixture is rejected by `validate`).
                match components.last() {
                    Some((_, max)) => rng.uniform_inclusive(1, (*max).max(1)),
                    None => 1,
                }
            }
            SizeDistribution::Trace { sizes } => {
                debug_assert!(!sizes.is_empty(), "trace must be non-empty");
                let idx = rng.uniform_inclusive(0, sizes.len() as u64 - 1) as usize;
                sizes[idx].max(1)
            }
        }
    }

    /// Expected transaction size.
    pub fn mean(&self) -> f64 {
        match self {
            SizeDistribution::Uniform { max } => (1.0 + (*max).max(1) as f64) / 2.0,
            SizeDistribution::Fixed { size } => (*size).max(1) as f64,
            SizeDistribution::Mixture { components } => {
                let total: f64 = components.iter().map(|(w, _)| *w).sum();
                components
                    .iter()
                    .map(|(w, max)| w / total * (1.0 + (*max).max(1) as f64) / 2.0)
                    .sum()
            }
            SizeDistribution::Trace { sizes } => {
                if sizes.is_empty() {
                    1.0
                } else {
                    sizes.iter().map(|&s| s.max(1) as f64).sum::<f64>() / sizes.len() as f64
                }
            }
        }
    }

    /// Largest size this distribution can produce.
    pub fn max(&self) -> u64 {
        match self {
            SizeDistribution::Uniform { max } => (*max).max(1),
            SizeDistribution::Fixed { size } => (*size).max(1),
            SizeDistribution::Mixture { components } => components
                .iter()
                .map(|(_, m)| (*m).max(1))
                .max()
                .unwrap_or(1),
            SizeDistribution::Trace { sizes } => sizes.iter().copied().max().unwrap_or(1).max(1),
        }
    }

    /// Validate invariants, returning a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            SizeDistribution::Uniform { max } | SizeDistribution::Fixed { size: max } => {
                if *max == 0 {
                    return Err("transaction size bound must be at least 1".into());
                }
            }
            SizeDistribution::Mixture { components } => {
                if components.is_empty() {
                    return Err("mixture must have at least one component".into());
                }
                if components.iter().any(|(w, _)| *w <= 0.0 || !w.is_finite()) {
                    return Err("mixture weights must be positive and finite".into());
                }
                if components.iter().any(|(_, m)| *m == 0) {
                    return Err("mixture component sizes must be at least 1".into());
                }
            }
            SizeDistribution::Trace { sizes } => {
                if sizes.is_empty() {
                    return Err("trace must contain at least one size".into());
                }
                if sizes.contains(&0) {
                    return Err("trace sizes must be at least 1".into());
                }
            }
        }
        Ok(())
    }
}

impl ToJson for SizeDistribution {
    /// Externally tagged, like the previous serde derive:
    /// `{"Uniform": {"max": 500}}`.
    fn to_json(&self) -> Json {
        match self {
            SizeDistribution::Uniform { max } => Json::object(vec![(
                "Uniform",
                Json::object(vec![("max", max.to_json())]),
            )]),
            SizeDistribution::Fixed { size } => Json::object(vec![(
                "Fixed",
                Json::object(vec![("size", size.to_json())]),
            )]),
            SizeDistribution::Mixture { components } => Json::object(vec![(
                "Mixture",
                Json::object(vec![("components", components.to_json())]),
            )]),
            SizeDistribution::Trace { sizes } => Json::object(vec![(
                "Trace",
                Json::object(vec![("sizes", sizes.to_json())]),
            )]),
        }
    }
}

impl FromJson for SizeDistribution {
    fn from_json(v: &Json) -> Result<Self, String> {
        if let Some(body) = v.get("Uniform") {
            return Ok(SizeDistribution::Uniform {
                max: body.field("max")?,
            });
        }
        if let Some(body) = v.get("Fixed") {
            return Ok(SizeDistribution::Fixed {
                size: body.field("size")?,
            });
        }
        if let Some(body) = v.get("Mixture") {
            return Ok(SizeDistribution::Mixture {
                components: body.field("components")?,
            });
        }
        if let Some(body) = v.get("Trace") {
            return Ok(SizeDistribution::Trace {
                sizes: body.field("sizes")?,
            });
        }
        Err(format!(
            "expected a size distribution (Uniform|Fixed|Mixture|Trace), got {v}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0xDEAD_BEEF)
    }

    #[test]
    fn uniform_range_and_mean() {
        let d = SizeDistribution::Uniform { max: 500 };
        let mut r = rng();
        let n = 50_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let x = d.sample(&mut r);
            assert!((1..=500).contains(&x));
            sum += x;
        }
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - d.mean()).abs() < 2.0,
            "empirical mean {mean} vs {}",
            d.mean()
        );
        assert_eq!(d.mean(), 250.5);
    }

    #[test]
    fn fixed_is_constant() {
        let d = SizeDistribution::Fixed { size: 42 };
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 42);
        }
        assert_eq!(d.mean(), 42.0);
        assert_eq!(d.max(), 42);
    }

    #[test]
    fn eighty_twenty_mix_proportions() {
        let d = SizeDistribution::eighty_twenty();
        let mut r = rng();
        let n = 100_000;
        // Sizes in (50, 500] can only come from the large component.
        let large = (0..n).filter(|_| d.sample(&mut r) > 50).count();
        // P(large drawn AND size > 50) = 0.2 * 450/500 = 0.18.
        let frac = large as f64 / n as f64;
        assert!((frac - 0.18).abs() < 0.01, "large fraction {frac}");
        // Mean = 0.8 * 25.5 + 0.2 * 250.5 = 70.5.
        assert!((d.mean() - 70.5).abs() < 1e-12);
        assert_eq!(d.max(), 500);
    }

    #[test]
    fn samples_never_zero() {
        let dists = [
            SizeDistribution::Uniform { max: 1 },
            SizeDistribution::Fixed { size: 1 },
            SizeDistribution::Mixture {
                components: vec![(1.0, 1), (1.0, 2)],
            },
        ];
        let mut r = rng();
        for d in &dists {
            for _ in 0..1000 {
                assert!(d.sample(&mut r) >= 1);
            }
        }
    }

    #[test]
    fn trace_samples_only_recorded_sizes() {
        let d = SizeDistribution::Trace {
            sizes: vec![3, 17, 250],
        };
        let mut r = rng();
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            seen.insert(d.sample(&mut r));
        }
        assert_eq!(
            seen,
            [3u64, 17, 250]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
        );
        assert_eq!(d.mean(), 90.0);
        assert_eq!(d.max(), 250);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn trace_respects_empirical_frequencies() {
        // A size appearing twice is drawn twice as often.
        let d = SizeDistribution::Trace {
            sizes: vec![1, 1, 100],
        };
        let mut r = rng();
        let n = 30_000;
        let ones = (0..n).filter(|_| d.sample(&mut r) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 2.0 / 3.0).abs() < 0.02, "fraction of 1s {frac}");
    }

    #[test]
    fn json_round_trip_all_variants() {
        let dists = [
            SizeDistribution::Uniform { max: 500 },
            SizeDistribution::Fixed { size: 42 },
            SizeDistribution::eighty_twenty(),
            SizeDistribution::Trace {
                sizes: vec![3, 17, 250],
            },
        ];
        for d in dists {
            let j = d.to_json();
            let back = SizeDistribution::from_json(&j).unwrap();
            assert_eq!(back, d, "round trip failed for {j}");
        }
        assert_eq!(
            SizeDistribution::Uniform { max: 500 }
                .to_json()
                .to_string_compact(),
            r#"{"Uniform":{"max":500}}"#
        );
        assert!(SizeDistribution::from_json(&Json::Null).is_err());
    }

    #[test]
    fn validation_catches_bad_inputs() {
        assert!(SizeDistribution::Uniform { max: 0 }.validate().is_err());
        assert!(SizeDistribution::Mixture { components: vec![] }
            .validate()
            .is_err());
        assert!(SizeDistribution::Mixture {
            components: vec![(0.0, 5)]
        }
        .validate()
        .is_err());
        assert!(SizeDistribution::Mixture {
            components: vec![(1.0, 0)]
        }
        .validate()
        .is_err());
        assert!(SizeDistribution::eighty_twenty().validate().is_ok());
        assert!(SizeDistribution::Trace { sizes: vec![] }
            .validate()
            .is_err());
        assert!(SizeDistribution::Trace { sizes: vec![0] }
            .validate()
            .is_err());
    }
}
