//! Transaction specifications and the workload generator.
//!
//! A [`TransactionSpec`] is the complete stochastic description of one
//! transaction as the paper's model sees it — the realized values of
//! `NU_i`, `LU_i` and `PU_i` — drawn by a [`WorkloadGenerator`] from a
//! [`WorkloadParams`] description.

use lockgran_sim::{FromJson, Json, SimRng, ToJson};

use crate::partitioning::Partitioning;
use crate::placement::{LocksMemo, Placement};
use crate::size::SizeDistribution;

/// Static parameters of the workload (paper §2 input parameters that
/// concern transaction generation).
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadParams {
    /// `dbsize`: number of accessible entities in the database.
    pub dbsize: u64,
    /// `ltot`: number of locks (granules).
    pub ltot: u64,
    /// Distribution of `NU_i`.
    pub size: SizeDistribution,
    /// Granule placement model (determines `LU_i`).
    pub placement: Placement,
    /// Declustering strategy (determines `PU_i`).
    pub partitioning: Partitioning,
    /// `npros`: number of processors.
    pub npros: u32,
}

impl WorkloadParams {
    /// Validate mutual consistency of the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.dbsize == 0 {
            return Err("dbsize must be positive".into());
        }
        if self.ltot == 0 {
            return Err("ltot must be positive (1 = single database lock)".into());
        }
        if self.ltot > self.dbsize {
            return Err(format!(
                "ltot ({}) cannot exceed dbsize ({}): a granule holds at least one entity",
                self.ltot, self.dbsize
            ));
        }
        if self.npros == 0 {
            return Err("npros must be positive".into());
        }
        self.size.validate()?;
        if self.size.max() > self.dbsize {
            return Err(format!(
                "maximum transaction size ({}) exceeds dbsize ({})",
                self.size.max(),
                self.dbsize
            ));
        }
        Ok(())
    }
}

impl ToJson for WorkloadParams {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("dbsize", self.dbsize.to_json()),
            ("ltot", self.ltot.to_json()),
            ("size", self.size.to_json()),
            ("placement", self.placement.to_json()),
            ("partitioning", self.partitioning.to_json()),
            ("npros", self.npros.to_json()),
        ])
    }
}

impl FromJson for WorkloadParams {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(WorkloadParams {
            dbsize: v.field("dbsize")?,
            ltot: v.field("ltot")?,
            size: v.field("size")?,
            placement: v.field("placement")?,
            partitioning: v.field("partitioning")?,
            npros: v.field("npros")?,
        })
    }
}

/// The realized stochastic attributes of one transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransactionSpec {
    /// `NU_i`: database entities accessed.
    pub entities: u64,
    /// `LU_i`: locks required per request attempt.
    pub locks: u64,
    /// Distinct processors hosting this transaction's sub-transactions
    /// (`PU_i = processors.len()`).
    pub processors: Vec<u32>,
}

impl TransactionSpec {
    /// `PU_i`: the sub-transaction fan-out.
    pub fn fanout(&self) -> u32 {
        self.processors.len() as u32
    }
}

/// Draws [`TransactionSpec`]s from independent size / placement /
/// partitioning random streams.
#[derive(Clone, Debug)]
pub struct WorkloadGenerator {
    params: WorkloadParams,
    size_rng: SimRng,
    part_rng: SimRng,
    /// Memoized `nu → LU` mapping — `locks_required` is pure in `nu` for
    /// this generator's fixed `(placement, ltot, dbsize)`, and Yao's
    /// formula (random placement) is `O(nu)` per evaluation, so repeats
    /// are answered from the table.
    locks_memo: LocksMemo,
    generated: u64,
}

impl WorkloadGenerator {
    /// Create a generator; `rng` is split into independent sub-streams so
    /// the size sequence does not depend on how partitioning consumes
    /// randomness (and vice versa).
    ///
    /// # Panics
    /// Panics if `params.validate()` fails — construct from validated
    /// parameters.
    pub fn new(params: WorkloadParams, rng: &SimRng) -> Self {
        if let Err(e) = params.validate() {
            panic!("invalid workload parameters: {e}");
        }
        WorkloadGenerator {
            size_rng: rng.split("workload.size"),
            part_rng: rng.split("workload.partitioning"),
            locks_memo: LocksMemo::new(
                params.placement,
                params.ltot,
                params.dbsize,
                params.size.max(),
            ),
            params,
            generated: 0,
        }
    }

    /// Re-seed this generator in place for a fresh run, as if it had just
    /// been built with [`WorkloadGenerator::new`]`(params, rng)` — same
    /// panics, same sub-stream derivation, bit-identical draws. The memo
    /// table is retained when the `(placement, ltot, dbsize, max size)`
    /// geometry is unchanged: its entries are pure functions of `nu` for
    /// that geometry, so stale-but-valid values carry across runs (the
    /// point of resetting instead of rebuilding at capacity scale, where
    /// the table holds up to `maxtransize` entries).
    ///
    /// # Panics
    /// Panics if `params.validate()` fails.
    pub fn reset(&mut self, params: WorkloadParams, rng: &SimRng) {
        if let Err(e) = params.validate() {
            panic!("invalid workload parameters: {e}");
        }
        let memo_reusable = self.params.placement == params.placement
            && self.params.ltot == params.ltot
            && self.params.dbsize == params.dbsize
            && self.params.size.max() == params.size.max();
        if !memo_reusable {
            self.locks_memo = LocksMemo::new(
                params.placement,
                params.ltot,
                params.dbsize,
                params.size.max(),
            );
        }
        self.size_rng = rng.split("workload.size");
        self.part_rng = rng.split("workload.partitioning");
        self.params = params;
        self.generated = 0;
    }

    /// The parameters this generator draws from.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// Number of specs generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Draw the next transaction.
    pub fn next_spec(&mut self) -> TransactionSpec {
        let mut spec = TransactionSpec {
            entities: 0,
            locks: 0,
            processors: Vec::new(),
        };
        self.next_spec_into(&mut spec);
        spec
    }

    /// Allocation-free form of [`WorkloadGenerator::next_spec`]: overwrites
    /// `spec` in place, reusing its `processors` buffer. Consumes the RNG
    /// streams identically to the allocating form.
    pub fn next_spec_into(&mut self, spec: &mut TransactionSpec) {
        self.generated += 1;
        spec.entities = self.params.size.sample(&mut self.size_rng);
        spec.locks = self.locks_memo.locks_required(spec.entities);
        self.params.partitioning.assign_processors_into(
            &mut self.part_rng,
            self.params.npros,
            &mut spec.processors,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> WorkloadParams {
        WorkloadParams {
            dbsize: 5000,
            ltot: 100,
            size: SizeDistribution::Uniform { max: 500 },
            placement: Placement::Best,
            partitioning: Partitioning::Horizontal,
            npros: 10,
        }
    }

    #[test]
    fn generates_consistent_specs() {
        let rng = SimRng::new(7);
        let mut g = WorkloadGenerator::new(params(), &rng);
        for _ in 0..1000 {
            let s = g.next_spec();
            assert!((1..=500).contains(&s.entities));
            assert_eq!(
                s.locks,
                Placement::Best.locks_required(s.entities, 100, 5000)
            );
            assert_eq!(s.processors, (0..10).collect::<Vec<_>>());
            assert_eq!(s.fanout(), 10);
        }
        assert_eq!(g.generated(), 1000);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let rng = SimRng::new(99);
        let mut a = WorkloadGenerator::new(params(), &rng);
        let mut b = WorkloadGenerator::new(params(), &rng);
        for _ in 0..200 {
            assert_eq!(a.next_spec(), b.next_spec());
        }
    }

    #[test]
    fn size_stream_independent_of_partitioning() {
        // Same seed, different partitioning: the NU_i sequence must be
        // identical (common random numbers across sweep points).
        let rng = SimRng::new(5);
        let mut horizontal = WorkloadGenerator::new(params(), &rng);
        let mut random = WorkloadGenerator::new(
            WorkloadParams {
                partitioning: Partitioning::Random,
                ..params()
            },
            &rng,
        );
        for _ in 0..500 {
            assert_eq!(horizontal.next_spec().entities, random.next_spec().entities);
        }
    }

    #[test]
    fn reset_is_bit_identical_to_fresh_construction() {
        // Drive a generator through one run, reset it (same and changed
        // geometry, so both the memo-retained and memo-rebuilt paths are
        // covered), and compare every draw against a fresh generator.
        let rng_a = SimRng::new(11);
        let rng_b = SimRng::new(22);
        let altered = WorkloadParams {
            ltot: 500,
            placement: Placement::Random,
            ..params()
        };

        let mut recycled = WorkloadGenerator::new(params(), &rng_a);
        for _ in 0..300 {
            let _ = recycled.next_spec();
        }

        // Memo-retained path: same geometry, new seed.
        recycled.reset(params(), &rng_b);
        assert_eq!(recycled.generated(), 0);
        let mut fresh = WorkloadGenerator::new(params(), &rng_b);
        for _ in 0..300 {
            assert_eq!(recycled.next_spec(), fresh.next_spec());
        }

        // Memo-rebuilt path: geometry changes with the reset.
        recycled.reset(altered.clone(), &rng_a);
        let mut fresh = WorkloadGenerator::new(altered, &rng_a);
        for _ in 0..300 {
            assert_eq!(recycled.next_spec(), fresh.next_spec());
        }
    }

    #[test]
    #[should_panic(expected = "invalid workload parameters")]
    fn reset_rejects_invalid_params() {
        let mut g = WorkloadGenerator::new(params(), &SimRng::new(1));
        let mut p = params();
        p.ltot = 0;
        g.reset(p, &SimRng::new(2));
    }

    #[test]
    fn validation_rejects_inconsistent_params() {
        let mut p = params();
        p.ltot = 10_000; // more locks than entities
        assert!(p.validate().is_err());

        let mut p = params();
        p.size = SizeDistribution::Uniform { max: 10_000 }; // txn bigger than db
        assert!(p.validate().is_err());

        let mut p = params();
        p.npros = 0;
        assert!(p.validate().is_err());

        assert!(params().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid workload parameters")]
    fn generator_rejects_invalid_params() {
        let mut p = params();
        p.dbsize = 0;
        let _ = WorkloadGenerator::new(p, &SimRng::new(1));
    }
}
