//! # lockgran-workload — workload generation
//!
//! Everything stochastic about a transaction before it enters the system:
//!
//! * [`size`] — how many database entities it reads/writes (`NU_i`):
//!   uniform over `[1, maxtransize]` as in the paper, plus fixed sizes and
//!   the paper's §3.6 80/20 small/large mixture.
//! * [`placement`] — how many **locks** those entities cost (`LU_i`) under
//!   the three granule-placement models of Ries & Stonebraker adopted by
//!   the paper: best (sequential packing), worst (every entity its own
//!   granule), and random (Yao's approximation).
//! * [`yao`] — Yao's formula itself, with an exact hypergeometric
//!   reference implementation used to validate the approximation.
//! * [`partitioning`] — how the transaction fans out over processors
//!   (`PU_i`): horizontal round-robin declustering (all processors) or
//!   random partitioning (a uniform random subset).
//! * [`access`] — explicit granule-set sampling. The paper computes
//!   conflicts probabilistically and never materializes lock sets; the
//!   explicit sets generated here feed the real lock-table conflict model
//!   used to validate that approximation.
//! * [`spec`] — the [`TransactionSpec`] produced for each new transaction,
//!   plus the [`WorkloadGenerator`] that draws them.
//! * [`failure`] — the optional processor fail/repair process
//!   ([`FailureSpec`], exponential MTBF/MTTR), default off.

#![warn(missing_docs)]

pub mod access;
pub mod failure;
pub mod partitioning;
pub mod placement;
pub mod size;
pub mod spec;
pub mod yao;

pub use access::{AccessPattern, HierarchyMap, HotSpot};
pub use failure::FailureSpec;
pub use partitioning::Partitioning;
pub use placement::{LocksMemo, Placement};
pub use size::SizeDistribution;
pub use spec::{TransactionSpec, WorkloadGenerator, WorkloadParams};
