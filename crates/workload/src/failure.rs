//! Processor failure/repair specification.
//!
//! The paper's closed model assumes processors never fail; this extension
//! layers a classical fail/repair process over the shared-nothing machine
//! to study how locking granularity interacts with failure cost. Each
//! processor independently alternates between *up* and *down* periods:
//! up-time draws from an exponential with mean [`FailureSpec::mtbf`] and
//! down-time from an exponential with mean [`FailureSpec::mttr`] (both in
//! model time units, the same scale as service demands).
//!
//! The spec is *descriptive only* — the draws themselves happen in
//! `lockgran-core::system` against the run's seeded `SimRng`, so a config
//! with no failure spec is bit-identical to the pre-extension model.

use lockgran_sim::{FromJson, Json, ToJson};

/// Per-processor exponential failure/repair process parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FailureSpec {
    /// Mean time between failures (exponential mean of each up period),
    /// in model time units.
    pub mtbf: f64,
    /// Mean time to repair (exponential mean of each down period), in
    /// model time units.
    pub mttr: f64,
}

impl FailureSpec {
    /// A failure process with the given means.
    pub fn new(mtbf: f64, mttr: f64) -> Self {
        FailureSpec { mtbf, mttr }
    }

    /// Validate the parameters: both means must be positive and finite.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.mtbf.is_finite() && self.mtbf > 0.0) {
            return Err(format!(
                "mtbf must be positive and finite, got {}",
                self.mtbf
            ));
        }
        if !(self.mttr.is_finite() && self.mttr > 0.0) {
            return Err(format!(
                "mttr must be positive and finite, got {}",
                self.mttr
            ));
        }
        Ok(())
    }

    /// Long-run fraction of time each processor is up:
    /// `mtbf / (mtbf + mttr)`.
    pub fn availability(&self) -> f64 {
        self.mtbf / (self.mtbf + self.mttr)
    }
}

impl ToJson for FailureSpec {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("mtbf", self.mtbf.to_json()),
            ("mttr", self.mttr.to_json()),
        ])
    }
}

impl FromJson for FailureSpec {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(FailureSpec {
            mtbf: v.field("mtbf")?,
            mttr: v.field("mttr")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(FailureSpec::new(2000.0, 50.0).validate().is_ok());
        assert!(FailureSpec::new(0.0, 50.0).validate().is_err());
        assert!(FailureSpec::new(2000.0, 0.0).validate().is_err());
        assert!(FailureSpec::new(-1.0, 50.0).validate().is_err());
        assert!(FailureSpec::new(f64::NAN, 50.0).validate().is_err());
        assert!(FailureSpec::new(f64::INFINITY, 50.0).validate().is_err());
    }

    #[test]
    fn availability_is_mtbf_fraction() {
        let f = FailureSpec::new(900.0, 100.0);
        assert!((f.availability() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip() {
        let f = FailureSpec::new(2000.0, 50.0);
        let back = FailureSpec::from_json(&f.to_json()).unwrap();
        assert_eq!(f, back);
    }
}
