//! Granule placement models: how many locks a transaction needs (`LU_i`).
//!
//! The number of locks a transaction must set depends on how its `NU_i`
//! entities are laid out over the `ltot` granules (paper §2 and §3.5,
//! following Ries & Stonebraker):
//!
//! * [`Placement::Best`] — entities are packed into as few granules as
//!   possible (pure sequential access, e.g. a range scan):
//!   `LU = ceil(NU · ltot / dbsize)`.
//! * [`Placement::Worst`] — every accessed entity lies in a distinct
//!   granule: `LU = min(NU, ltot)`.
//! * [`Placement::Random`] — entities are scattered uniformly; the
//!   expected granule count is Yao's formula (see [`crate::yao`]),
//!   rounded to the nearest whole lock.
//!
//! All three return at least 1 lock for a non-empty transaction and never
//! more than `ltot`.

use lockgran_sim::{FromJson, Json, ToJson};

use crate::yao::yao_expected_granules;

/// Granule placement strategy (determines `LU_i`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Placement {
    /// Sequential packing: fewest possible granules.
    Best,
    /// Adversarial scatter: one granule per entity (capped at `ltot`).
    Worst,
    /// Uniform random scatter: Yao's mean-value estimate.
    Random,
}

impl Placement {
    /// All placement strategies, in the order the paper presents them.
    pub const ALL: [Placement; 3] = [Placement::Best, Placement::Random, Placement::Worst];

    /// Number of locks (`LU_i`) required by a transaction accessing `nu`
    /// entities of a `dbsize`-entity database guarded by `ltot` granule
    /// locks.
    ///
    /// Returns 0 iff `nu == 0`; otherwise a value in `[1, min(nu, ltot)]`
    /// for `Best`/`Worst`, and `[1, ltot]` for `Random` (Yao's estimate
    /// also never exceeds `min(nu, ltot)`).
    ///
    /// # Panics
    /// Panics if `ltot == 0`, `dbsize == 0` or `ltot > dbsize`.
    pub fn locks_required(self, nu: u64, ltot: u64, dbsize: u64) -> u64 {
        assert!(dbsize > 0, "dbsize must be positive");
        assert!(ltot > 0, "ltot must be positive");
        assert!(ltot <= dbsize, "ltot cannot exceed dbsize");
        if nu == 0 {
            return 0;
        }
        let nu = nu.min(dbsize);
        match self {
            // ceil(nu * ltot / dbsize), in integer arithmetic.
            Placement::Best => (nu * ltot).div_ceil(dbsize).max(1),
            Placement::Worst => nu.min(ltot),
            Placement::Random => {
                let e = yao_expected_granules(dbsize, ltot, nu);
                // Round to nearest lock; a transaction always needs >= 1.
                (e.round() as u64).clamp(1, ltot)
            }
        }
    }

    /// Short lowercase name used in reports and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            Placement::Best => "best",
            Placement::Worst => "worst",
            Placement::Random => "random",
        }
    }
}

impl ToJson for Placement {
    /// Variant-name string, like the previous serde derive: `"Best"`.
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Placement::Best => "Best",
                Placement::Worst => "Worst",
                Placement::Random => "Random",
            }
            .to_string(),
        )
    }
}

impl FromJson for Placement {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v.as_str() {
            Some("Best") => Ok(Placement::Best),
            Some("Worst") => Ok(Placement::Worst),
            Some("Random") => Ok(Placement::Random),
            _ => Err(format!("expected placement (Best|Worst|Random), got {v}")),
        }
    }
}

impl std::str::FromStr for Placement {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "best" => Ok(Placement::Best),
            "worst" => Ok(Placement::Worst),
            "random" => Ok(Placement::Random),
            other => Err(format!("unknown placement '{other}' (best|random|worst)")),
        }
    }
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Memoized [`Placement::locks_required`] for fixed `(placement, ltot,
/// dbsize)` — the per-run hot path.
///
/// `locks_required` is pure in `nu`, but for [`Placement::Random`] each
/// call evaluates Yao's running product in `O(nu)` multiplications; the
/// workload generator calls it once per spawned transaction (thousands of
/// times per run) over at most `maxtransize` distinct `nu` values. This
/// table computes each `nu` once, lazily, and answers repeats with an
/// array load. Entries are exactly the function's own outputs, so
/// memoization cannot change any simulated result.
///
/// The table is bounded by [`LocksMemo::MAX_ENTRIES`] so a 10⁷-entity
/// domain with 10⁵-entity transactions doesn't allocate a 10⁵-slot table
/// per sweep point (or thrash one). The bound is aligned with
/// [`crate::yao::YAO_PRODUCT_MAX_D`]: any `nu` that can reach the `O(nu)`
/// running-product path (`dbsize <= YAO_PRODUCT_MAX_D`, hence
/// `nu <= dbsize <= YAO_PRODUCT_MAX_D`) always fits in the memo, while
/// lookups beyond the bound only ever fall back to the `O(1)` closed-form
/// evaluation — the fallback is never the expensive path.
#[derive(Clone, Debug)]
pub struct LocksMemo {
    placement: Placement,
    ltot: u64,
    dbsize: u64,
    /// `cache[nu] = locks_required(nu)`; `0` marks an unfilled slot
    /// (valid because `locks_required(nu) >= 1` for `nu >= 1`, and
    /// `nu = 0` maps to `0` locks without needing the cache).
    cache: Vec<u64>,
}

impl LocksMemo {
    /// Upper bound on memoized `nu` slots: `YAO_PRODUCT_MAX_D + 1`, so
    /// every `nu` the running-product path can see is memoized, and
    /// unmemoized lookups are all `O(1)` closed-form calls.
    pub const MAX_ENTRIES: usize = crate::yao::YAO_PRODUCT_MAX_D as usize + 1;

    /// A memo table for transactions of up to `max_nu` entities (capped
    /// at [`LocksMemo::MAX_ENTRIES`] slots).
    ///
    /// # Panics
    /// Panics (on first lookup) under the same conditions as
    /// [`Placement::locks_required`].
    pub fn new(placement: Placement, ltot: u64, dbsize: u64, max_nu: u64) -> Self {
        LocksMemo {
            placement,
            ltot,
            dbsize,
            cache: vec![0; (max_nu as usize).saturating_add(1).min(Self::MAX_ENTRIES)],
        }
    }

    /// Memoized `LU_i` for a transaction accessing `nu` entities. Falls
    /// back to the direct computation for `nu` beyond the table bound.
    pub fn locks_required(&mut self, nu: u64) -> u64 {
        if nu == 0 {
            return 0;
        }
        let Some(slot) = self.cache.get_mut(nu as usize) else {
            return self.placement.locks_required(nu, self.ltot, self.dbsize);
        };
        if *slot == 0 {
            *slot = self.placement.locks_required(nu, self.ltot, self.dbsize);
        }
        *slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DB: u64 = 5000;

    #[test]
    fn best_placement_matches_paper_formula() {
        // LU = ceil(NU * ltot / dbsize); e.g. 10% of the database needs
        // 10% of the locks.
        assert_eq!(Placement::Best.locks_required(500, 100, DB), 10);
        assert_eq!(Placement::Best.locks_required(250, 100, DB), 5);
        assert_eq!(Placement::Best.locks_required(1, 1, DB), 1);
        assert_eq!(Placement::Best.locks_required(1, DB, DB), 1);
        assert_eq!(Placement::Best.locks_required(DB, DB, DB), DB);
        // Rounds *up*: 251 entities at ltot = 100 -> ceil(5.02) = 6.
        assert_eq!(Placement::Best.locks_required(251, 100, DB), 6);
    }

    #[test]
    fn worst_placement_is_min() {
        assert_eq!(Placement::Worst.locks_required(250, 100, DB), 100);
        assert_eq!(Placement::Worst.locks_required(250, 500, DB), 250);
        assert_eq!(Placement::Worst.locks_required(250, DB, DB), 250);
        assert_eq!(Placement::Worst.locks_required(1, 1, DB), 1);
    }

    #[test]
    fn random_placement_between_best_and_worst() {
        for &ltot in &[1u64, 2, 10, 100, 500, 1000, DB] {
            for &nu in &[1u64, 25, 250, 500, 2500] {
                let best = Placement::Best.locks_required(nu, ltot, DB);
                let worst = Placement::Worst.locks_required(nu, ltot, DB);
                let random = Placement::Random.locks_required(nu, ltot, DB);
                assert!(
                    best <= random + 1 && random <= worst,
                    "ltot={ltot} nu={nu}: best={best} random={random} worst={worst}"
                );
            }
        }
    }

    #[test]
    fn random_placement_near_worst_when_few_locks() {
        // For large transactions and ltot << NU, random placement touches
        // essentially all granules (paper: throughput dips until ltot
        // reaches the mean transaction size).
        let lu = Placement::Random.locks_required(250, 50, DB);
        assert!(lu >= 49, "expected nearly all 50 granules, got {lu}");
    }

    #[test]
    fn random_placement_near_nu_when_fine_granularity() {
        let lu = Placement::Random.locks_required(250, DB, DB);
        assert!((lu as i64 - 250).unsigned_abs() <= 7, "got {lu}");
    }

    #[test]
    fn zero_entities_need_zero_locks() {
        for p in Placement::ALL {
            assert_eq!(p.locks_required(0, 100, DB), 0);
        }
    }

    #[test]
    fn nonzero_entities_need_at_least_one_lock() {
        for p in Placement::ALL {
            for &ltot in &[1u64, 7, 100, DB] {
                assert!(p.locks_required(1, ltot, DB) >= 1);
            }
        }
    }

    #[test]
    fn never_exceeds_ltot() {
        for p in Placement::ALL {
            for &ltot in &[1u64, 3, 77, 100, DB] {
                for &nu in &[1u64, 100, 5000, 9999] {
                    assert!(p.locks_required(nu, ltot, DB) <= ltot);
                }
            }
        }
    }

    #[test]
    fn whole_database_lock_serializes_everything() {
        // ltot = 1: every strategy requires exactly the single lock.
        for p in Placement::ALL {
            assert_eq!(p.locks_required(250, 1, DB), 1);
        }
    }

    #[test]
    fn memo_agrees_with_direct_computation() {
        for p in Placement::ALL {
            let mut memo = LocksMemo::new(p, 100, DB, 500);
            for nu in [0u64, 1, 2, 49, 250, 499, 500, 777, 5000] {
                // Twice: first fill, then the cached load.
                assert_eq!(memo.locks_required(nu), p.locks_required(nu, 100, DB));
                assert_eq!(memo.locks_required(nu), p.locks_required(nu, 100, DB));
            }
        }
    }

    #[test]
    fn memo_is_bounded_at_capacity_scale() {
        // A 10⁷-entity domain must not allocate a 10⁷-slot table, and
        // beyond-bound lookups still agree with the direct computation.
        let (ltot, db) = (1_000_000u64, 10_000_000u64);
        let mut memo = LocksMemo::new(Placement::Random, ltot, db, db);
        assert_eq!(memo.cache.len(), LocksMemo::MAX_ENTRIES);
        for nu in [1u64, 65_535, 65_536, 65_537, 100_000, db] {
            let direct = Placement::Random.locks_required(nu, ltot, db);
            // Twice: fill (or fallback), then repeat.
            assert_eq!(memo.locks_required(nu), direct, "nu={nu}");
            assert_eq!(memo.locks_required(nu), direct, "nu={nu}");
        }
    }

    #[test]
    fn parse_and_display_round_trip() {
        for p in Placement::ALL {
            let parsed: Placement = p.name().parse().unwrap();
            assert_eq!(parsed, p);
        }
        assert!("other".parse::<Placement>().is_err());
    }
}
