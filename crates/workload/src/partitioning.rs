//! Data partitioning: sub-transaction fan-out (`PU_i`).
//!
//! In the shared-nothing architecture the database is declustered over the
//! processors' private disks, and a transaction splits into one
//! sub-transaction per processor that holds relevant data (paper §2):
//!
//! * [`Partitioning::Horizontal`] — relations are round-robin partitioned
//!   over *all* disks, so every transaction splits into `npros`
//!   sub-transactions (`PU_i = npros`).
//! * [`Partitioning::Random`] — relations are randomly partitioned over a
//!   subset of disks; the paper models this as `PU_i ~ U(1, npros)` with
//!   the sub-transactions landing on distinct random processors.

use lockgran_sim::{FromJson, Json, SimRng, ToJson};

/// Declustering strategy (determines `PU_i` and processor assignment).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Partitioning {
    /// Round-robin over all disks: full fan-out.
    Horizontal,
    /// Random subset of disks: fan-out uniform on `[1, npros]`.
    Random,
}

impl Partitioning {
    /// Both strategies.
    pub const ALL: [Partitioning; 2] = [Partitioning::Horizontal, Partitioning::Random];

    /// Draw the processors a transaction's sub-transactions run on. The
    /// result has between 1 and `npros` *distinct* processor indices in
    /// `0..npros` ("no two sub-transactions are assigned to the same
    /// processor", paper §2).
    ///
    /// # Panics
    /// Panics if `npros == 0`.
    pub fn assign_processors(self, rng: &mut SimRng, npros: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.assign_processors_into(rng, npros, &mut out);
        out
    }

    /// Allocation-free form of [`Partitioning::assign_processors`]: fills
    /// `out` (cleared first) so the per-transaction draw reuses one buffer
    /// across the whole run. Consumes the RNG identically to the
    /// allocating form — the processor sequence is bit-for-bit the same.
    ///
    /// # Panics
    /// Panics if `npros == 0`.
    pub fn assign_processors_into(self, rng: &mut SimRng, npros: u32, out: &mut Vec<u32>) {
        assert!(npros > 0, "need at least one processor");
        out.clear();
        match self {
            Partitioning::Horizontal => out.extend(0..npros),
            Partitioning::Random => {
                let fanout = rng.uniform_inclusive(1, u64::from(npros));
                // Floyd's algorithm, draw-identical to
                // `SimRng::sample_distinct` (one `uniform_inclusive(0, j)`
                // per selected element, in the same j order).
                let n = u64::from(npros);
                for j in (n - fanout)..n {
                    let t = rng.uniform_inclusive(0, j) as u32;
                    if out.contains(&t) {
                        out.push(j as u32);
                    } else {
                        out.push(t);
                    }
                }
            }
        }
    }

    /// Expected fan-out for a system of `npros` processors.
    pub fn mean_fanout(self, npros: u32) -> f64 {
        match self {
            Partitioning::Horizontal => f64::from(npros),
            Partitioning::Random => (1.0 + f64::from(npros)) / 2.0,
        }
    }

    /// Short lowercase name used in reports and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            Partitioning::Horizontal => "horizontal",
            Partitioning::Random => "random",
        }
    }
}

impl ToJson for Partitioning {
    /// Variant-name string, like the previous serde derive: `"Horizontal"`.
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Partitioning::Horizontal => "Horizontal",
                Partitioning::Random => "Random",
            }
            .to_string(),
        )
    }
}

impl FromJson for Partitioning {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v.as_str() {
            Some("Horizontal") => Ok(Partitioning::Horizontal),
            Some("Random") => Ok(Partitioning::Random),
            _ => Err(format!(
                "expected partitioning (Horizontal|Random), got {v}"
            )),
        }
    }
}

impl std::str::FromStr for Partitioning {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "horizontal" => Ok(Partitioning::Horizontal),
            "random" => Ok(Partitioning::Random),
            other => Err(format!(
                "unknown partitioning '{other}' (horizontal|random)"
            )),
        }
    }
}

impl std::fmt::Display for Partitioning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizontal_uses_every_processor() {
        let mut rng = SimRng::new(1);
        let procs = Partitioning::Horizontal.assign_processors(&mut rng, 10);
        assert_eq!(procs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn random_fanout_is_distinct_and_in_range() {
        let mut rng = SimRng::new(2);
        for _ in 0..500 {
            let procs = Partitioning::Random.assign_processors(&mut rng, 10);
            assert!(!procs.is_empty() && procs.len() <= 10);
            let mut sorted = procs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                procs.len(),
                "duplicate processors in {procs:?}"
            );
            assert!(procs.iter().all(|&p| p < 10));
        }
    }

    #[test]
    fn random_fanout_mean_matches() {
        let mut rng = SimRng::new(3);
        let n = 20_000;
        let total: usize = (0..n)
            .map(|_| Partitioning::Random.assign_processors(&mut rng, 10).len())
            .sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 5.5).abs() < 0.1, "mean fan-out {mean}");
        assert_eq!(Partitioning::Random.mean_fanout(10), 5.5);
    }

    #[test]
    fn random_assignment_matches_sample_distinct_draws() {
        // The in-place Floyd loop must consume the RNG exactly like the
        // historical `sample_distinct`-based implementation — this is what
        // keeps every committed artifact bit-identical.
        let mut a = SimRng::new(77);
        let mut b = SimRng::new(77);
        let mut buf = Vec::new();
        for _ in 0..500 {
            Partitioning::Random.assign_processors_into(&mut a, 10, &mut buf);
            let fanout = b.uniform_inclusive(1, 10);
            let reference: Vec<u32> = b
                .sample_distinct(10, fanout)
                .into_iter()
                .map(|p| p as u32)
                .collect();
            assert_eq!(buf, reference);
        }
    }

    #[test]
    fn uniprocessor_degenerates_to_single_subtransaction() {
        let mut rng = SimRng::new(4);
        for p in Partitioning::ALL {
            let procs = p.assign_processors(&mut rng, 1);
            assert_eq!(procs, vec![0]);
        }
    }

    #[test]
    fn parse_and_display_round_trip() {
        for p in Partitioning::ALL {
            let parsed: Partitioning = p.name().parse().unwrap();
            assert_eq!(parsed, p);
        }
        assert!("vertical".parse::<Partitioning>().is_err());
    }
}
