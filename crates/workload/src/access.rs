//! Explicit granule-set sampling.
//!
//! The paper never materializes which granules a transaction locks — it
//! works with lock *counts* and a probabilistic conflict draw. To validate
//! that approximation against a real lock table (see
//! `lockgran-core::explicit`), we need concrete granule sets whose
//! statistics match each placement model:
//!
//! * [`AccessPattern::Sequential`] — a contiguous run of granules starting
//!   at a random offset (wrapping), matching **best placement**: `NU`
//!   consecutive entities occupy `ceil(NU · ltot / dbsize)` (± 1 for
//!   alignment) consecutive granules.
//! * [`AccessPattern::Scattered`] — `k` granules sampled uniformly without
//!   replacement, matching **random placement** (the realized granule
//!   count of a uniform entity sample, rather than Yao's mean).
//! * Worst placement is `Scattered` with `k = min(NU, ltot)`.

use lockgran_sim::{FromJson, Json, SimRng, ToJson};

use crate::placement::Placement;

/// Hot-spot access skew (the classic "b–c rule": fraction `c` of the
/// database receives fraction `b` of the accesses, e.g. 80% of accesses
/// to 20% of the granules).
///
/// The paper assumes uniform access; real reference strings are skewed
/// (Rodriguez-Rosell 1976, which the paper itself cites for sequential
/// behaviour). Skew only affects the *explicit* conflict model — the
/// probabilistic partition draw has no notion of which granules are hot,
/// which is precisely why this extension is interesting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HotSpot {
    /// Fraction of the granule space that is hot (0 < fraction < 1).
    pub fraction: f64,
    /// Fraction of accesses that go to the hot region
    /// (`fraction < weight < 1` for actual skew).
    pub weight: f64,
}

impl HotSpot {
    /// The classic 80/20 rule.
    pub fn eighty_twenty() -> Self {
        HotSpot {
            fraction: 0.2,
            weight: 0.8,
        }
    }

    /// Validate the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.fraction > 0.0 && self.fraction < 1.0) {
            return Err("hot-spot fraction must be in (0, 1)".into());
        }
        if !(self.weight > 0.0 && self.weight < 1.0) {
            return Err("hot-spot weight must be in (0, 1)".into());
        }
        Ok(())
    }
}

impl ToJson for HotSpot {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("fraction", self.fraction.to_json()),
            ("weight", self.weight.to_json()),
        ])
    }
}

impl FromJson for HotSpot {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(HotSpot {
            fraction: v.field("fraction")?,
            weight: v.field("weight")?,
        })
    }
}

/// How a transaction's entity accesses map onto concrete granule ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessPattern {
    /// Contiguous granule run (sequential scan).
    Sequential,
    /// Uniform scatter without replacement.
    Scattered,
}

impl AccessPattern {
    /// The access pattern that realizes a placement model.
    pub fn for_placement(p: Placement) -> AccessPattern {
        match p {
            Placement::Best => AccessPattern::Sequential,
            Placement::Worst | Placement::Random => AccessPattern::Scattered,
        }
    }
}

/// Sample the concrete set of granule ids (each in `0..ltot`) locked by a
/// transaction that accesses `nu` entities under placement model
/// `placement`. The set size equals
/// [`Placement::locks_required`]`(nu, ltot, dbsize)` so that the explicit
/// and probabilistic conflict models see identical lock counts.
///
/// # Panics
/// Panics if `ltot == 0`, `dbsize == 0` or `ltot > dbsize`.
pub fn sample_granules(
    rng: &mut SimRng,
    placement: Placement,
    nu: u64,
    ltot: u64,
    dbsize: u64,
) -> Vec<u64> {
    let mut out = Vec::new();
    sample_granules_into(rng, placement, nu, ltot, dbsize, &mut out);
    out
}

/// [`sample_granules`] into a caller-owned buffer (cleared first;
/// identical draw sequence), so steady-state callers reuse capacity
/// instead of allocating a fresh `Vec` per transaction.
///
/// # Panics
/// Panics if `ltot == 0`, `dbsize == 0` or `ltot > dbsize`.
pub fn sample_granules_into(
    rng: &mut SimRng,
    placement: Placement,
    nu: u64,
    ltot: u64,
    dbsize: u64,
    out: &mut Vec<u64>,
) {
    out.clear();
    let count = placement.locks_required(nu, ltot, dbsize);
    if count == 0 {
        return;
    }
    match AccessPattern::for_placement(placement) {
        AccessPattern::Sequential => {
            let start = rng.uniform_inclusive(0, ltot - 1);
            out.extend((0..count).map(|i| (start + i) % ltot));
        }
        AccessPattern::Scattered => rng.sample_distinct_into(ltot, count, out),
    }
}

/// Sample a scattered granule set under hot-spot skew: each pick lands in
/// the hot region (granules `0..ceil(fraction · ltot)`) with probability
/// `weight`, uniformly within the chosen region, retrying duplicates.
/// Degenerates gracefully when the requested count exceeds either
/// region's capacity. Set size matches [`Placement::locks_required`] like
/// the uniform sampler.
///
/// # Panics
/// Panics if `skew.validate()` fails, `ltot == 0`, `dbsize == 0` or
/// `ltot > dbsize`.
pub fn sample_granules_hot(
    rng: &mut SimRng,
    placement: Placement,
    nu: u64,
    ltot: u64,
    dbsize: u64,
    skew: HotSpot,
) -> Vec<u64> {
    let mut out = Vec::new();
    sample_granules_hot_into(rng, placement, nu, ltot, dbsize, skew, &mut out);
    out
}

/// [`sample_granules_hot`] into a caller-owned buffer (cleared first;
/// identical draw sequence).
///
/// # Panics
/// Panics if `skew.validate()` fails, `ltot == 0`, `dbsize == 0` or
/// `ltot > dbsize`.
pub fn sample_granules_hot_into(
    rng: &mut SimRng,
    placement: Placement,
    nu: u64,
    ltot: u64,
    dbsize: u64,
    skew: HotSpot,
    out: &mut Vec<u64>,
) {
    if let Err(e) = skew.validate() {
        panic!("invalid hot spot: {e}");
    }
    out.clear();
    let count = placement.locks_required(nu, ltot, dbsize);
    if count == 0 {
        return;
    }
    if AccessPattern::for_placement(placement) == AccessPattern::Sequential {
        // Sequential runs: skew biases the *start* of the run into the
        // hot region with probability `weight`.
        let hot = ((skew.fraction * ltot as f64).ceil() as u64).clamp(1, ltot);
        let start = if rng.bernoulli(skew.weight) {
            rng.uniform_inclusive(0, hot - 1)
        } else if hot < ltot {
            rng.uniform_inclusive(hot, ltot - 1)
        } else {
            rng.uniform_inclusive(0, ltot - 1)
        };
        out.extend((0..count).map(|i| (start + i) % ltot));
        return;
    }

    let hot = ((skew.fraction * ltot as f64).ceil() as u64).clamp(1, ltot);
    let cold = ltot - hot;
    let mut set = std::collections::BTreeSet::new();
    out.reserve(count as usize);
    // Rejection sampling with a bounded number of tries per element;
    // afterwards fill deterministically so the contract (exact count)
    // always holds.
    let mut budget = count * 64;
    while (out.len() as u64) < count && budget > 0 {
        budget -= 1;
        let g = if cold == 0 || rng.bernoulli(skew.weight) {
            rng.uniform_inclusive(0, hot - 1)
        } else {
            rng.uniform_inclusive(hot, ltot - 1)
        };
        if set.insert(g) {
            out.push(g);
        }
    }
    let mut next = 0;
    while (out.len() as u64) < count {
        if set.insert(next) {
            out.push(next);
        }
        next += 1;
    }
}

/// Maps the paper's flat granule ids (`0..ltot`) onto a three-level
/// database → area → granule hierarchy for multigranularity locking.
///
/// The paper's model has a single flat granule axis; hierarchical
/// protocols need each granule placed under an intermediate "area" node
/// (file/relation analogue). Granule `g` lives in area `g / per_area` —
/// the mapping is order-preserving, so the sequential runs produced by
/// best placement stay clustered within areas, exactly the locality
/// escalation exploits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchyMap {
    areas: u64,
    per_area: u64,
}

impl HierarchyMap {
    /// Build the mapping for `ltot` granules grouped into at most `areas`
    /// areas. The requested area count is clamped to `ltot` (an area must
    /// hold at least one granule) and trailing empty areas are dropped, so
    /// every area contains at least one live granule.
    ///
    /// # Panics
    /// Panics if `ltot == 0` or `areas == 0`.
    pub fn new(ltot: u64, areas: u64) -> Self {
        assert!(ltot > 0, "ltot must be positive");
        assert!(areas > 0, "areas must be positive");
        let clamped = areas.min(ltot);
        let per_area = ltot.div_ceil(clamped);
        // Recompute the area count so rounding never leaves empty areas
        // (e.g. ltot = 100, areas = 16 → per_area = 7 → 15 areas).
        let areas = ltot.div_ceil(per_area);
        HierarchyMap { areas, per_area }
    }

    /// Number of areas (middle hierarchy level).
    pub fn areas(&self) -> u64 {
        self.areas
    }

    /// Granule capacity of each area (the last area may be ragged).
    pub fn per_area(&self) -> u64 {
        self.per_area
    }

    /// Per-level fan-outs for an implicit database → area → granule tree
    /// (`lockgran-lockmgr`'s `GranuleTree::new` input). The leaf level has
    /// `areas × per_area ≥ ltot` slots; ids `ltot..` are simply never
    /// requested.
    pub fn fanouts(&self) -> [u64; 2] {
        [self.areas, self.per_area]
    }

    /// The area containing granule `g`.
    pub fn area_of(&self, granule: u64) -> u64 {
        granule / self.per_area
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DB: u64 = 5000;

    fn assert_valid(set: &[u64], ltot: u64) {
        let mut s = set.to_vec();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), set.len(), "duplicate granules");
        assert!(set.iter().all(|&g| g < ltot), "granule out of range");
    }

    #[test]
    fn set_size_matches_placement_formula() {
        let mut rng = SimRng::new(1);
        for p in Placement::ALL {
            for &(nu, ltot) in &[(250u64, 100u64), (25, 100), (500, DB), (1, 1)] {
                let set = sample_granules(&mut rng, p, nu, ltot, DB);
                assert_eq!(
                    set.len() as u64,
                    p.locks_required(nu, ltot, DB),
                    "{p:?} nu={nu} ltot={ltot}"
                );
                assert_valid(&set, ltot);
            }
        }
    }

    #[test]
    fn sequential_sets_are_contiguous_runs() {
        let mut rng = SimRng::new(2);
        for _ in 0..100 {
            let set = sample_granules(&mut rng, Placement::Best, 500, 100, DB);
            // 500 entities over 100 granules of 50 -> 10 consecutive ids.
            assert_eq!(set.len(), 10);
            for w in set.windows(2) {
                assert_eq!(w[1], (w[0] + 1) % 100, "not contiguous: {set:?}");
            }
        }
    }

    #[test]
    fn sequential_wraps_around() {
        let mut rng = SimRng::new(3);
        let mut saw_wrap = false;
        for _ in 0..1000 {
            let set = sample_granules(&mut rng, Placement::Best, 500, 100, DB);
            if set.windows(2).any(|w| w[1] < w[0]) {
                saw_wrap = true;
                break;
            }
        }
        assert!(saw_wrap, "wrap-around never observed in 1000 draws");
    }

    #[test]
    fn scattered_sets_cover_range() {
        let mut rng = SimRng::new(4);
        let mut seen = [false; 100];
        for _ in 0..500 {
            for &g in &sample_granules(&mut rng, Placement::Random, 50, 100, DB) {
                seen[g as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "some granules never sampled");
    }

    #[test]
    fn worst_placement_locks_everything_when_ltot_small() {
        let mut rng = SimRng::new(5);
        let set = sample_granules(&mut rng, Placement::Worst, 250, 100, DB);
        assert_eq!(set.len(), 100);
        assert_valid(&set, 100);
    }

    #[test]
    fn zero_entities_empty_set() {
        let mut rng = SimRng::new(6);
        assert!(sample_granules(&mut rng, Placement::Best, 0, 100, DB).is_empty());
    }

    #[test]
    fn hot_spot_sets_are_valid_and_skewed() {
        let mut rng = SimRng::new(7);
        let skew = HotSpot::eighty_twenty();
        let mut hot_hits = 0u64;
        let mut total = 0u64;
        for _ in 0..500 {
            let set = sample_granules_hot(&mut rng, Placement::Random, 50, 100, DB, skew);
            assert_eq!(
                set.len() as u64,
                Placement::Random.locks_required(50, 100, DB)
            );
            assert_valid(&set, 100);
            hot_hits += set.iter().filter(|&&g| g < 20).count() as u64;
            total += set.len() as u64;
        }
        // 80% of accesses target the 20 hot granules; with distinctness
        // the realized share is lower but must far exceed uniform (20%).
        let share = hot_hits as f64 / total as f64;
        assert!(share > 0.4, "hot share {share} not skewed");
    }

    #[test]
    fn hot_spot_sequential_biases_run_start() {
        let mut rng = SimRng::new(8);
        let skew = HotSpot::eighty_twenty();
        let mut hot_starts = 0;
        for _ in 0..1000 {
            let set = sample_granules_hot(&mut rng, Placement::Best, 50, 100, DB, skew);
            assert_eq!(set.len(), 1);
            if set[0] < 20 {
                hot_starts += 1;
            }
        }
        assert!(
            (700..=900).contains(&hot_starts),
            "hot starts {hot_starts}/1000, expected ~800"
        );
    }

    #[test]
    fn hot_spot_fills_even_when_count_exceeds_hot_region() {
        let mut rng = SimRng::new(9);
        // weight ~1: nearly all draws go to a 2-granule hot region, but a
        // 50-granule set must still materialize.
        let skew = HotSpot {
            fraction: 0.02,
            weight: 0.99,
        };
        let set = sample_granules_hot(&mut rng, Placement::Worst, 50, 100, DB, skew);
        assert_eq!(set.len(), 50);
        assert_valid(&set, 100);
    }

    #[test]
    fn hierarchy_map_covers_every_granule_without_empty_areas() {
        for &(ltot, areas) in &[
            (100u64, 16u64),
            (1, 16),
            (10, 16),
            (5000, 16),
            (7, 3),
            (100, 1),
        ] {
            let m = HierarchyMap::new(ltot, areas);
            assert!(m.areas() >= 1 && m.areas() <= areas.min(ltot));
            // Leaf capacity covers the granule space.
            assert!(
                m.areas() * m.per_area() >= ltot,
                "ltot={ltot} areas={areas}"
            );
            // Every granule maps to a live area; every area is non-empty.
            let mut seen = vec![false; m.areas() as usize];
            for g in 0..ltot {
                let a = m.area_of(g);
                assert!(a < m.areas(), "granule {g} mapped past the last area");
                seen[a as usize] = true;
            }
            assert!(
                seen.iter().all(|&b| b),
                "empty area for ltot={ltot} areas={areas}"
            );
        }
    }

    #[test]
    fn hierarchy_map_is_order_preserving() {
        let m = HierarchyMap::new(100, 16);
        assert_eq!(m.fanouts(), [m.areas(), m.per_area()]);
        for g in 1..100 {
            assert!(m.area_of(g) >= m.area_of(g - 1));
        }
        // Whole-database degenerate case: one area holding everything.
        let one = HierarchyMap::new(50, 1);
        assert_eq!(one.areas(), 1);
        assert_eq!(one.per_area(), 50);
        assert!((0..50).all(|g| one.area_of(g) == 0));
    }

    #[test]
    fn hot_spot_validation() {
        assert!(HotSpot {
            fraction: 0.0,
            weight: 0.5
        }
        .validate()
        .is_err());
        assert!(HotSpot {
            fraction: 0.5,
            weight: 1.0
        }
        .validate()
        .is_err());
        assert!(HotSpot::eighty_twenty().validate().is_ok());
    }
}
