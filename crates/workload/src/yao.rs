//! Yao's block-access estimate.
//!
//! Yao's classical formula [CACM 1977] gives the expected number of
//! granules touched when `k` entities are chosen at random without
//! replacement from a database of `d` entities packed into `g` granules of
//! `d / g` entities each:
//!
//! ```text
//! E[granules] = g * (1 - C(d - d/g, k) / C(d, k))
//! ```
//!
//! The paper (§3.5, citing Ries & Stonebraker [TODS 1979]) uses exactly
//! this expression to model **random placement** of the lock count
//! `LU_i`. Binomial coefficients at `d = 5000` overflow everything, so the
//! ratio is evaluated as a running product
//! `Π_{i=0}^{k-1} (m - i) / (d - i)` with `m = d - d/g`, which is exact in
//! real arithmetic and numerically benign (every factor is in `[0, 1]`).

/// Expected number of granules touched: `d` entities, `g` granules, `k`
/// entities accessed. Returns a real number in `[0, g]`.
///
/// Edge cases follow the combinatorics: `k = 0` touches nothing; `k > m`
/// (more accesses than entities *outside* any one granule) forces every
/// granule to be touched with probability 1 only when `k > d - d/g`.
///
/// # Panics
/// Panics if `g == 0`, `d == 0`, or `g > d`.
pub fn yao_expected_granules(d: u64, g: u64, k: u64) -> f64 {
    assert!(d > 0, "database must be non-empty");
    assert!(g > 0, "granule count must be positive");
    assert!(g <= d, "cannot have more granules than entities");
    if k == 0 {
        return 0.0;
    }
    if k >= d {
        return g as f64;
    }
    // Entities not in a fixed granule. Granule size is d/g entities; the
    // formula treats granules as equal-sized, as the paper assumes.
    let granule_size = d / g;
    let m = d - granule_size;
    if k > m {
        // Too many accesses to avoid any granule.
        return g as f64;
    }
    // ratio = C(m, k) / C(d, k) = prod_{i=0..k-1} (m - i) / (d - i)
    let mut ratio = 1.0f64;
    for i in 0..k {
        ratio *= (m - i) as f64 / (d - i) as f64;
        // lint:allow(D003): early exit once the product underflows to
        // exactly 0.0 — it can never recover, every factor is < 1
        if ratio == 0.0 {
            break;
        }
    }
    g as f64 * (1.0 - ratio)
}

/// Exact expectation of the number of granules touched when `k` distinct
/// entities are drawn uniformly from `d` entities arranged into `g`
/// granules whose sizes may be *unequal* (sizes given explicitly). Used as
/// a reference implementation to validate [`yao_expected_granules`]:
/// by linearity of expectation,
/// `E = Σ_j (1 - C(d - s_j, k) / C(d, k))` over granule sizes `s_j`.
///
/// # Panics
/// Panics if sizes don't sum to `d` or any size is zero.
pub fn exact_expected_granules(d: u64, sizes: &[u64], k: u64) -> f64 {
    assert_eq!(
        sizes.iter().sum::<u64>(),
        d,
        "granule sizes must sum to dbsize"
    );
    assert!(
        sizes.iter().all(|&s| s > 0),
        "granule sizes must be positive"
    );
    if k == 0 {
        return 0.0;
    }
    sizes
        .iter()
        .map(|&s| {
            if k > d - s {
                1.0
            } else {
                let mut ratio = 1.0f64;
                for i in 0..k {
                    ratio *= (d - s - i) as f64 / (d - i) as f64;
                }
                1.0 - ratio
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_accesses_touch_nothing() {
        assert_eq!(yao_expected_granules(5000, 100, 0), 0.0);
    }

    #[test]
    fn full_scan_touches_every_granule() {
        assert_eq!(yao_expected_granules(5000, 100, 5000), 100.0);
        assert_eq!(yao_expected_granules(5000, 100, 6000), 100.0);
    }

    #[test]
    fn single_access_touches_one_granule_in_expectation_times_probability() {
        // With k = 1: E = g * (1 - (d - d/g)/d) = g * (d/g)/d = 1.
        for &(d, g) in &[(5000u64, 1u64), (5000, 10), (5000, 100), (5000, 5000)] {
            let e = yao_expected_granules(d, g, 1);
            assert!((e - 1.0).abs() < 1e-9, "d={d} g={g} E={e}");
        }
    }

    #[test]
    fn one_granule_database() {
        // g = 1: any access touches the single granule.
        for k in [1u64, 10, 100] {
            assert!((yao_expected_granules(5000, 1, k) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn record_level_granularity_equals_k() {
        // g = d: every entity is its own granule, so E = k exactly.
        for k in [1u64, 17, 250, 499] {
            let e = yao_expected_granules(5000, 5000, k);
            assert!((e - k as f64).abs() < 1e-6, "k={k} E={e}");
        }
    }

    #[test]
    fn bounded_by_min_k_g() {
        for g in [1u64, 2, 10, 50, 200, 1000, 5000] {
            for k in [1u64, 5, 50, 250, 500, 2500] {
                let e = yao_expected_granules(5000, g, k);
                assert!(e <= g as f64 + 1e-9, "E={e} > g={g}");
                assert!(e <= k as f64 + 1e-9, "E={e} > k={k}");
                assert!(e >= 1.0 - 1e-9, "E={e} < 1 for k={k} >= 1");
            }
        }
    }

    #[test]
    fn monotone_in_access_count() {
        let mut prev = 0.0;
        for k in 0..500 {
            let e = yao_expected_granules(5000, 200, k);
            assert!(e >= prev - 1e-12, "not monotone at k={k}");
            prev = e;
        }
    }

    #[test]
    fn matches_exact_formula_for_equal_granules() {
        // For d divisible by g the approximation *is* the exact formula.
        for &(d, g) in &[(100u64, 10u64), (5000, 50), (5000, 500)] {
            let sizes = vec![d / g; g as usize];
            for k in [1u64, 3, 10, 40] {
                let approx = yao_expected_granules(d, g, k);
                let exact = exact_expected_granules(d, &sizes, k);
                assert!(
                    (approx - exact).abs() < 1e-9,
                    "d={d} g={g} k={k}: {approx} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn exact_handles_unequal_granules() {
        // 10 entities: one granule of 9, one of 1. Drawing k=1:
        // E = (1 - C(1,1)/C(10,1)) + (1 - C(9,1)/C(10,1)) = 0.9 + 0.1 = 1.
        let e = exact_expected_granules(10, &[9, 1], 1);
        assert!((e - 1.0).abs() < 1e-12);
        // Drawing all 10 touches both.
        let e = exact_expected_granules(10, &[9, 1], 10);
        assert!((e - 2.0).abs() < 1e-12);
    }

    #[test]
    fn paper_scale_values_are_sane() {
        // dbsize = 5000, average transaction 250 entities.
        // Coarse (g = 10): essentially all granules touched.
        let coarse = yao_expected_granules(5000, 10, 250);
        assert!(coarse > 9.9, "coarse {coarse}");
        // Fine (g = 5000): about 250 granules touched.
        let fine = yao_expected_granules(5000, 5000, 250);
        assert!((fine - 250.0).abs() < 1e-3, "fine {fine}");
    }

    #[test]
    #[should_panic(expected = "granules than entities")]
    fn rejects_more_granules_than_entities() {
        yao_expected_granules(10, 11, 1);
    }
}
