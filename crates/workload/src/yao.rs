//! Yao's block-access estimate.
//!
//! Yao's classical formula [CACM 1977] gives the expected number of
//! granules touched when `k` entities are chosen at random without
//! replacement from a database of `d` entities packed into `g` granules of
//! `d / g` entities each:
//!
//! ```text
//! E[granules] = g * (1 - C(d - d/g, k) / C(d, k))
//! ```
//!
//! The paper (§3.5, citing Ries & Stonebraker [TODS 1979]) uses exactly
//! this expression to model **random placement** of the lock count
//! `LU_i`. Binomial coefficients at `d = 5000` overflow everything, so the
//! ratio is evaluated as a running product
//! `Π_{i=0}^{k-1} (m - i) / (d - i)` with `m = d - d/g`, which is exact in
//! real arithmetic and numerically benign (every factor is in `[0, 1]`).
//!
//! ## Capacity scaling
//!
//! The running product is `O(k)` per evaluation — fine at the paper's
//! `d = 5000`, hopeless when transactions touch 10⁵ entities of a
//! 10⁷-entity database. Above [`YAO_PRODUCT_MAX_D`] the public entry
//! point therefore routes to [`yao_expected_granules_closed`], an `O(1)`
//! ln-gamma (Euler–Maclaurin) evaluation of the same ratio. At or below
//! the threshold the original product runs unchanged, so every committed
//! golden (all at `d = 5000`) stays bit-identical. The closed form is
//! written so that every floating-point summand is of the same order as
//! `ln r` itself (no large-term cancellation); see
//! [`yao_expected_granules_closed`] for the error budget.

/// Largest database size evaluated with the exact `O(k)` running
/// product. Above this, [`yao_expected_granules`] switches to the `O(1)`
/// closed form. The committed artifacts all use `d = 5000`, far below
/// the threshold, so routing cannot move a golden. The value also bounds
/// [`crate::LocksMemo`]: every `nu` that can reach the product path fits
/// in a bounded memo table.
pub const YAO_PRODUCT_MAX_D: u64 = 1 << 16;

/// Smallest `m - k` tail for which the Euler–Maclaurin expansion is used
/// inside the closed form; below it the complementary product (bounded
/// by underflow to ~1100 factors) takes over.
const EM_MIN_TAIL: u64 = 512;

/// Expected number of granules touched: `d` entities, `g` granules, `k`
/// entities accessed. Returns a real number in `[0, g]`.
///
/// Edge cases follow the combinatorics: `k = 0` touches nothing; `k > m`
/// (more accesses than entities *outside* any one granule) forces every
/// granule to be touched with probability 1 only when `k > d - d/g`.
///
/// For `d <= YAO_PRODUCT_MAX_D` this is the exact running product (the
/// historical evaluation, bit-identical to every committed golden); for
/// larger databases it delegates to the `O(1)`
/// [`yao_expected_granules_closed`].
///
/// # Panics
/// Panics if `g == 0`, `d == 0`, or `g > d`.
pub fn yao_expected_granules(d: u64, g: u64, k: u64) -> f64 {
    assert!(d > 0, "database must be non-empty");
    assert!(g > 0, "granule count must be positive");
    assert!(g <= d, "cannot have more granules than entities");
    if d > YAO_PRODUCT_MAX_D {
        return yao_expected_granules_closed(d, g, k);
    }
    if k == 0 {
        return 0.0;
    }
    if k >= d {
        return g as f64;
    }
    // Entities not in a fixed granule. Granule size is d/g entities; the
    // formula treats granules as equal-sized, as the paper assumes.
    let granule_size = d / g;
    let m = d - granule_size;
    if k > m {
        // Too many accesses to avoid any granule.
        return g as f64;
    }
    // ratio = C(m, k) / C(d, k) = prod_{i=0..k-1} (m - i) / (d - i)
    let mut ratio = 1.0f64;
    for i in 0..k {
        ratio *= (m - i) as f64 / (d - i) as f64;
        // lint:allow(D003): early exit once the product underflows to
        // exactly 0.0 — it can never recover, every factor is < 1
        if ratio == 0.0 {
            break;
        }
    }
    g as f64 * (1.0 - ratio)
}

/// Closed-form (`O(1)`) evaluation of Yao's expectation for large
/// databases: same combinatorial edge cases as
/// [`yao_expected_granules`], but the binomial ratio
/// `r = C(m, k) / C(d, k)` (`m = d - d/g`) is evaluated as
/// `exp(ln r)` with `ln r = lnΓ-difference` via a fourth-order
/// Euler–Maclaurin expansion instead of `k` multiplications.
///
/// ## Numerical design
///
/// A naive `lnΓ(m+1) - lnΓ(m-k+1) - lnΓ(d+1) + lnΓ(d-k+1)` loses ~9
/// digits to cancellation exactly where precision matters (`r → 1`, i.e.
/// `E → 0`). Instead the four-term difference is rearranged so **every
/// summand is of the same order as `ln r` itself**:
///
/// ```text
/// ln r = (m + ½)·ln1p(s·k / (d·(m-k)))      s = d/g
///      +  k     ·ln1p(-s / (d-k))
///      +  s     ·ln1p(-k / d)
///      + Bernoulli x⁻¹, x⁻³, x⁻⁵ pair-differences
/// ```
///
/// (the first line folds the integral and trapezoid terms — they share
/// the same `ln1p` argument). Relative error on `ln r` is a few ulps,
/// so the relative error on `E = g·(1 - r)` is ~1e-15 across the
/// domain — comfortably inside the 1e-12 agreement bound the property
/// tests assert against the running product.
///
/// The expansion needs a tail `m - k >= EM_MIN_TAIL`; closer to the
/// `k = m` boundary the ratio is instead the complementary product
/// `Π_{j=0}^{s-1} (d-k-j)/(d-j)` (same value by the symmetry
/// `C(m,k)/C(d,k) = C(d-k,s)/C(d,s)`), whose factors are then at most
/// `(s + EM_MIN_TAIL)/d <= ~0.5 + ε`, so it underflows to exactly 0 in
/// at most ~1100 iterations — still effectively `O(1)`.
///
/// # Panics
/// Panics under the same conditions as [`yao_expected_granules`].
pub fn yao_expected_granules_closed(d: u64, g: u64, k: u64) -> f64 {
    assert!(d > 0, "database must be non-empty");
    assert!(g > 0, "granule count must be positive");
    assert!(g <= d, "cannot have more granules than entities");
    if k == 0 {
        return 0.0;
    }
    if k >= d {
        return g as f64;
    }
    let s = d / g;
    let m = d - s;
    if k > m {
        return g as f64;
    }
    let ratio = if m - k >= EM_MIN_TAIL {
        ln_binom_ratio(d, m, k, s).exp()
    } else {
        complementary_ratio(d, k, s)
    };
    // The true expectation never exceeds min(k, g); clamp the last few
    // ulps of exp/multiply rounding so callers can rely on the bound.
    (g as f64 * (1.0 - ratio)).clamp(0.0, k.min(g) as f64)
}

/// `ln( C(m, k) / C(d, k) )` with `m = d - s`, by a cancellation-free
/// Euler–Maclaurin expansion of `Σ ln j` differences. Requires
/// `m - k >= EM_MIN_TAIL` (truncation error then < 1e-16 relative).
fn ln_binom_ratio(d: u64, m: u64, k: u64, s: u64) -> f64 {
    let (df, mf, kf, sf) = (d as f64, m as f64, k as f64, s as f64);
    let mk = mf - kf; // m - k
    let dk = df - kf; // d - k
                      // Integral + trapezoid terms of Σ_{j=a+1}^{b} ln j, paired across
                      // the (m-k, m) and (d-k, d) ranges so each summand is O(ln r).
    let t0 = (mf + 0.5) * (sf * kf / (df * mk)).ln_1p();
    let t1 = kf * (-sf / dk).ln_1p();
    let t2 = sf * (-kf / df).ln_1p();
    // Bernoulli corrections, each evaluated as a single pair-difference.
    let c1 = -(kf * sf / 12.0) * (mf + df - kf) / (df * dk * mf * mk);
    let am = mk * mk + mk * mf + mf * mf;
    let ad = dk * dk + dk * df + df * df;
    let c3 = (kf / 360.0) * (am / (mf.powi(3) * mk.powi(3)) - ad / (df.powi(3) * dk.powi(3)));
    let c5 =
        ((1.0 / mf.powi(5) - 1.0 / mk.powi(5)) - (1.0 / df.powi(5) - 1.0 / dk.powi(5))) / 1260.0;
    t0 + t1 + t2 + c1 + c3 + c5
}

/// `C(d-s, k) / C(d, k)` through the complementary `s`-factor product
/// `Π_{j=0}^{s-1} (d-k-j)/(d-j)`. Used for the `k → m` boundary where
/// the Euler–Maclaurin tail is too short; there the factors are small
/// enough that the product underflows to exactly 0 within ~1100 steps.
fn complementary_ratio(d: u64, k: u64, s: u64) -> f64 {
    let mut ratio = 1.0f64;
    for j in 0..s {
        ratio *= (d - k - j) as f64 / (d - j) as f64;
        // lint:allow(D003): early exit once the product underflows to
        // exactly 0.0 — it can never recover, every factor is < 1
        if ratio == 0.0 {
            break;
        }
    }
    ratio
}

/// Exact expectation of the number of granules touched when `k` distinct
/// entities are drawn uniformly from `d` entities arranged into `g`
/// granules whose sizes may be *unequal* (sizes given explicitly). Used as
/// a reference implementation to validate [`yao_expected_granules`]:
/// by linearity of expectation,
/// `E = Σ_j (1 - C(d - s_j, k) / C(d, k))` over granule sizes `s_j`.
///
/// # Panics
/// Panics if sizes don't sum to `d` or any size is zero.
pub fn exact_expected_granules(d: u64, sizes: &[u64], k: u64) -> f64 {
    assert_eq!(
        sizes.iter().sum::<u64>(),
        d,
        "granule sizes must sum to dbsize"
    );
    assert!(
        sizes.iter().all(|&s| s > 0),
        "granule sizes must be positive"
    );
    if k == 0 {
        return 0.0;
    }
    sizes
        .iter()
        .map(|&s| {
            if k > d - s {
                1.0
            } else {
                let mut ratio = 1.0f64;
                for i in 0..k {
                    ratio *= (d - s - i) as f64 / (d - i) as f64;
                }
                1.0 - ratio
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_accesses_touch_nothing() {
        assert_eq!(yao_expected_granules(5000, 100, 0), 0.0);
    }

    #[test]
    fn full_scan_touches_every_granule() {
        assert_eq!(yao_expected_granules(5000, 100, 5000), 100.0);
        assert_eq!(yao_expected_granules(5000, 100, 6000), 100.0);
    }

    #[test]
    fn single_access_touches_one_granule_in_expectation_times_probability() {
        // With k = 1: E = g * (1 - (d - d/g)/d) = g * (d/g)/d = 1.
        for &(d, g) in &[(5000u64, 1u64), (5000, 10), (5000, 100), (5000, 5000)] {
            let e = yao_expected_granules(d, g, 1);
            assert!((e - 1.0).abs() < 1e-9, "d={d} g={g} E={e}");
        }
    }

    #[test]
    fn one_granule_database() {
        // g = 1: any access touches the single granule.
        for k in [1u64, 10, 100] {
            assert!((yao_expected_granules(5000, 1, k) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn record_level_granularity_equals_k() {
        // g = d: every entity is its own granule, so E = k exactly.
        for k in [1u64, 17, 250, 499] {
            let e = yao_expected_granules(5000, 5000, k);
            assert!((e - k as f64).abs() < 1e-6, "k={k} E={e}");
        }
    }

    #[test]
    fn bounded_by_min_k_g() {
        for g in [1u64, 2, 10, 50, 200, 1000, 5000] {
            for k in [1u64, 5, 50, 250, 500, 2500] {
                let e = yao_expected_granules(5000, g, k);
                assert!(e <= g as f64 + 1e-9, "E={e} > g={g}");
                assert!(e <= k as f64 + 1e-9, "E={e} > k={k}");
                assert!(e >= 1.0 - 1e-9, "E={e} < 1 for k={k} >= 1");
            }
        }
    }

    #[test]
    fn monotone_in_access_count() {
        let mut prev = 0.0;
        for k in 0..500 {
            let e = yao_expected_granules(5000, 200, k);
            assert!(e >= prev - 1e-12, "not monotone at k={k}");
            prev = e;
        }
    }

    #[test]
    fn matches_exact_formula_for_equal_granules() {
        // For d divisible by g the approximation *is* the exact formula.
        for &(d, g) in &[(100u64, 10u64), (5000, 50), (5000, 500)] {
            let sizes = vec![d / g; g as usize];
            for k in [1u64, 3, 10, 40] {
                let approx = yao_expected_granules(d, g, k);
                let exact = exact_expected_granules(d, &sizes, k);
                assert!(
                    (approx - exact).abs() < 1e-9,
                    "d={d} g={g} k={k}: {approx} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn exact_handles_unequal_granules() {
        // 10 entities: one granule of 9, one of 1. Drawing k=1:
        // E = (1 - C(1,1)/C(10,1)) + (1 - C(9,1)/C(10,1)) = 0.9 + 0.1 = 1.
        let e = exact_expected_granules(10, &[9, 1], 1);
        assert!((e - 1.0).abs() < 1e-12);
        // Drawing all 10 touches both.
        let e = exact_expected_granules(10, &[9, 1], 10);
        assert!((e - 2.0).abs() < 1e-12);
    }

    #[test]
    fn paper_scale_values_are_sane() {
        // dbsize = 5000, average transaction 250 entities.
        // Coarse (g = 10): essentially all granules touched.
        let coarse = yao_expected_granules(5000, 10, 250);
        assert!(coarse > 9.9, "coarse {coarse}");
        // Fine (g = 5000): about 250 granules touched.
        let fine = yao_expected_granules(5000, 5000, 250);
        assert!((fine - 250.0).abs() < 1e-3, "fine {fine}");
    }

    #[test]
    #[should_panic(expected = "granules than entities")]
    fn rejects_more_granules_than_entities() {
        yao_expected_granules(10, 11, 1);
    }

    /// The running product, re-stated inline: the bit-for-bit reference
    /// the router must reproduce at paper scale.
    fn product_reference(d: u64, g: u64, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        if k >= d {
            return g as f64;
        }
        let m = d - d / g;
        if k > m {
            return g as f64;
        }
        let mut ratio = 1.0f64;
        for i in 0..k {
            ratio *= (m - i) as f64 / (d - i) as f64;
            if ratio == 0.0 {
                break;
            }
        }
        g as f64 * (1.0 - ratio)
    }

    /// Golden stability: at and below the routing threshold the public
    /// entry point is the running product, *bit for bit* — so committed
    /// artifacts (all at d = 5000) cannot move.
    #[test]
    fn routing_keeps_product_path_bit_identical() {
        for &d in &[10u64, 100, 5000, YAO_PRODUCT_MAX_D] {
            for &g in &[1u64, 2, 10, 100, 1000] {
                if g > d {
                    continue;
                }
                for &k in &[0u64, 1, 3, 10, 250, 500, 4999, d / 2, d - 1] {
                    let routed = yao_expected_granules(d, g, k);
                    let reference = product_reference(d, g, k);
                    assert_eq!(
                        routed.to_bits(),
                        reference.to_bits(),
                        "router diverged from product at d={d} g={g} k={k}"
                    );
                }
            }
        }
    }

    /// The closed form agrees with the running product to 1e-12 relative
    /// over a grid that includes the paper's d = 5000 — both the
    /// Euler–Maclaurin branch (small k) and the complementary-product
    /// branch (k near m).
    #[test]
    fn closed_form_agrees_with_product_to_1e12() {
        for &d in &[600u64, 5000, 50_000] {
            for &g in &[2u64, 5, 10, 50, 200, 1000, 5000] {
                if g > d {
                    continue;
                }
                let m = d - d / g;
                for &k in &[
                    1u64,
                    2,
                    5,
                    17,
                    50,
                    250,
                    500,
                    d / 10,
                    d / 2,
                    m.saturating_sub(1),
                    m,
                ] {
                    if k == 0 || k > m {
                        continue;
                    }
                    let exact = product_reference(d, g, k);
                    let closed = yao_expected_granules_closed(d, g, k);
                    let rel = (closed - exact).abs() / exact.abs().max(f64::MIN_POSITIVE);
                    assert!(
                        rel <= 1e-12,
                        "closed form off by {rel:.3e} at d={d} g={g} k={k}: \
                         {closed} vs {exact}"
                    );
                }
            }
        }
    }

    /// At capacity scale (d = 10⁷) the closed form stays monotone
    /// non-decreasing in the access count.
    #[test]
    fn capacity_scale_monotone_in_access_count() {
        const D: u64 = 10_000_000;
        for &g in &[2u64, 100, 10_000, 1_000_000, D] {
            let mut prev = 0.0;
            let mut k = 1u64;
            while k < D {
                let e = yao_expected_granules(D, g, k);
                assert!(
                    e >= prev - 1e-9,
                    "not monotone at d={D} g={g} k={k}: {e} < {prev}"
                );
                prev = e;
                // Geometric sweep (with a +1 floor so it always advances).
                k = (k * 3 / 2).max(k + 1);
            }
        }
    }

    /// At capacity scale the estimate respects the combinatorial bounds
    /// `0 <= E <= min(k, g)` (and `E >= 1` once anything is accessed).
    #[test]
    fn capacity_scale_bounded_by_min_k_g() {
        const D: u64 = 10_000_000;
        for &g in &[1u64, 2, 64, 5000, 100_000, 1_000_000, D] {
            for &k in &[1u64, 10, 1000, 100_000, 1_000_000, D - 1, D] {
                let e = yao_expected_granules(D, g, k);
                assert!(e >= 1.0 - 1e-9, "E={e} < 1 at g={g} k={k}");
                assert!(e <= g as f64, "E={e} > g={g} at k={k}");
                assert!(e <= k as f64, "E={e} > k={k} at g={g}");
            }
        }
    }

    /// Capacity-scale sanity: the same limit behaviors the paper-scale
    /// tests pin, at d = 10⁷ (single access → 1 granule; record-level
    /// granularity → exactly k; coarse granularity saturates).
    #[test]
    fn capacity_scale_values_are_sane() {
        const D: u64 = 10_000_000;
        let e = yao_expected_granules(D, 1000, 1);
        assert!((e - 1.0).abs() < 1e-9, "single access: {e}");
        let e = yao_expected_granules(D, D, 100_000);
        assert!((e - 100_000.0).abs() < 1e-6, "record level: {e}");
        let e = yao_expected_granules(D, 10, 100_000);
        assert!(e > 9.9999, "coarse saturation: {e}");
    }
}
