//! Property tests for workload generation: placement formulas, Yao's
//! approximation, granule-set sampling and the generator's invariants.

use proptest::prelude::*;

use lockgran_sim::SimRng;
use lockgran_workload::yao::{exact_expected_granules, yao_expected_granules};
use lockgran_workload::{
    access, Partitioning, Placement, SizeDistribution, WorkloadGenerator, WorkloadParams,
};

/// (dbsize, ltot, nu) with ltot <= dbsize and nu <= dbsize.
fn db_params() -> impl Strategy<Value = (u64, u64, u64)> {
    (2u64..5000).prop_flat_map(|dbsize| {
        (Just(dbsize), 1..=dbsize, 1..=dbsize)
    })
}

proptest! {
    /// All placement models: 0 iff nu == 0, else within [1, ltot]; best
    /// and worst bound random from below/above.
    #[test]
    fn placement_bounds((dbsize, ltot, nu) in db_params()) {
        let best = Placement::Best.locks_required(nu, ltot, dbsize);
        let worst = Placement::Worst.locks_required(nu, ltot, dbsize);
        let random = Placement::Random.locks_required(nu, ltot, dbsize);
        for lu in [best, worst, random] {
            prop_assert!(lu >= 1);
            prop_assert!(lu <= ltot);
        }
        prop_assert!(best <= worst);
        // Yao's expectation sits between the extremes (±1 for rounding).
        prop_assert!(random + 1 >= best, "random {random} < best {best}");
        prop_assert!(random <= worst, "random {random} > worst {worst}");
    }

    /// Best placement is monotone in nu and in ltot.
    #[test]
    fn best_placement_monotone((dbsize, ltot, nu) in db_params()) {
        let lu = Placement::Best.locks_required(nu, ltot, dbsize);
        if nu < dbsize {
            prop_assert!(Placement::Best.locks_required(nu + 1, ltot, dbsize) >= lu);
        }
        if ltot < dbsize {
            prop_assert!(Placement::Best.locks_required(nu, ltot + 1, dbsize) >= lu);
        }
    }

    /// Yao's closed form is bounded by min(k, g) and matches the exact
    /// equal-granule formula when g divides d.
    #[test]
    fn yao_bounds_and_exactness(g in 1u64..200, per in 1u64..50, k_frac in 0.0f64..1.0) {
        let d = g * per;
        let k = ((d as f64 * k_frac) as u64).clamp(1, d);
        let e = yao_expected_granules(d, g, k);
        prop_assert!(e <= g as f64 + 1e-9);
        prop_assert!(e <= k as f64 + 1e-9);
        prop_assert!(e >= 1.0 - 1e-9);
        let exact = exact_expected_granules(d, &vec![per; g as usize], k);
        prop_assert!((e - exact).abs() < 1e-6, "yao {e} vs exact {exact}");
    }

    /// Sampled granule sets are duplicate-free, in range, and exactly the
    /// size the placement formula dictates.
    #[test]
    fn sampled_sets_valid((dbsize, ltot, nu) in db_params(), seed in 0u64..1000) {
        let mut rng = SimRng::new(seed);
        for p in Placement::ALL {
            let set = access::sample_granules(&mut rng, p, nu, ltot, dbsize);
            prop_assert_eq!(set.len() as u64, p.locks_required(nu, ltot, dbsize));
            let mut sorted = set.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), set.len(), "duplicates under {:?}", p);
            prop_assert!(set.iter().all(|&x| x < ltot));
        }
    }

    /// Size distributions sample within their declared range.
    #[test]
    fn sizes_in_range(max in 1u64..5000, seed in 0u64..1000) {
        let mut rng = SimRng::new(seed);
        let d = SizeDistribution::Uniform { max };
        for _ in 0..50 {
            let s = d.sample(&mut rng);
            prop_assert!((1..=max).contains(&s));
        }
        let mix = SizeDistribution::eighty_twenty();
        for _ in 0..50 {
            let s = mix.sample(&mut rng);
            prop_assert!((1..=500).contains(&s));
        }
    }

    /// Partitioning yields 1..=npros distinct processors; horizontal
    /// always yields all of them.
    #[test]
    fn partitioning_valid(npros in 1u32..64, seed in 0u64..1000) {
        let mut rng = SimRng::new(seed);
        let h = Partitioning::Horizontal.assign_processors(&mut rng, npros);
        prop_assert_eq!(h.len(), npros as usize);
        let r = Partitioning::Random.assign_processors(&mut rng, npros);
        prop_assert!(!r.is_empty() && r.len() <= npros as usize);
        let mut sorted = r.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), r.len());
        prop_assert!(r.iter().all(|&p| p < npros));
    }

    /// The generator emits specs consistent with its own parameters, and
    /// identical streams for identical seeds.
    #[test]
    fn generator_consistent(seed in 0u64..1000, ltot in 1u64..5000, npros in 1u32..32) {
        let params = WorkloadParams {
            dbsize: 5000,
            ltot,
            size: SizeDistribution::Uniform { max: 500 },
            placement: Placement::Random,
            partitioning: Partitioning::Random,
            npros,
        };
        let rng = SimRng::new(seed);
        let mut a = WorkloadGenerator::new(params.clone(), &rng);
        let mut b = WorkloadGenerator::new(params.clone(), &rng);
        for _ in 0..20 {
            let sa = a.next_spec();
            let sb = b.next_spec();
            prop_assert_eq!(&sa, &sb);
            prop_assert!((1..=500).contains(&sa.entities));
            prop_assert_eq!(
                sa.locks,
                params.placement.locks_required(sa.entities, ltot, 5000)
            );
            prop_assert!(sa.fanout() >= 1 && sa.fanout() <= npros);
        }
    }
}
