//! Integration tests: every rule against its fixture file, asserting
//! span-accurate positive diagnostics, silent negatives, and working
//! `lint:allow` suppressions. The fixtures live under `tests/fixtures/`,
//! which the workspace walker excludes — they are violations on purpose.

use std::path::Path;

use lockgran_lint::{lint_manifest, lint_rust_source_as, Diagnostic, Scope};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()))
}

/// Lint a Rust fixture as library code and return `(line, col, code)`
/// triples, in output order.
fn lint_fixture(name: &str) -> Vec<(u32, u32, &'static str)> {
    let src = fixture(name);
    let diags = lint_rust_source_as(name, &src, Scope::Library);
    triples(&diags)
}

/// Lint a fixture under a synthetic workspace-relative path. The L- and
/// R-rules only fire inside specific crates (`crates/core/`, …), so their
/// fixtures must be presented as if they lived there.
fn lint_fixture_at(name: &str, rel: &str) -> Vec<(u32, u32, &'static str)> {
    let src = fixture(name);
    let diags = lint_rust_source_as(rel, &src, Scope::Library);
    triples(&diags)
}

fn triples(diags: &[Diagnostic]) -> Vec<(u32, u32, &'static str)> {
    diags
        .iter()
        .map(|d| (d.line, d.col, d.rule.code()))
        .collect()
}

#[test]
fn d001_hash_containers() {
    assert_eq!(
        lint_fixture("d001.rs"),
        vec![
            (4, 23, "D001"),
            (5, 23, "D001"),
            (9, 16, "D001"),
            (9, 36, "D001"),
            // Flagged even inside #[cfg(test)]: hash iteration order can
            // flake assertions.
            (23, 27, "D001"),
        ]
    );
}

#[test]
fn d002_wall_clock() {
    assert_eq!(
        lint_fixture("d002.rs"),
        vec![(3, 16, "D002"), (6, 19, "D002"), (7, 29, "D002")]
    );
}

#[test]
fn d003_float_comparisons() {
    assert_eq!(
        lint_fixture("d003.rs"),
        vec![
            (4, 15, "D003"),
            (5, 15, "D003"),
            (6, 17, "D003"),
            (7, 15, "D003"),
        ]
    );
}

#[test]
fn d004_raw_threading() {
    assert_eq!(
        lint_fixture("d004.rs"),
        vec![
            (3, 16, "D004"),  // use std::sync::mpsc
            (6, 31, "D004"),  // std::thread::spawn
            (7, 18, "D004"),  // std::thread::scope
            (10, 26, "D004"), // std::thread::Builder
        ]
    );
}

#[test]
fn d005_ordered_maps_in_hot_lock_module() {
    assert_eq!(
        lint_fixture_at("d005.rs", "crates/lockmgr/src/table.rs"),
        vec![
            (3, 23, "D005"),
            (4, 23, "D005"),
            (7, 14, "D005"),
            (8, 12, "D005"),
            // The allowed occurrence (line 12) is suppressed.
        ]
    );
}

#[test]
fn d005_gated_to_hot_lock_modules() {
    // The reference oracle keeps its ordered maps on purpose; the same
    // source there (or in any other crate) is exempt. (Its now-idle
    // allow is reported as stale, which is W001's job, not D005's.)
    for rel in [
        "crates/lockmgr/src/reference.rs",
        "crates/core/src/conflict.rs",
    ] {
        let diags = lint_fixture_at("d005.rs", rel);
        assert!(diags.iter().all(|d| d.2 != "D005"), "{rel}: {diags:?}");
    }
}

#[test]
fn p001_panicking_calls() {
    assert_eq!(
        lint_fixture("p001.rs"),
        vec![(4, 15, "P001"), (5, 15, "P001")]
    );
}

#[test]
fn p002_front_removal() {
    assert_eq!(
        lint_fixture("p002.rs"),
        vec![(7, 12, "P002"), (12, 27, "P002")]
    );
}

#[test]
fn p002_exempt_outside_library_scope() {
    let src = fixture("p002.rs");
    assert!(lint_rust_source_as("p002.rs", &src, Scope::TestCode).is_empty());
    assert!(lint_rust_source_as("p002.rs", &src, Scope::Bench).is_empty());
}

#[test]
fn j001_round_trip() {
    let src = fixture("j001.rs");
    let diags = lint_rust_source_as("j001.rs", &src, Scope::Library);
    // Position-sorting happens at the workspace level; the per-file API
    // reports to_json-side diffs (anchored at the FromJson header, line
    // 14) before from_json-side diffs (anchored at the ToJson header).
    assert_eq!(
        triples(&diags),
        vec![(14, 1, "J001"), (5, 1, "J001")],
        "{diags:?}"
    );
    // Each direction of the mismatch names the missing field.
    assert!(diags.iter().any(|d| d.message.contains("\"retries\"")));
    assert!(diags.iter().any(|d| d.message.contains("\"attempts\"")));
    // The clean, opted-out and vouched pairs stay silent.
    assert!(!diags.iter().any(|d| d.message.contains("Matching")));
    assert!(!diags.iter().any(|d| d.message.contains("Opaque")));
    assert!(!diags.iter().any(|d| d.message.contains("Vouched")));
}

#[test]
fn z001_external_dependencies() {
    let src = fixture("z001_external_dep.toml");
    let diags = lint_manifest("z001_external_dep.toml", &src);
    let lines: Vec<(u32, &str)> = diags.iter().map(|d| (d.line, d.rule.code())).collect();
    assert_eq!(
        lines,
        vec![
            (12, "Z001"), // serde = "1.0"
            (13, "Z001"), // rand = { git = … }
            (18, "Z001"), // criterion = { version = … }
            (20, "Z001"), // [dependencies.libc] without path/workspace
        ],
        "{diags:?}"
    );
    assert!(diags.iter().any(|d| d.message.contains("serde")));
    assert!(diags.iter().any(|d| d.message.contains("libc")));
}

#[test]
fn allow_file_suppresses_one_rule_everywhere() {
    assert_eq!(lint_fixture("allow_file.rs"), vec![(14, 7, "P001")]);
}

#[test]
fn bench_scope_exempts_determinism_rules() {
    let src = fixture("d001.rs");
    let diags = lint_rust_source_as("d001.rs", &src, Scope::Bench);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn test_scope_exempts_panics_but_not_containers() {
    let p = fixture("p001.rs");
    assert!(lint_rust_source_as("p001.rs", &p, Scope::TestCode).is_empty());
    let d = fixture("d001.rs");
    assert!(!lint_rust_source_as("d001.rs", &d, Scope::TestCode).is_empty());
}

#[test]
fn l001_lock_released_after_early_exit() {
    assert_eq!(
        lint_fixture_at("l001.rs", "crates/core/src/l001.rs"),
        vec![(5, 23, "L001"), (7, 9, "L001"), (28, 13, "L001")]
    );
}

#[test]
fn l001_gated_to_lock_crates() {
    // The same source outside crates/core + crates/lockmgr is exempt
    // (the acquire/release vocabulary is only a protocol there).
    let diags = lint_fixture_at("l001.rs", "crates/experiments/src/l001.rs");
    assert!(diags.iter().all(|d| d.2 != "L001"), "{diags:?}");
}

#[test]
fn l001_applies_to_core_twophase_module() {
    // The incremental-2PL adapter lives at crates/core/src/twophase.rs;
    // the acquire/release pairing rules must keep gating it.
    assert_eq!(
        lint_fixture_at("l001.rs", "crates/core/src/twophase.rs"),
        vec![(5, 23, "L001"), (7, 9, "L001"), (28, 13, "L001")]
    );
}

#[test]
fn l002_applies_to_core_twophase_module() {
    assert_eq!(
        lint_fixture_at("l002.rs", "crates/core/src/twophase.rs"),
        vec![(4, 15, "L002"), (5, 7, "L002")]
    );
}

#[test]
fn l002_discarded_acquire_results() {
    assert_eq!(
        lint_fixture_at("l002.rs", "crates/lockmgr/src/l002.rs"),
        vec![(4, 15, "L002"), (5, 7, "L002")]
    );
}

#[test]
fn r001_draw_under_pool_branch() {
    assert_eq!(
        lint_fixture_at("r001.rs", "crates/core/src/r001.rs"),
        vec![(6, 38, "R001")]
    );
}

#[test]
fn r002_shared_stream_draw_under_cc_branch() {
    assert_eq!(
        lint_fixture_at("r002.rs", "crates/core/src/r002.rs"),
        vec![(8, 43, "R002")]
    );
}

#[test]
fn e001_wildcard_hiding_marked_enum_variants() {
    assert_eq!(lint_fixture("e001.rs"), vec![(22, 9, "E001")]);
}

#[test]
fn e002_covers_marker_with_missing_variant() {
    assert_eq!(
        lint_fixture("e002.rs"),
        vec![(9, 1, "E002"), (21, 1, "E002")]
    );
}

#[test]
fn e003_all_array_drift() {
    assert_eq!(
        lint_fixture("e003.rs"),
        vec![(10, 9, "E003"), (19, 9, "E003")]
    );
}

#[test]
fn w001_stale_allow_reported_once() {
    assert_eq!(lint_fixture("w001.rs"), vec![(3, 1, "W001")]);
}
