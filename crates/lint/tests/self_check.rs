//! The workspace must be lint-clean: this is the same check
//! `scripts/verify.sh` runs via `cargo run -p lockgran-lint`, kept as a
//! test so `cargo test` alone also catches policy regressions.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate sits two levels below the workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    let diags = lockgran_lint::lint_workspace(&root).expect("workspace scan");
    assert!(
        diags.is_empty(),
        "workspace has lint violations:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_scan_covers_all_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let files = lockgran_lint::walk::discover(&root).expect("walk workspace");
    for krate in [
        "sim",
        "core",
        "lockmgr",
        "workload",
        "experiments",
        "bench",
        "lint",
    ] {
        assert!(
            files
                .iter()
                .any(|f| f.rel.starts_with(&format!("crates/{krate}/src/"))),
            "scan missed crates/{krate}"
        );
    }
    assert!(
        files.iter().any(|f| f.rel == "Cargo.toml"),
        "scan missed the workspace manifest"
    );
    assert!(
        !files.iter().any(|f| f.rel.contains("fixtures/")),
        "fixtures must not be scanned"
    );
}
