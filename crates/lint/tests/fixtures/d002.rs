//! D002 fixture: wall-clock reads.

use std::time::Instant; // VIOLATION

pub fn measure() -> u64 {
    let started = Instant::now(); // VIOLATION
    let _stamp = std::time::SystemTime::now(); // VIOLATION
    // lint:allow(D002): this type is a simulated instant, not std's
    let vouched = Instant::now(); // suppressed
    let _ = (started, vouched);
    // Instant in a comment is fine; "SystemTime" in a string is fine.
    let _ = "SystemTime";
    0
}
