//! P001 fixture: panicking calls in library code.

pub fn take(o: Option<u64>, r: Result<u64, String>) -> u64 {
    let a = o.unwrap(); // VIOLATION
    let b = r.expect("value must be present"); // VIOLATION
    let ok_default = o.unwrap_or(0); // ok: non-panicking sibling
    a + b + ok_default
}

pub struct Parser;

impl Parser {
    /// Domain method named `expect` — not `Option::expect`.
    pub fn expect(&mut self, _b: u8) -> Result<(), String> {
        Ok(())
    }
}

pub fn parse(p: &mut Parser) -> Result<(), String> {
    p.expect(b'{') // ok: argument is not a string literal
}

pub fn vouched(o: Option<u64>) -> u64 {
    // lint:allow(P001): caller checked is_some() on the hot path
    o.unwrap() // suppressed
}

pub fn wrapped(o: Option<u64>) -> u64 {
    o.map(|v| v + 1)
        // lint:allow(P001): a multi-line justification that wraps across
        // several comment lines still covers the call below it
        .unwrap() // suppressed
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(Some(1).unwrap(), 1); // ok: test region
    }
}
