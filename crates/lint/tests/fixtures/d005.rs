//! Fixture: D005 — ordered maps inside a lock-manager hot-path module.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

pub struct Table {
    entries: BTreeMap<u64, u32>,
    dirty: BTreeSet<u64>,
}

// lint:allow(D005): diagnostics-only snapshot, not on the request path
pub fn snapshot(entries: &BTreeMap<u64, u32>) -> usize {
    entries.len()
}
