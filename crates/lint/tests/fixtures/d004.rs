//! D004 fixture: raw threading primitives outside the worker pool.

use std::sync::mpsc; // VIOLATION

pub fn fan_out() {
    let handle = std::thread::spawn(|| 1); // VIOLATION
    std::thread::scope(|s| {
        let _ = s;
    });
    let b = std::thread::Builder::new(); // VIOLATION
    // lint:allow(D004): fixture demonstrating a vouched spawn
    let vouched = std::thread::spawn(|| 2); // suppressed
    let _ = (handle, b, vouched);
    // Not findings: sleep is no fan-out, a method named `spawn` is fine.
    std::thread::sleep(std::time::Duration::from_millis(1));
    pool.spawn(task);
    let _ = "thread::spawn in a string never fires";
}
