//! W001 fixture: stale allows that no longer suppress anything.

// lint:allow(D001): nothing below uses hash containers any more
pub fn stale() -> u32 {
    1
}

pub fn used(o: Option<u32>) -> u32 {
    // lint:allow(P001): infallible by construction here
    o.unwrap()
}

// lint:allow(D002, W001): kept while the wall-clock refactor lands
pub fn vouched() -> u32 {
    2
}
