//! E002 fixture: lint:covers items that drop a variant mention.

pub enum Mode {
    Alpha,
    Beta,
    Gamma,
}

// lint:covers(Mode)
pub fn from_str(s: &str) -> Option<Mode> {
    match s {
        "alpha" => Some(Mode::Alpha),
        "beta" => Some(Mode::Beta),
        _ => None, // E002 at the marker: `Gamma` is never mentioned
    }
}

// lint:covers(Mode): usage text lists every mode
pub const USAGE: &str = "--mode alpha|beta|gamma";

// lint:covers(NoSuchEnum)
pub const OTHER: &str = "x"; // E002 at the marker: unknown enum name
