//! E003 fixture: `ALL` mirror arrays drifting from their enums.

pub enum Mode {
    Alpha,
    Beta,
    Gamma,
}

impl Mode {
    pub const ALL: [Mode; 2] = [Mode::Alpha, Mode::Beta]; // E003: length
}

pub enum Tier {
    Lo,
    Hi,
}

impl Tier {
    pub const ALL: [Tier; 2] = [Tier::Lo, Tier::Lo]; // E003: skips `Hi`
}

pub enum Sync2 {
    X,
    Y,
}

impl Sync2 {
    pub const ALL: [Sync2; 2] = [Sync2::X, Sync2::Y]; // in sync: fine
}

pub const MATRIX: [Mode; 1] = [Mode::Alpha]; // not named ALL: fine
