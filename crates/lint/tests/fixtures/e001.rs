//! E001 fixture: wildcard arms hiding variants of a marked enum.

// lint:exhaustive(Metric)
pub enum Metric {
    A,
    B,
    C,
    D,
}

pub enum Other {
    X,
    Y,
    Z,
}

pub fn render(m: Metric) -> u32 {
    match m {
        Metric::A => 1,
        Metric::B => 2,
        Metric::C => 3,
        _ => 0, // E001: names 3/4 but hides the rest
    }
}

pub fn dispatch(m: Metric) -> bool {
    match m {
        Metric::A => true,
        _ => false, // names 1/4: dispatch, not per-variant handling
    }
}

pub fn unmarked(o: Other) -> u32 {
    match o {
        Other::X => 1,
        Other::Y => 2,
        _ => 0, // Other is not lint:exhaustive
    }
}
