//! D003 fixture: exact float comparison against a literal.

pub fn check(x: f64, n: u64) -> bool {
    let a = x == 0.5; // VIOLATION
    let b = x != 1e-9; // VIOLATION
    let c = 0.5 == x; // VIOLATION
    let d = x == -2.5; // VIOLATION
    let ok_int = n == 5; // ok: integer comparison
    let ok_le = x <= 0.5; // ok: ordered comparison
    let ok_ge = x >= 0.5; // ok: ordered comparison
    let ok_mul = x * 0.5; // ok: arithmetic
    // lint:allow(D003): sentinel propagated verbatim, never computed
    let vouched = x == 0.25; // suppressed
    a || b || c || d || ok_int || ok_le || ok_ge || ok_mul > 0.0 || vouched
}

#[cfg(test)]
mod tests {
    #[test]
    fn exact_asserts_are_fine_in_tests() {
        assert!(super::check(0.5, 5) || 0.5 == 0.5); // ok: test region
    }
}
