//! `lint:allow-file` fixture: one directive silences a rule everywhere
//! in the file, but only that rule.

// lint:allow-file(D001): interop shim, hash containers required throughout

use std::collections::HashMap; // suppressed by the file-wide allow

pub fn build() -> HashMap<u64, u64> {
    // suppressed
    HashMap::new()
}

pub fn still_flagged(o: Option<u64>) -> u64 {
    o.unwrap() // VIOLATION: the file-wide allow names D001, not P001
}
