//! L001 fixture: early exits between a lock acquire and its release.

pub fn leaky(t: &mut Table, g: u64) -> Result<u64, Err> {
    let d = t.try_acquire(g)?; // `?` on the acquire itself: nothing held yet
    let v = compute(d)?; // L001: `?` escapes while the lock is held
    if v == 0 {
        return Err(Err::Zero); // L001: `return` escapes while held
    }
    t.release(g);
    Ok(v)
}

pub fn clean(t: &mut Table, g: u64) -> Result<u64, Err> {
    let d = t.try_acquire(g)?;
    if bad(d) {
        t.cancel(g); // released on this path before the exit
        return Err(Err::Bad);
    }
    if worse(d) {
        panic!("corrupt table"); // panic exits are exempt
    }
    t.release(g);
    Ok(d)
}

pub fn released_through_helper(t: &mut Table, g: u64) -> Result<(), Err> {
    let d = t.try_acquire(g)?;
    check(d)?; // L001: teardown (which releases) is skipped
    teardown(t, g);
    Ok(())
}

fn teardown(t: &mut Table, g: u64) {
    t.release(g);
}

pub fn vouched(t: &mut Table, g: u64) -> Result<u64, Err> {
    let d = t.try_acquire(g)?;
    // lint:allow(L001): caller owns cleanup in this probe path
    ensure(d)?;
    t.release(g);
    Ok(d)
}
