//! D001 fixture: hash containers. Lines matter — the integration test
//! asserts exact positions; renumber it if you edit this file.

use std::collections::HashMap; // VIOLATION line 4 col 23
use std::collections::HashSet; // VIOLATION line 5 col 23
use std::collections::{BTreeMap, BTreeSet}; // ok

pub fn build() -> BTreeMap<u64, u64> {
    let stale: HashMap<u64, u64> = HashMap::new(); // VIOLATION x2 line 9
    let _ = stale;
    // lint:allow(D001): FFI boundary requires the std hasher here
    let vouched: HashSet<u64> = Default::default(); // suppressed
    let _ = vouched;
    let _ = "HashMap in a string is fine";
    // HashMap in a comment is fine
    BTreeMap::new()
}

#[cfg(test)]
mod tests {
    // Hash containers are flagged even in tests: nondeterministic
    // iteration makes assertions flake.
    use std::collections::HashMap; // VIOLATION line 23 col 27
}
