//! J001 fixture: JSON impl pairs that do not round-trip.

// Mismatched pair: `to_json` writes "retries", `from_json` reads
// "attempts". Both directions are reported.
impl ToJson for Mismatched {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("seed", self.seed.to_json()),
            ("retries", self.retries.to_json()),
        ])
    }
}

impl FromJson for Mismatched {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Mismatched {
            seed: v.field("seed")?,
            retries: v.field("attempts")?,
        })
    }
}

// Matching pair: clean.
impl ToJson for Matching {
    fn to_json(&self) -> Json {
        Json::object(vec![("mpl", self.mpl.to_json())])
    }
}

impl FromJson for Matching {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Matching {
            mpl: v.field_or("mpl", 1)?,
        })
    }
}

// Custom encoding on one side: opted out of the comparison.
impl ToJson for Opaque {
    fn to_json(&self) -> Json {
        Json::from(self.0)
    }
}

impl FromJson for Opaque {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Opaque(v.field("raw")?))
    }
}

// Suppressed pair: a deliberate rename vouched for on both headers.
// lint:allow(J001): reads the legacy "old" spelling during migration
impl ToJson for Vouched {
    fn to_json(&self) -> Json {
        Json::object(vec![("new", self.v.to_json())])
    }
}

// lint:allow(J001): reads the legacy "old" spelling during migration
impl FromJson for Vouched {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(Vouched { v: v.field("old")? })
    }
}
