//! R001 fixture: RNG draws under pool/job-configuration branches.

impl Engine {
    pub fn bad(&mut self) {
        if self.jobs > 1 {
            let x = self.service_rng.next_u64(); // R001: varies with --jobs
            seed(x);
        }
    }

    pub fn fine(&mut self) {
        let x = self.service_rng.next_u64(); // drawn unconditionally
        if self.jobs > 1 {
            route(x); // routing on pool config is fine
        }
    }

    pub fn vouched(&mut self) {
        if self.pool.is_some() {
            // lint:allow(R001): per-worker stream is re-pinned by index
            let y = self.worker_rng.next_u64();
            seed(y);
        }
    }
}
