//! R002 fixture: shared-stream RNG draws under CC-dependent branches.

impl Engine {
    pub fn bad(&mut self) {
        let decision = self.conflict.try_acquire(1, &mut self.conflict_rng);
        match decision {
            ConflictDecision::Granted => {
                let dt = self.service_rng.uniform01(); // R002: draw order
                self.schedule(dt); // diverges across conflict models
            }
            ConflictDecision::BlockedBy(t) => self.block(t),
        }
    }

    pub fn fine(&mut self, rng: &mut SimRng) {
        if self.escalation_threshold > 0 {
            let a = self.conflict_rng.bernoulli(0.5); // conflict stream: fine
            let b = rng.uniform01(); // caller-chosen stream: fine
            use_both(a, b);
        }
    }
}
