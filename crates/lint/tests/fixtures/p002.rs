//! P002 fixture: O(n) front-removal from a `Vec` in library code.

pub fn drain_front(v: &mut Vec<u64>) -> Option<u64> {
    if v.is_empty() {
        return None;
    }
    Some(v.remove(0)) // VIOLATION
}

pub fn busy_wait_queue(queue: &mut Vec<String>) {
    while !queue.is_empty() {
        let _head = queue.remove(0); // VIOLATION
    }
}

pub fn positional_is_fine(v: &mut Vec<u64>) -> u64 {
    v.remove(1) // ok: not the front — no cheaper general substitute
}

pub fn variable_index_is_fine(v: &mut Vec<u64>, idx: usize) -> u64 {
    v.remove(idx) // ok: index unknown statically
}

pub fn keyed_is_fine(map: &mut std::collections::BTreeMap<u64, u64>) -> Option<u64> {
    map.remove(&0) // ok: keyed removal, not a front-shift
}

pub fn vouched(v: &mut Vec<u64>) -> u64 {
    // lint:allow(P002): v never holds more than two elements
    v.remove(0) // suppressed
}

#[cfg(test)]
mod tests {
    #[test]
    fn front_removal_is_fine_in_tests() {
        let mut v = vec![1, 2];
        assert_eq!(v.remove(0), 1); // ok: test region
    }
}
