//! L002 fixture: acquire-family calls whose result is discarded.

pub fn discards(t: &mut Table) {
    let _ = t.try_acquire(1); // L002: grant/queue decision dropped
    t.acquire(2); // L002: bare acquire statement
    let d = t.try_acquire(3); // bound and handled: fine
    handle(d);
    // lint:allow(L002): denial probe — the decision is intentionally ignored
    let _ = t.try_acquire(4);
}
