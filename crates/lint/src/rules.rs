//! The token-level rule catalog: D001, D002, D003, D004, D005, P001,
//! P002.
//!
//! Each rule is a linear scan over the token stream with a small amount
//! of lookahead/lookbehind. Rules receive the file's [`Scope`] so they
//! can exempt bench code (which legitimately reads wall clocks) and
//! test regions (which legitimately panic and compare floats exactly).

use crate::allow::AllowSet;
use crate::lexer::{Token, TokenKind};
use crate::{Diagnostic, Rule, Scope};

/// Run every token rule applicable to `scope` over one file.
pub fn check_tokens(
    path: &str,
    src: &str,
    tokens: &[Token],
    scope: Scope,
    allows: &AllowSet,
    out: &mut Vec<Diagnostic>,
) {
    let mut sink = Sink { path, allows, out };
    if scope != Scope::Bench {
        check_hash_containers(src, tokens, &mut sink);
        check_wall_clock(src, tokens, &mut sink);
    }
    if scope == Scope::Library {
        check_float_eq(src, tokens, &mut sink);
        check_panicky_calls(src, tokens, &mut sink);
        check_front_removal(src, tokens, &mut sink);
    }
    // D004 applies everywhere (benches and tests included — an unordered
    // spawn in either can still produce order-dependent results) except
    // inside the worker pool itself, which is the one sanctioned home for
    // raw threading.
    if path != "crates/sim/src/pool.rs" {
        check_raw_threading(src, tokens, &mut sink);
    }
    // D005 is gated to the lock manager's per-request modules; ordered
    // maps elsewhere (escalation bookkeeping, the reference oracle) are
    // legitimate and stay unflagged.
    if HOT_LOCK_MODULES.contains(&path) {
        check_ordered_map_hot_path(src, tokens, &mut sink);
    }
}

/// The lock-manager modules on the per-request path, where every map
/// lookup sits inside the acquire/release cycle.
const HOT_LOCK_MODULES: [&str; 5] = [
    "crates/lockmgr/src/table.rs",
    "crates/lockmgr/src/deadlock.rs",
    "crates/lockmgr/src/conservative.rs",
    "crates/lockmgr/src/twophase.rs",
    "crates/lockmgr/src/sharded.rs",
];

struct Sink<'a> {
    path: &'a str,
    allows: &'a AllowSet,
    out: &'a mut Vec<Diagnostic>,
}

impl Sink<'_> {
    fn emit(&mut self, rule: Rule, tok: &Token, message: String) {
        if self.allows.suppresses(rule.code(), tok.line) {
            return;
        }
        self.out.push(Diagnostic {
            path: self.path.to_string(),
            line: tok.line,
            col: tok.col,
            rule,
            message,
        });
    }
}

/// D001: `HashMap` / `HashSet` anywhere in a simulation crate (including
/// its tests — a hash container in a test can still make the *assertion
/// order* nondeterministic and flake).
fn check_hash_containers(src: &str, tokens: &[Token], sink: &mut Sink<'_>) {
    for t in tokens {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text(src);
        if name == "HashMap" || name == "HashSet" {
            let ordered = if name == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            sink.emit(
                Rule::D001,
                t,
                format!(
                    "`{name}` iterates in nondeterministic order; use `{ordered}`, \
                     or `lockgran_sim::DetMap` for a `u64`-keyed hot path \
                     (or add `// lint:allow(D001): <why order cannot leak>`)"
                ),
            );
        }
    }
}

/// D002: wall-clock reads (`Instant`, `SystemTime`) outside `crates/bench`.
/// Simulated time must come from the event calendar, never the host.
fn check_wall_clock(src: &str, tokens: &[Token], sink: &mut Sink<'_>) {
    for t in tokens {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text(src);
        if name != "Instant" && name != "SystemTime" {
            continue;
        }
        // Any occurrence is flagged, qualified or not: a local type named
        // `Instant` inside a deterministic simulator would be a smell in
        // its own right, and an allow can vouch for it.
        sink.emit(
            Rule::D002,
            t,
            format!(
                "wall-clock type `{name}` in simulation code; simulated time \
                 must come from the engine's clock (bench code is exempt)"
            ),
        );
    }
}

/// D003: `==` / `!=` where either operand is a float literal. A full
/// type-aware check needs inference; comparing *against a literal* is
/// the high-confidence case and the one that bites (`x == 0.1`).
fn check_float_eq(src: &str, tokens: &[Token], sink: &mut Sink<'_>) {
    for i in 0..tokens.len().saturating_sub(1) {
        let a = &tokens[i];
        let b = &tokens[i + 1];
        if a.in_test {
            continue;
        }
        let is_eq = a.is_punct(src, '=') && b.is_punct(src, '=');
        let is_ne = a.is_punct(src, '!') && b.is_punct(src, '=');
        if !(is_eq || is_ne) {
            continue;
        }
        // Adjacency is unambiguous: `<=`, `>=` and `=>` all pair a
        // non-`=` with the `=`, so they can never match the
        // (`=`,`=`) / (`!`,`=`) windows above.
        // Operand after: optional unary minus, then a literal?
        let mut r = i + 2;
        if tokens.get(r).is_some_and(|t| t.is_punct(src, '-')) {
            r += 1;
        }
        let rhs_float = tokens.get(r).is_some_and(|t| t.kind == TokenKind::Float);
        // Operand before: token immediately left of the operator.
        let lhs_float = i > 0 && tokens[i - 1].kind == TokenKind::Float;
        if rhs_float || lhs_float {
            let op = if is_eq { "==" } else { "!=" };
            sink.emit(
                Rule::D003,
                a,
                format!(
                    "exact float comparison `{op}` against a literal; compare \
                     with an epsilon or restructure (floats that look equal \
                     may differ in the last ulp)"
                ),
            );
        }
    }
}

/// D004: raw threading primitives outside `crates/sim/src/pool.rs`.
///
/// Flags `thread::spawn`, `thread::scope` and `thread::Builder` (however
/// the `thread` path segment is reached), plus any use of the `mpsc`
/// module. Ad-hoc threads and channels deliver results in completion
/// order, which varies run to run; `lockgran_sim::pool::WorkerPool`
/// gathers in submission order and is the one sanctioned way to fan
/// work out.
fn check_raw_threading(src: &str, tokens: &[Token], sink: &mut Sink<'_>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text(src);
        if name == "mpsc" {
            sink.emit(
                Rule::D004,
                t,
                "`mpsc` channels deliver in completion order; fan work out \
                 through `lockgran_sim::pool::WorkerPool`, which gathers \
                 results in submission order (or add \
                 `// lint:allow(D004): <why ordering cannot leak>`)"
                    .to_string(),
            );
            continue;
        }
        if name != "spawn" && name != "scope" && name != "Builder" {
            continue;
        }
        // Only when reached through the `thread` module: `thread::spawn`,
        // `std::thread::Builder`, … — a local method named `spawn` or a
        // lint `Scope` is not a finding.
        let through_thread = i >= 3
            && tokens[i - 1].is_punct(src, ':')
            && tokens[i - 2].is_punct(src, ':')
            && tokens[i - 3].is_ident(src, "thread");
        if through_thread {
            sink.emit(
                Rule::D004,
                t,
                format!(
                    "raw `thread::{name}` outside the worker pool; use \
                     `lockgran_sim::pool::WorkerPool` so results gather in \
                     submission order (or add \
                     `// lint:allow(D004): <why ordering cannot leak>`)"
                ),
            );
        }
    }
}

/// D005: `BTreeMap` / `BTreeSet` inside a lock-manager hot-path module
/// (see [`HOT_LOCK_MODULES`]). Per-request granule and transaction
/// lookups were rebuilt on the O(1) `lockgran_sim::DetMap`; an ordered
/// map sneaking back in reintroduces O(log n) pointer-chasing on every
/// acquire/release. Ordered iteration that is actually required (a
/// diagnostic dump, a deterministic sweep) can be vouched for with an
/// allow.
fn check_ordered_map_hot_path(src: &str, tokens: &[Token], sink: &mut Sink<'_>) {
    for t in tokens {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text(src);
        if name == "BTreeMap" || name == "BTreeSet" {
            sink.emit(
                Rule::D005,
                t,
                format!(
                    "`{name}` on the lock-manager hot path costs O(log n) \
                     pointer-chasing per request; use `lockgran_sim::DetMap` \
                     (O(1), deterministic insertion-order iteration) or add \
                     `// lint:allow(D005): <why ordered lookup is required>`"
                ),
            );
        }
    }
}

/// P001: `.unwrap()` / `.expect("…")` in non-test library code. The
/// `.expect(` form is only flagged when its first argument is a string
/// literal — `parser.expect(b'{')` is a domain method, not a panic.
fn check_panicky_calls(src: &str, tokens: &[Token], sink: &mut Sink<'_>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text(src);
        if name != "unwrap" && name != "expect" {
            continue;
        }
        // Must be a method call: preceded by `.`, followed by `(`.
        if i == 0 || !tokens[i - 1].is_punct(src, '.') {
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|n| n.is_punct(src, '(')) {
            continue;
        }
        if name == "unwrap" {
            if !tokens.get(i + 2).is_some_and(|n| n.is_punct(src, ')')) {
                continue; // `.unwrap(x)` is not Option/Result::unwrap
            }
            sink.emit(
                Rule::P001,
                t,
                "`.unwrap()` in library code; return a `Result` with context, \
                 or `.expect(\"<invariant>\")` plus a `// lint:allow(P001): …`"
                    .to_string(),
            );
        } else {
            // expect: require a string-literal argument.
            if !tokens.get(i + 2).is_some_and(|n| n.kind == TokenKind::Str) {
                continue;
            }
            sink.emit(
                Rule::P001,
                t,
                "`.expect(…)` in library code; return a `Result` with context, \
                 or document the invariant with `// lint:allow(P001): …`"
                    .to_string(),
            );
        }
    }
}

/// P002: `.remove(0)` in non-test library code. On a `Vec` this shifts
/// every remaining element left — O(n) per call, O(n²) when used to
/// drain — which is exactly the hidden cost that sat in the calendar
/// queue's `pop` until PR 5. The deque-shaped fix is
/// `VecDeque::pop_front`; positional `Vec` use cases usually want
/// `swap_remove(0)` (order-free) or a reversed iteration.
fn check_front_removal(src: &str, tokens: &[Token], sink: &mut Sink<'_>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.in_test || t.kind != TokenKind::Ident || t.text(src) != "remove" {
            continue;
        }
        // Must be the method call `.remove(0)`: preceded by `.`, followed
        // by `(`, a literal zero, `)`. Other arguments are positional
        // removals with no cheaper general substitute, and `map.remove(0)`
        // on a keyed container takes `&0` or a non-literal key.
        if i == 0 || !tokens[i - 1].is_punct(src, '.') {
            continue;
        }
        if !tokens.get(i + 1).is_some_and(|n| n.is_punct(src, '(')) {
            continue;
        }
        let zero = tokens
            .get(i + 2)
            .is_some_and(|n| n.kind == TokenKind::Int && n.text(src) == "0");
        if !zero || !tokens.get(i + 3).is_some_and(|n| n.is_punct(src, ')')) {
            continue;
        }
        sink.emit(
            Rule::P002,
            t,
            "`.remove(0)` shifts every element left (O(n) per call); use a \
             `VecDeque` with `pop_front()`, or `swap_remove(0)` if order \
             does not matter (or add `// lint:allow(P002): <why O(n) is \
             acceptable here>`)"
                .to_string(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::mark_test_regions;
    use crate::lexer::lex;

    fn run_at(path: &str, src: &str, scope: Scope) -> Vec<Diagnostic> {
        let mut lexed = lex(src);
        mark_test_regions(&mut lexed.tokens, src);
        let allows = AllowSet::new(lexed.allows);
        let mut out = Vec::new();
        check_tokens(path, src, &lexed.tokens, scope, &allows, &mut out);
        out
    }

    fn run(src: &str, scope: Scope) -> Vec<Diagnostic> {
        run_at("f.rs", src, scope)
    }

    fn codes(src: &str, scope: Scope) -> Vec<&'static str> {
        run(src, scope).iter().map(|d| d.rule.code()).collect()
    }

    #[test]
    fn d001_flags_hash_containers() {
        assert_eq!(
            codes("use std::collections::HashMap;", Scope::Library),
            vec!["D001"]
        );
        assert_eq!(codes("let s: HashSet<u32>;", Scope::TestCode), vec!["D001"]);
        assert!(codes("use std::collections::BTreeMap;", Scope::Library).is_empty());
        assert!(codes("use std::collections::HashMap;", Scope::Bench).is_empty());
    }

    #[test]
    fn d001_span_points_at_the_ident() {
        let d = &run("let m: HashMap<u32, u32> = x;", Scope::Library)[0];
        assert_eq!((d.line, d.col), (1, 8));
    }

    #[test]
    fn d002_flags_wall_clock() {
        assert_eq!(
            codes("let t = std::time::Instant::now();", Scope::Library),
            vec!["D002"]
        );
        assert_eq!(
            codes("use std::time::SystemTime;", Scope::TestCode),
            vec!["D002"]
        );
        assert!(codes("let t = Instant::now();", Scope::Bench).is_empty());
    }

    #[test]
    fn d003_flags_float_literal_comparison() {
        assert_eq!(codes("if x == 0.5 { }", Scope::Library), vec!["D003"]);
        assert_eq!(codes("if x != 1e-9 { }", Scope::Library), vec!["D003"]);
        assert_eq!(codes("if 0.5 == x { }", Scope::Library), vec!["D003"]);
        assert_eq!(codes("if x == -0.5 { }", Scope::Library), vec!["D003"]);
    }

    #[test]
    fn d003_ignores_safe_comparisons() {
        assert!(codes("if x == 5 { }", Scope::Library).is_empty());
        assert!(codes("if x <= 0.5 { }", Scope::Library).is_empty());
        assert!(codes("if x >= 0.5 { }", Scope::Library).is_empty());
        assert!(codes("let y = x * 0.5;", Scope::Library).is_empty());
        assert!(codes("match x { _ => 0.5 };", Scope::Library).is_empty());
        // Inside a test region: exempt.
        assert!(codes("#[test]\nfn t() { assert!(x == 0.5); }", Scope::Library).is_empty());
    }

    #[test]
    fn d004_flags_raw_threading() {
        assert_eq!(
            codes("std::thread::spawn(|| {});", Scope::Library),
            vec!["D004"]
        );
        assert_eq!(
            codes("thread::scope(|s| {});", Scope::Library),
            vec!["D004"]
        );
        assert_eq!(
            codes("std::thread::Builder::new();", Scope::Library),
            vec!["D004"]
        );
        assert_eq!(codes("use std::sync::mpsc;", Scope::Library), vec!["D004"]);
        // Applies to tests and benches too: completion-order results flake.
        assert_eq!(
            codes("#[test]\nfn t() { thread::spawn(|| {}); }", Scope::Library),
            vec!["D004"]
        );
        assert_eq!(codes("thread::spawn(f);", Scope::TestCode), vec!["D004"]);
        assert_eq!(
            codes("let (tx, rx) = mpsc::channel();", Scope::Bench),
            vec!["D004"]
        );
    }

    #[test]
    fn d004_exempts_the_pool_and_unrelated_names() {
        // The worker pool is the sanctioned home for raw threading.
        assert!(run_at(
            "crates/sim/src/pool.rs",
            "std::thread::spawn(|| {});",
            Scope::Library
        )
        .is_empty());
        // `spawn`/`scope`/`Builder` not reached through `thread`.
        assert!(codes("pool.spawn(task);", Scope::Library).is_empty());
        assert!(codes("let s: Scope = scope;", Scope::Library).is_empty());
        assert!(codes("http::Builder::new();", Scope::Library).is_empty());
        // Sleeping is not a fan-out.
        assert!(codes("thread::sleep(d);", Scope::Library).is_empty());
    }

    #[test]
    fn d005_flags_ordered_maps_in_hot_lock_modules() {
        for module in HOT_LOCK_MODULES {
            assert_eq!(
                run_at(module, "use std::collections::BTreeMap;", Scope::Library)
                    .iter()
                    .map(|d| d.rule.code())
                    .collect::<Vec<_>>(),
                vec!["D005"],
                "{module}"
            );
        }
        let diags = run_at(
            "crates/lockmgr/src/table.rs",
            "struct T { waits: BTreeSet<u64> }",
            Scope::Library,
        );
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("DetMap"));
    }

    #[test]
    fn d005_exempts_cold_modules_and_other_crates() {
        // The reference oracle and escalation bookkeeping are off the
        // per-request path; ordered maps there are the point.
        for path in [
            "crates/lockmgr/src/reference.rs",
            "crates/lockmgr/src/escalation.rs",
            "crates/core/src/system.rs",
        ] {
            assert!(
                run_at(path, "use std::collections::BTreeMap;", Scope::Library).is_empty(),
                "{path}"
            );
        }
    }

    #[test]
    fn p001_flags_unwrap_and_string_expect() {
        assert_eq!(codes("let x = o.unwrap();", Scope::Library), vec!["P001"]);
        assert_eq!(
            codes("let x = o.expect(\"must\");", Scope::Library),
            vec!["P001"]
        );
    }

    #[test]
    fn p001_ignores_domain_expect_and_tests() {
        // Parser combinator style: expect(b'{') is not Option::expect.
        assert!(codes("self.expect(b'{')?;", Scope::Library).is_empty());
        assert!(codes("fn expect(&mut self, b: u8) {}", Scope::Library).is_empty());
        assert!(codes("#[test]\nfn t() { o.unwrap(); }", Scope::Library).is_empty());
        assert!(codes("o.unwrap();", Scope::TestCode).is_empty());
        // unwrap_or is a different method.
        assert!(codes("o.unwrap_or(1);", Scope::Library).is_empty());
    }

    #[test]
    fn p002_flags_front_removal() {
        assert_eq!(codes("let x = v.remove(0);", Scope::Library), vec!["P002"]);
        assert_eq!(codes("queue.remove(0);", Scope::Library), vec!["P002"]);
    }

    #[test]
    fn p002_ignores_other_removals_and_tests() {
        // Positional removal elsewhere has no cheaper general substitute.
        assert!(codes("v.remove(1);", Scope::Library).is_empty());
        assert!(codes("v.remove(idx);", Scope::Library).is_empty());
        // Keyed containers take a reference or a non-literal key.
        assert!(codes("map.remove(&0);", Scope::Library).is_empty());
        // Not a method call.
        assert!(codes("remove(0);", Scope::Library).is_empty());
        // Test regions and test files are exempt.
        assert!(codes("#[test]\nfn t() { v.remove(0); }", Scope::Library).is_empty());
        assert!(codes("v.remove(0);", Scope::TestCode).is_empty());
        assert!(codes("v.remove(0);", Scope::Bench).is_empty());
        // Suppression works.
        let allowed = "// lint:allow(P002): three-element fixed list\nv.remove(0);";
        assert!(codes(allowed, Scope::Library).is_empty());
    }

    #[test]
    fn allow_comment_suppresses() {
        let src = "// lint:allow(P001): invariant\nlet x = o.unwrap();";
        assert!(codes(src, Scope::Library).is_empty());
        let trailing = "let x = o.unwrap(); // lint:allow(P001): invariant";
        assert!(codes(trailing, Scope::Library).is_empty());
        // Wrong rule code does not suppress.
        let wrong = "// lint:allow(D001)\nlet x = o.unwrap();";
        assert_eq!(codes(wrong, Scope::Library), vec!["P001"]);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        assert!(codes("let s = \"HashMap\";", Scope::Library).is_empty());
        assert!(codes("// HashMap in a comment\nlet x = 1;", Scope::Library).is_empty());
    }
}
