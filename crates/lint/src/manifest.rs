//! Z001: the zero-dependency policy, enforced over `Cargo.toml` files.
//!
//! Every dependency entry in every manifest must be an in-tree path
//! dependency (`path = "…"`) or a workspace reference
//! (`foo.workspace = true` / `{ workspace = true }`). Anything else —
//! a bare version string, a git or registry dependency — violates the
//! policy that the simulator builds offline from this tree alone.
//!
//! The check is a purpose-built line scanner, not a TOML parser: it
//! tracks `[section]` headers, looks only at `*dependencies*` sections,
//! and understands the two entry shapes that occur in practice (inline
//! `key = value` lines and `[dependencies.foo]` sub-tables). Suppression
//! uses the same comment syntax as the Rust rules (`# lint:allow(Z001)`
//! on the line above also works since the scan only matches on the
//! directive text).

use crate::allow::{AllowDirective, AllowSet};
use crate::{Diagnostic, Rule};

/// Run Z001 over one manifest's text.
pub fn check_manifest(path: &str, src: &str, out: &mut Vec<Diagnostic>) {
    // Collect allow directives from TOML comments first.
    let mut directives = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        if let Some(hash) = line.find('#') {
            AllowDirective::scan(&line[hash..], idx as u32 + 1, &mut directives);
        }
    }
    let allows = AllowSet::new(directives);

    let mut section = String::new();
    // A pending `[dependencies.foo]` sub-table: (header line, key, saw a
    // `path`/`workspace` key yet).
    let mut subtable: Option<(u32, String, bool)> = None;

    let flush = |sub: &mut Option<(u32, String, bool)>, out: &mut Vec<Diagnostic>| {
        if let Some((line, key, ok)) = sub.take() {
            if !ok {
                emit(out, &allows, path, line, 1, &key);
            }
        }
    };

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = strip_toml_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            flush(&mut subtable, out);
            section = name.trim().trim_matches('"').to_string();
            if section.contains("dependencies.") {
                // `[dependencies.foo]` / `[workspace.dependencies.foo]`
                let key = section.rsplit('.').next().unwrap_or("").to_string();
                subtable = Some((lineno, key, false));
            }
            continue;
        }
        if let Some((_, _, ok)) = &mut subtable {
            let key = line.split('=').next().unwrap_or("").trim();
            if key == "path" || key == "workspace" {
                *ok = true;
            }
            continue;
        }
        if !is_dependency_section(&section) {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        let value = value.trim();
        if key.ends_with(".workspace") || key.ends_with(".path") {
            continue; // `foo.workspace = true` / `foo.path = "…"`
        }
        if value.starts_with('{') && inline_table_has_local_source(value) {
            continue; // `{ path = "…" }` / `{ workspace = true }`
        }
        let col = raw.find(key).map(|c| c as u32 + 1).unwrap_or(1);
        emit(out, &allows, path, lineno, col, key);
    }
    flush(&mut subtable, out);
}

fn emit(out: &mut Vec<Diagnostic>, allows: &AllowSet, path: &str, line: u32, col: u32, key: &str) {
    if allows.suppresses(Rule::Z001.code(), line) {
        return;
    }
    out.push(Diagnostic {
        path: path.to_string(),
        line,
        col,
        rule: Rule::Z001,
        message: format!(
            "dependency `{key}` is not an in-tree path or workspace \
             reference; the zero-dependency policy requires the tree to \
             build offline from local sources only"
        ),
    });
}

/// Does `[section]` hold dependency entries?
fn is_dependency_section(section: &str) -> bool {
    section == "dependencies"
        || section == "dev-dependencies"
        || section == "build-dependencies"
        || section == "workspace.dependencies"
        || section.ends_with(".dependencies")
        || section.ends_with(".dev-dependencies")
        || section.ends_with(".build-dependencies")
}

/// Does an inline table value `{ … }` declare a local source?
fn inline_table_has_local_source(value: &str) -> bool {
    let inner = value.trim_start_matches('{').trim_end_matches('}');
    inner.split(',').any(|kv| {
        let key = kv.split('=').next().unwrap_or("").trim();
        key == "path" || key == "workspace"
    })
}

/// Strip a `#` comment, respecting quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check_manifest("Cargo.toml", src, &mut out);
        out
    }

    #[test]
    fn path_and_workspace_deps_are_clean() {
        let src = r#"
[package]
name = "x"

[dependencies]
lockgran-sim = { path = "../sim" }
lockgran-core.workspace = true
other = { workspace = true }
"#;
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn version_dep_is_flagged() {
        let src = "[dependencies]\nserde = \"1.0\"\n";
        let diags = run(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule.code(), "Z001");
        assert_eq!(diags[0].line, 2);
        assert!(diags[0].message.contains("serde"));
    }

    #[test]
    fn git_dep_is_flagged() {
        let src = "[dependencies]\nrand = { git = \"https://example.com/rand\" }\n";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn dev_and_build_sections_are_checked() {
        let src = "[dev-dependencies]\ncriterion = \"0.5\"\n[build-dependencies]\ncc = \"1\"\n";
        assert_eq!(run(src).len(), 2);
    }

    #[test]
    fn subtable_dep_without_path_is_flagged() {
        let src = "[dependencies.serde]\nversion = \"1.0\"\nfeatures = [\"derive\"]\n";
        let diags = run(src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn subtable_dep_with_path_is_clean() {
        let src = "[dependencies.sim]\npath = \"../sim\"\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let src = "[package]\nname = \"x\"\nversion = \"1.0\"\n[features]\ndefault = []\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn target_specific_deps_are_checked() {
        let src = "[target.'cfg(unix)'.dependencies]\nlibc = \"0.2\"\n";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn comments_do_not_confuse_the_scan() {
        let src = "[dependencies]\n# serde = \"1.0\"\nsim = { path = \"s\" } # ok\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn allow_comment_suppresses() {
        let src = "[dependencies]\n# lint:allow(Z001): vendored exception\nserde = \"1.0\"\n";
        assert!(run(src).is_empty());
    }
}
