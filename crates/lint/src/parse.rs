//! Recursive-descent parser: token stream → resolved AST.
//!
//! This is deliberately *not* a full Rust parser. It resolves exactly the
//! structure the analysis rules need — the item tree (functions, impls,
//! enums with their variants, modules), function bodies as a control-flow
//! tree (`if` / `match` / loops / nested blocks), and, inside the opaque
//! statement runs between those constructs, the **events** the rules
//! reason about: method and function calls with their receivers and
//! argument spans, `return` / `?` / `break` / `continue` exits, panic
//! calls, and `let` bindings with their initializer spans (for the
//! determinism-taint dataflow).
//!
//! The parser is error-tolerant by construction: anything it does not
//! recognize is swallowed into an opaque run (events are still extracted
//! from it), so a novel construct degrades analysis precision instead of
//! producing a parse failure. Constructs nested inside parenthesized
//! expressions (`f(if c { a } else { b })`) stay opaque — a conservative
//! loss, shared with every syntactic analyzer at this altitude.

use crate::lexer::{Token, TokenKind};

/// A half-open token-index range into the file's token stream.
pub type TokRange = (usize, usize);

/// The parsed file.
pub struct Ast {
    /// Top-level items, in source order.
    pub items: Vec<Item>,
}

/// One item (top-level or nested in a `mod` / `impl` / `trait` body).
pub enum Item {
    /// A function with an optional body (trait methods may lack one).
    Fn(FnItem),
    /// An enum definition with its variant names.
    Enum(EnumDef),
    /// An `impl` (or `trait`) block and its nested items.
    Impl(ImplDef),
    /// An inline module.
    Mod(ModDef),
    /// A `const` / `static` of array-of-path type, e.g. `Metric::ALL`.
    ConstArray(ConstArrayDef),
}

/// A function item.
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the signature (after the name, before the body).
    pub sig: TokRange,
    /// The body, when present.
    pub body: Option<Block>,
    /// Whole-item token range (signature through closing brace).
    pub span: TokRange,
}

/// An enum definition.
pub struct EnumDef {
    /// The enum's name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Variant names, in declaration order.
    pub variants: Vec<String>,
}

/// An `impl` or `trait` block.
pub struct ImplDef {
    /// The implemented type (after `for`, or the trait/type name).
    pub type_name: String,
    /// Nested items.
    pub items: Vec<Item>,
}

/// An inline module.
pub struct ModDef {
    /// The module's name.
    pub name: String,
    /// Nested items.
    pub items: Vec<Item>,
}

/// `const NAME: [Elem; N] = [ ... ];` — the shape of `Enum::ALL` tables.
pub struct ConstArrayDef {
    /// The constant's name (`ALL`).
    pub name: String,
    /// Element type (last path segment inside the `[Ty; N]`).
    pub elem_type: String,
    /// Declared length `N`, when it is an integer literal.
    pub len: Option<u64>,
    /// Identifiers appearing in the initializer (variant names).
    pub init_idents: Vec<String>,
    /// 1-based line of the `const` keyword.
    pub line: u32,
    /// 1-based column of the `const` keyword.
    pub col: u32,
}

/// A `{ ... }` body as a statement sequence.
#[derive(Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

/// One statement-level construct.
pub enum Stmt {
    /// `if cond { then } else { else_ }` (an `else if` chain nests).
    If {
        /// Token range of the condition.
        cond: TokRange,
        /// The `then` block.
        then_b: Block,
        /// The `else` block, when present.
        else_b: Option<Block>,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// Token range of the scrutinee expression.
        scrutinee: TokRange,
        /// The arms, in order.
        arms: Vec<Arm>,
        /// 1-based position of the `match` keyword.
        line: u32,
        /// 1-based column of the `match` keyword.
        col: u32,
    },
    /// `loop` / `while` / `for` — `cond` covers the header expression.
    Loop {
        /// Header tokens (`while` condition / `for` iterator), if any.
        cond: Option<TokRange>,
        /// The loop body.
        body: Block,
    },
    /// A bare `{ ... }` (or `unsafe { ... }`) block.
    Block(Block),
    /// An opaque statement/expression run with its extracted events.
    Run(Run),
}

/// One match arm.
pub struct Arm {
    /// Token range of the pattern (including any guard).
    pub pat: TokRange,
    /// The arm body.
    pub body: Block,
    /// 1-based line of the pattern's first token.
    pub line: u32,
    /// 1-based column of the pattern's first token.
    pub col: u32,
}

/// An opaque statement run.
pub struct Run {
    /// Token range of the run.
    pub span: TokRange,
    /// Events extracted from the run, in source order.
    pub events: Vec<Event>,
    /// Names bound by a leading `let` pattern (for taint propagation).
    pub let_binds: Vec<String>,
    /// Initializer range of a leading `let`, when present.
    pub let_init: Option<TokRange>,
    /// True when the run discards a call result: `let _ = call(..);` or a
    /// bare `call(..);` expression statement.
    pub discards_result: bool,
}

/// One extracted event.
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Event kinds extracted from opaque runs.
pub enum EventKind {
    /// A call. `recv` is the identifier directly left of the final `.`
    /// for method calls (`self.conflict.try_acquire(..)` → `conflict`),
    /// `None` for free-function calls.
    Call {
        /// Receiver identifier, when syntactically evident.
        recv: Option<String>,
        /// The called name.
        name: String,
        /// Token range of the argument list (inside the parentheses).
        args: TokRange,
    },
    /// A `?` propagation — a conditional early exit.
    Try,
    /// A `return`. `conditional` when it is nested mid-statement (e.g.
    /// the `else` arm of a `let … else`), so fall-through also exists.
    Return {
        /// Whether fall-through past the `return` is possible.
        conditional: bool,
    },
    /// A diverging macro: `panic!` / `unreachable!` / `todo!` /
    /// `unimplemented!`. Panic exits are exempt from lock pairing.
    Panic,
    /// `break` out of a loop.
    Break,
    /// `continue` a loop.
    Continue,
}

/// Parse a whole file.
pub fn parse(tokens: &[Token], src: &str) -> Ast {
    let mut p = Parser { tokens, src };
    Ast {
        items: p.items(0, tokens.len()),
    }
}

struct Parser<'a> {
    tokens: &'a [Token],
    src: &'a str,
}

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &'a str {
        self.tokens[i].text(self.src)
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        i < self.tokens.len() && self.tokens[i].is_punct(self.src, c)
    }

    fn is_ident(&self, i: usize, name: &str) -> bool {
        i < self.tokens.len() && self.tokens[i].is_ident(self.src, name)
    }

    fn is_any_ident(&self, i: usize) -> bool {
        i < self.tokens.len() && self.tokens[i].kind == TokenKind::Ident
    }

    /// Skip one `#[...]` attribute starting at `i` (a `#`). Returns the
    /// index one past the closing `]`, or `i + 1` if malformed.
    fn skip_attribute(&self, i: usize) -> usize {
        let mut j = i + 1;
        if self.is_punct(j, '!') {
            j += 1;
        }
        if !self.is_punct(j, '[') {
            return i + 1;
        }
        j += 1;
        let mut depth = 1usize;
        while j < self.tokens.len() && depth > 0 {
            if self.is_punct(j, '[') {
                depth += 1;
            } else if self.is_punct(j, ']') {
                depth -= 1;
            }
            j += 1;
        }
        j
    }

    /// From an opening delimiter at `i`, return the index of its matching
    /// closer (balancing all three bracket kinds), or `hi` when unclosed.
    fn matching(&self, i: usize, hi: usize) -> usize {
        let mut depth = 0i32;
        let mut j = i;
        while j < hi {
            if let TokenKind::Punct = self.tokens[j].kind {
                match self.text(j).as_bytes().first() {
                    Some(b'{' | b'(' | b'[') => depth += 1,
                    Some(b'}' | b')' | b']') => {
                        depth -= 1;
                        if depth == 0 {
                            return j;
                        }
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        hi
    }

    /// Scan items in `[lo, hi)`.
    fn items(&mut self, lo: usize, hi: usize) -> Vec<Item> {
        let mut out = Vec::new();
        let mut i = lo;
        while i < hi {
            if self.is_punct(i, '#') {
                i = self.skip_attribute(i);
                continue;
            }
            if !self.is_any_ident(i) {
                i += 1;
                continue;
            }
            match self.text(i) {
                "pub" => {
                    // `pub` / `pub(crate)` visibility prefix.
                    i += 1;
                    if self.is_punct(i, '(') {
                        i = self.matching(i, hi) + 1;
                    }
                }
                "unsafe" | "async" | "const" if self.is_fn_ahead(i + 1, hi) => {
                    i += 1; // qualifier before `fn`
                }
                "fn" => {
                    let (item, next) = self.fn_item(i, hi);
                    out.push(item);
                    i = next;
                }
                "enum" => {
                    let (item, next) = self.enum_item(i, hi);
                    if let Some(it) = item {
                        out.push(it);
                    }
                    i = next;
                }
                "impl" | "trait" => {
                    let (item, next) = self.impl_item(i, hi);
                    if let Some(it) = item {
                        out.push(it);
                    }
                    i = next;
                }
                "mod" => {
                    let (item, next) = self.mod_item(i, hi);
                    if let Some(it) = item {
                        out.push(it);
                    }
                    i = next;
                }
                "const" | "static" => {
                    let (item, next) = self.const_item(i, hi);
                    if let Some(it) = item {
                        out.push(it);
                    }
                    i = next;
                }
                "struct" | "union" | "use" | "type" | "extern" => {
                    i = self.skip_to_item_end(i + 1, hi);
                }
                "macro_rules" => {
                    // `macro_rules! name { ... }`
                    let mut j = i + 1;
                    while j < hi && !self.is_punct(j, '{') {
                        j += 1;
                    }
                    i = self.matching(j, hi) + 1;
                }
                _ => i += 1,
            }
        }
        out
    }

    /// Is the next meaningful token (skipping more qualifiers) `fn`?
    fn is_fn_ahead(&self, mut i: usize, hi: usize) -> bool {
        while i < hi && self.is_any_ident(i) {
            match self.text(i) {
                "fn" => return true,
                "unsafe" | "async" | "extern" | "const" => i += 1,
                _ => return false,
            }
        }
        // `extern "C" fn`
        i < hi && self.tokens[i].kind == TokenKind::Str && self.is_ident(i + 1, "fn")
    }

    /// Skip to one past the `;` ending a body-less item, or past the
    /// matching `}` if a brace opens first (struct with fields).
    fn skip_to_item_end(&self, lo: usize, hi: usize) -> usize {
        let mut i = lo;
        while i < hi {
            if self.is_punct(i, ';') {
                return i + 1;
            }
            if self.is_punct(i, '{') || self.is_punct(i, '(') || self.is_punct(i, '[') {
                i = self.matching(i, hi) + 1;
                // A brace-bodied struct has no trailing `;`.
                if i > 0 && self.is_punct(i - 1, '}') {
                    return i;
                }
                continue;
            }
            i += 1;
        }
        hi
    }

    /// Parse `fn name <sig> { body }` with `fn` at `i`.
    fn fn_item(&mut self, i: usize, hi: usize) -> (Item, usize) {
        let line = self.tokens[i].line;
        let mut j = i + 1;
        let name = if self.is_any_ident(j) {
            let n = self.text(j).to_string();
            j += 1;
            n
        } else {
            String::new()
        };
        let sig_start = j;
        // Scan the signature: body `{` appears at paren/bracket depth 0.
        let mut paren = 0i32;
        let mut bracket = 0i32;
        while j < hi {
            if let TokenKind::Punct = self.tokens[j].kind {
                match self.text(j).as_bytes().first() {
                    Some(b'(') => paren += 1,
                    Some(b')') => paren -= 1,
                    Some(b'[') => bracket += 1,
                    Some(b']') => bracket -= 1,
                    Some(b';') if paren == 0 && bracket == 0 => {
                        // Body-less (trait method declaration).
                        let item = Item::Fn(FnItem {
                            name,
                            line,
                            sig: (sig_start, j),
                            body: None,
                            span: (i, j + 1),
                        });
                        return (item, j + 1);
                    }
                    Some(b'{') if paren == 0 && bracket == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let body_open = j;
        let body_close = self.matching(body_open, hi);
        let body = self.block(body_open + 1, body_close);
        let item = Item::Fn(FnItem {
            name,
            line,
            sig: (sig_start, body_open),
            body: Some(body),
            span: (i, (body_close + 1).min(hi)),
        });
        (item, (body_close + 1).min(hi))
    }

    /// Parse `enum Name { V1, V2(T), V3 { .. } }` with `enum` at `i`.
    fn enum_item(&mut self, i: usize, hi: usize) -> (Option<Item>, usize) {
        let line = self.tokens[i].line;
        let mut j = i + 1;
        if !self.is_any_ident(j) {
            return (None, j);
        }
        let name = self.text(j).to_string();
        while j < hi && !self.is_punct(j, '{') {
            if self.is_punct(j, ';') {
                return (None, j + 1);
            }
            j += 1;
        }
        let close = self.matching(j, hi);
        let mut variants = Vec::new();
        let mut k = j + 1;
        while k < close {
            if self.is_punct(k, '#') {
                k = self.skip_attribute(k);
                continue;
            }
            if self.is_any_ident(k) {
                variants.push(self.text(k).to_string());
                k += 1;
                // Skip the variant payload / discriminant to the next `,`
                // at variant depth.
                while k < close && !self.is_punct(k, ',') {
                    if self.is_punct(k, '(') || self.is_punct(k, '{') || self.is_punct(k, '[') {
                        k = self.matching(k, close) + 1;
                    } else {
                        k += 1;
                    }
                }
                k += 1; // the comma
            } else {
                k += 1;
            }
        }
        (
            Some(Item::Enum(EnumDef {
                name,
                line,
                variants,
            })),
            (close + 1).min(hi),
        )
    }

    /// Parse `impl [<..>] [Trait for] Type { items }` / `trait Name { .. }`.
    fn impl_item(&mut self, i: usize, hi: usize) -> (Option<Item>, usize) {
        let mut j = i + 1;
        // Skip the generic parameter list directly after the keyword so
        // `impl<T: Clone> Foo<T>` resolves to `Foo`, not `T`.
        if self.is_punct(j, '<') {
            let mut depth = 1i32;
            j += 1;
            while j < hi && depth > 0 {
                if self.is_punct(j, '<') {
                    depth += 1;
                } else if self.is_punct(j, '>') {
                    depth -= 1;
                }
                j += 1;
            }
        }
        // The type name is the first ident after `for` when present,
        // otherwise the first ident of the head (`impl Foo<T>` → `Foo`,
        // `trait Name` → `Name`).
        let mut first_ident: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut seen_for = false;
        while j < hi && !self.is_punct(j, '{') {
            if self.is_punct(j, ';') {
                return (None, j + 1); // `trait X: Y;`-style, no body
            }
            if self.is_any_ident(j) {
                let t = self.text(j);
                if t == "for" {
                    seen_for = true;
                } else if t != "where" && t != "dyn" {
                    if seen_for && after_for.is_none() {
                        after_for = Some(t.to_string());
                    }
                    if first_ident.is_none() {
                        first_ident = Some(t.to_string());
                    }
                }
            }
            j += 1;
        }
        let close = self.matching(j, hi);
        let items = self.items(j + 1, close);
        let type_name = after_for.or(first_ident).unwrap_or_default();
        (
            Some(Item::Impl(ImplDef { type_name, items })),
            (close + 1).min(hi),
        )
    }

    /// Parse `mod name { items }` / `mod name;`.
    fn mod_item(&mut self, i: usize, hi: usize) -> (Option<Item>, usize) {
        let mut j = i + 1;
        if !self.is_any_ident(j) {
            return (None, j);
        }
        let name = self.text(j).to_string();
        j += 1;
        if self.is_punct(j, ';') {
            return (None, j + 1);
        }
        if !self.is_punct(j, '{') {
            return (None, j);
        }
        let close = self.matching(j, hi);
        let items = self.items(j + 1, close);
        (Some(Item::Mod(ModDef { name, items })), (close + 1).min(hi))
    }

    /// Parse `const NAME: [Ty; N] = [ ... ];` (the `Enum::ALL` shape);
    /// anything else is skipped.
    fn const_item(&mut self, i: usize, hi: usize) -> (Option<Item>, usize) {
        let (line, col) = (self.tokens[i].line, self.tokens[i].col);
        let mut j = i + 1;
        if !self.is_any_ident(j) {
            return (None, self.skip_to_item_end(j, hi));
        }
        let name = self.text(j).to_string();
        j += 1;
        if !self.is_punct(j, ':') || !self.is_punct(j + 1, '[') {
            return (None, self.skip_to_item_end(j, hi));
        }
        let ty_close = self.matching(j + 1, hi);
        // Element type: idents before the `;` inside the brackets; the
        // declared length is the integer after it.
        let mut elem_type = String::new();
        let mut len = None;
        let mut semi_seen = false;
        for k in j + 2..ty_close {
            match self.tokens[k].kind {
                TokenKind::Punct if self.text(k) == ";" => semi_seen = true,
                TokenKind::Ident if !semi_seen => elem_type = self.text(k).to_string(),
                TokenKind::Int if semi_seen => {
                    len = self.text(k).replace('_', "").parse::<u64>().ok();
                }
                _ => {}
            }
        }
        j = ty_close + 1;
        if !self.is_punct(j, '=') || !self.is_punct(j + 1, '[') {
            return (None, self.skip_to_item_end(j, hi));
        }
        let init_close = self.matching(j + 1, hi);
        let init_idents = (j + 2..init_close)
            .filter(|&k| self.is_any_ident(k))
            .map(|k| self.text(k).to_string())
            .collect();
        (
            Some(Item::ConstArray(ConstArrayDef {
                name,
                elem_type,
                len,
                init_idents,
                line,
                col,
            })),
            self.skip_to_item_end(init_close, hi),
        )
    }

    // ----- statement / body parsing -----

    /// Parse the statements of a block body in `[lo, hi)`.
    fn block(&mut self, lo: usize, hi: usize) -> Block {
        Block {
            stmts: self.stmts(lo, hi),
        }
    }

    fn stmts(&mut self, lo: usize, hi: usize) -> Vec<Stmt> {
        let mut out = Vec::new();
        let mut i = lo;
        while i < hi {
            if self.is_punct(i, ';') {
                i += 1;
                continue;
            }
            if self.is_punct(i, '#') {
                i = self.skip_attribute(i);
                continue;
            }
            if self.is_ident(i, "if") {
                let (s, next) = self.if_stmt(i, hi);
                out.push(s);
                i = next;
            } else if self.is_ident(i, "match") {
                let (s, next) = self.match_stmt(i, hi);
                out.push(s);
                i = next;
            } else if self.is_ident(i, "while") || self.is_ident(i, "for") {
                let mut j = i + 1;
                while j < hi && !self.is_punct(j, '{') {
                    if self.is_punct(j, '(') || self.is_punct(j, '[') {
                        j = self.matching(j, hi);
                    }
                    j += 1;
                }
                let close = self.matching(j, hi);
                let body = self.block(j + 1, close);
                out.push(Stmt::Loop {
                    cond: Some((i + 1, j)),
                    body,
                });
                i = (close + 1).min(hi);
            } else if self.is_ident(i, "loop") {
                let mut j = i + 1;
                while j < hi && !self.is_punct(j, '{') {
                    j += 1;
                }
                let close = self.matching(j, hi);
                let body = self.block(j + 1, close);
                out.push(Stmt::Loop { cond: None, body });
                i = (close + 1).min(hi);
            } else if self.is_punct(i, '{')
                || (self.is_ident(i, "unsafe") && self.is_punct(i + 1, '{'))
            {
                let open = if self.is_punct(i, '{') { i } else { i + 1 };
                let close = self.matching(open, hi);
                let body = self.block(open + 1, close);
                out.push(Stmt::Block(body));
                i = (close + 1).min(hi);
            } else if self.is_ident(i, "fn") {
                // Nested function item inside a body: parse and discard
                // the item structure, but keep its body's events out of
                // this function's flow (a nested fn does not run here).
                let (_, next) = self.fn_item(i, hi);
                i = next;
            } else {
                let (s, next) = self.run_stmt(i, hi);
                out.push(s);
                i = next;
            }
        }
        out
    }

    fn if_stmt(&mut self, i: usize, hi: usize) -> (Stmt, usize) {
        // Condition: tokens to the `{` at group depth 0 (struct literals
        // are not legal in conditions, so the first depth-0 `{` is the
        // block).
        let mut j = i + 1;
        while j < hi && !self.is_punct(j, '{') {
            if self.is_punct(j, '(') || self.is_punct(j, '[') {
                j = self.matching(j, hi);
            }
            j += 1;
        }
        let cond = (i + 1, j);
        let close = self.matching(j, hi);
        let then_b = self.block(j + 1, close);
        let mut next = (close + 1).min(hi);
        let mut else_b = None;
        if self.is_ident(next, "else") {
            if self.is_ident(next + 1, "if") {
                let (nested, after) = self.if_stmt(next + 1, hi);
                else_b = Some(Block {
                    stmts: vec![nested],
                });
                next = after;
            } else if self.is_punct(next + 1, '{') {
                let eclose = self.matching(next + 1, hi);
                else_b = Some(self.block(next + 2, eclose));
                next = (eclose + 1).min(hi);
            }
        }
        (
            Stmt::If {
                cond,
                then_b,
                else_b,
            },
            next,
        )
    }

    fn match_stmt(&mut self, i: usize, hi: usize) -> (Stmt, usize) {
        let (line, col) = (self.tokens[i].line, self.tokens[i].col);
        let mut j = i + 1;
        while j < hi && !self.is_punct(j, '{') {
            if self.is_punct(j, '(') || self.is_punct(j, '[') {
                j = self.matching(j, hi);
            }
            j += 1;
        }
        let scrutinee = (i + 1, j);
        let close = self.matching(j, hi);
        let mut arms = Vec::new();
        let mut k = j + 1;
        while k < close {
            if self.is_punct(k, ',') || self.is_punct(k, '#') {
                k = if self.is_punct(k, '#') {
                    self.skip_attribute(k)
                } else {
                    k + 1
                };
                continue;
            }
            // Pattern: to the `=>` (an `=` immediately followed by `>`)
            // at group depth 0.
            let pat_start = k;
            let (pline, pcol) = (self.tokens[k].line, self.tokens[k].col);
            while k < close {
                if self.is_punct(k, '(') || self.is_punct(k, '[') || self.is_punct(k, '{') {
                    k = self.matching(k, close) + 1;
                    continue;
                }
                if self.is_punct(k, '=') && self.is_punct(k + 1, '>') {
                    break;
                }
                k += 1;
            }
            let pat = (pat_start, k);
            k += 2; // past `=>`
            if k >= close {
                break;
            }
            let body = if self.is_punct(k, '{') {
                let bclose = self.matching(k, close);
                let b = self.block(k + 1, bclose);
                k = bclose + 1;
                b
            } else {
                // Expression arm: to the `,` at group depth 0 (or the
                // match's closing brace).
                let estart = k;
                while k < close && !self.is_punct(k, ',') {
                    if self.is_punct(k, '(') || self.is_punct(k, '[') || self.is_punct(k, '{') {
                        k = self.matching(k, close) + 1;
                        continue;
                    }
                    k += 1;
                }
                Block {
                    stmts: self.stmts(estart, k),
                }
            };
            arms.push(Arm {
                pat,
                body,
                line: pline,
                col: pcol,
            });
        }
        (
            Stmt::Match {
                scrutinee,
                arms,
                line,
                col,
            },
            (close + 1).min(hi),
        )
    }

    /// Parse an opaque run: from `i` to the terminating `;` at group
    /// depth 0, a depth-0 control keyword, or `hi`. Extracts events.
    fn run_stmt(&mut self, i: usize, hi: usize) -> (Stmt, usize) {
        let start = i;
        let mut j = i;
        // A leading `let` keeps binding info for taint propagation.
        let is_let = self.is_ident(i, "let");
        let mut let_binds = Vec::new();
        let mut let_init = None;
        while j < hi {
            if self.is_punct(j, '(') || self.is_punct(j, '[') || self.is_punct(j, '{') {
                j = self.matching(j, hi) + 1;
                continue;
            }
            if self.is_punct(j, ';') {
                j += 1;
                break;
            }
            // Split before a statement-level control construct so its
            // branch structure is preserved (`let x = match e { .. };`
            // contributes `match` as its own statement).
            if j > i
                && (self.is_ident(j, "match") || self.is_ident(j, "if"))
                && !self.is_ident(j - 1, "else")
                && !self.is_ident(j - 1, "let")
            {
                break;
            }
            j += 1;
        }
        // `matching() + 1` can land one past `hi` at end of input.
        let j = j.min(hi);
        if is_let {
            // Pattern idents up to the `=`; the initializer is what follows.
            // Only lowercase/underscore-leading idents are bindings — the
            // uppercase ones in a pattern (`Some`, `ConflictDecision::…`)
            // are constructors, and idents after a depth-0 `:` are type
            // annotation, not bindings.
            let mut k = start + 1;
            let mut depth = 0i32;
            let mut in_type = false;
            while k < j {
                if let TokenKind::Punct = self.tokens[k].kind {
                    match self.text(k).as_bytes().first() {
                        Some(b'(' | b'[' | b'{') => depth += 1,
                        Some(b')' | b']' | b'}') => depth -= 1,
                        Some(b'=') if depth == 0 => break,
                        Some(b':') if depth == 0 => {
                            let path_sep = self.is_punct(k + 1, ':')
                                || (k > start && self.is_punct(k - 1, ':'));
                            if !path_sep {
                                in_type = true;
                            }
                        }
                        _ => {}
                    }
                }
                if !in_type && self.is_any_ident(k) {
                    let t = self.text(k);
                    let binds = t
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_lowercase() || c == '_');
                    if binds && !matches!(t, "mut" | "ref" | "box" | "_") {
                        let_binds.push(t.to_string());
                    }
                }
                k += 1;
            }
            if k < j && self.is_punct(k, '=') {
                let_init = Some((k + 1, j));
            }
        }
        let events = self.extract_events(start, j);
        let discards_result = self.run_discards_result(start, j, &events);
        (
            Stmt::Run(Run {
                span: (start, j),
                events,
                let_binds,
                let_init,
                discards_result,
            }),
            j,
        )
    }

    /// Does this run discard a call result? True for `let _ = …;` and for
    /// a bare call expression statement (no `=` at depth 0, not a
    /// `return` / `break` value, ends in `;`).
    fn run_discards_result(&self, lo: usize, hi: usize, events: &[Event]) -> bool {
        if !events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Call { .. }))
        {
            return false;
        }
        if self.is_ident(lo, "let") {
            // `_` lexes as an identifier, not punctuation.
            return self.is_ident(lo + 1, "_") && self.is_punct(lo + 2, '=');
        }
        if self.is_any_ident(lo) && matches!(self.text(lo), "return" | "break" | "continue" | "use")
        {
            return false;
        }
        // No assignment at group depth 0 and a trailing `;` → the value
        // is dropped.
        let mut j = lo;
        let mut assigned = false;
        while j < hi {
            if self.is_punct(j, '(') || self.is_punct(j, '[') || self.is_punct(j, '{') {
                j = self.matching(j, hi) + 1;
                continue;
            }
            if self.is_punct(j, '=') && !self.is_punct(j + 1, '=') {
                // Exclude `==`/`!=`/`<=`/`>=`/`=>`; `+=` etc. still assign.
                let prev_cmp = j > lo
                    && (self.is_punct(j - 1, '=')
                        || self.is_punct(j - 1, '!')
                        || self.is_punct(j - 1, '<')
                        || self.is_punct(j - 1, '>'));
                let arrow = self.is_punct(j + 1, '>');
                if !prev_cmp && !arrow {
                    assigned = true;
                }
            }
            j += 1;
        }
        !assigned && j > lo && self.is_punct(j - 1, ';')
    }

    /// Extract call / exit events from the tokens of one run.
    fn extract_events(&self, lo: usize, hi: usize) -> Vec<Event> {
        let mut out = Vec::new();
        for j in lo..hi {
            let t = &self.tokens[j];
            match t.kind {
                TokenKind::Ident => {
                    let name = self.text(j);
                    match name {
                        "return" => out.push(Event {
                            kind: EventKind::Return {
                                conditional: j != lo,
                            },
                            line: t.line,
                            col: t.col,
                        }),
                        "break" => out.push(Event {
                            kind: EventKind::Break,
                            line: t.line,
                            col: t.col,
                        }),
                        "continue" => out.push(Event {
                            kind: EventKind::Continue,
                            line: t.line,
                            col: t.col,
                        }),
                        "panic" | "unreachable" | "todo" | "unimplemented"
                            if self.is_punct(j + 1, '!') =>
                        {
                            out.push(Event {
                                kind: EventKind::Panic,
                                line: t.line,
                                col: t.col,
                            })
                        }
                        _ => {
                            if let Some(ev) = self.call_event(j, hi) {
                                out.push(ev);
                            }
                        }
                    }
                }
                TokenKind::Punct if self.text(j) == "?" => {
                    // `?` after a value position is the try operator;
                    // after `:` it is `?Sized`.
                    let after_value = j > lo
                        && (self.tokens[j - 1].kind == TokenKind::Ident
                            || self.is_punct(j - 1, ')')
                            || self.is_punct(j - 1, ']'));
                    if after_value {
                        out.push(Event {
                            kind: EventKind::Try,
                            line: t.line,
                            col: t.col,
                        });
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// A call event at ident `j`: `name(..)`, `.name(..)`, or the
    /// turbofish `.name::<T>(..)`.
    fn call_event(&self, j: usize, hi: usize) -> Option<Event> {
        let t = &self.tokens[j];
        let name = self.text(j);
        if matches!(
            name,
            "if" | "else" | "match" | "while" | "for" | "loop" | "let" | "mut" | "ref" | "move"
        ) {
            return None;
        }
        // Find the argument `(`: immediately after, or after `::<..>`.
        let mut k = j + 1;
        if self.is_punct(k, ':') && self.is_punct(k + 1, ':') && self.is_punct(k + 2, '<') {
            let mut depth = 1i32;
            k += 3;
            while k < hi && depth > 0 {
                if self.is_punct(k, '<') {
                    depth += 1;
                } else if self.is_punct(k, '>') {
                    depth -= 1;
                }
                k += 1;
            }
        }
        if !self.is_punct(k, '(') {
            return None;
        }
        let close = self.matching(k, hi);
        let is_method = j >= 1 && self.is_punct(j - 1, '.');
        let recv = if is_method && j >= 2 && self.tokens[j - 2].kind == TokenKind::Ident {
            Some(self.text(j - 2).to_string())
        } else {
            None
        };
        if !is_method {
            // Free call: require the previous token not be `.` (handled)
            // and skip obvious non-calls like enum constructors? They are
            // indistinguishable syntactically; the rule layer filters by
            // name, so the noise is harmless.
        }
        Some(Event {
            kind: EventKind::Call {
                recv,
                name: name.to_string(),
                args: (k + 1, close),
            },
            line: t.line,
            col: t.col,
        })
    }
}

/// Walk helper: visit every function item (including those nested in
/// impls, traits, and modules) with its enclosing impl type name.
pub fn visit_fns<'a>(items: &'a [Item], f: &mut dyn FnMut(&'a FnItem, Option<&'a str>)) {
    fn go<'a>(
        items: &'a [Item],
        owner: Option<&'a str>,
        f: &mut dyn FnMut(&'a FnItem, Option<&'a str>),
    ) {
        for item in items {
            match item {
                Item::Fn(func) => f(func, owner),
                Item::Impl(imp) => go(&imp.items, Some(&imp.type_name), f),
                Item::Mod(m) => go(&m.items, owner, f),
                _ => {}
            }
        }
    }
    go(items, None, f);
}

/// Walk helper: visit every enum definition.
pub fn visit_enums<'a>(items: &'a [Item], f: &mut dyn FnMut(&'a EnumDef)) {
    for item in items {
        match item {
            Item::Enum(e) => f(e),
            Item::Impl(imp) => visit_enums(&imp.items, f),
            Item::Mod(m) => visit_enums(&m.items, f),
            _ => {}
        }
    }
}

/// Walk helper: visit every `const NAME: [Ty; N] = [..]` item with its
/// enclosing impl type name.
pub fn visit_const_arrays<'a>(
    items: &'a [Item],
    f: &mut dyn FnMut(&'a ConstArrayDef, Option<&'a str>),
) {
    fn go<'a>(
        items: &'a [Item],
        owner: Option<&'a str>,
        f: &mut dyn FnMut(&'a ConstArrayDef, Option<&'a str>),
    ) {
        for item in items {
            match item {
                Item::ConstArray(c) => f(c, owner),
                Item::Impl(imp) => go(&imp.items, Some(&imp.type_name), f),
                Item::Mod(m) => go(&m.items, owner, f),
                Item::Fn(_) | Item::Enum(_) => {}
            }
        }
    }
    go(items, None, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> (Ast, Vec<crate::lexer::Token>) {
        let lexed = lex(src);
        let ast = parse(&lexed.tokens, src);
        (ast, lexed.tokens)
    }

    fn fn_names(ast: &Ast) -> Vec<String> {
        let mut out = Vec::new();
        visit_fns(&ast.items, &mut |f, _| out.push(f.name.clone()));
        out
    }

    #[test]
    fn items_are_discovered() {
        let src = r#"
            pub enum E { A, B(u32), C { x: u8 } }
            impl E { pub fn m(&self) -> u32 { 1 } }
            mod inner { fn nested() {} }
            pub fn top(x: u32) -> u32 { x }
        "#;
        let (ast, _) = parse_src(src);
        assert_eq!(fn_names(&ast), vec!["m", "nested", "top"]);
        let mut enums = Vec::new();
        visit_enums(&ast.items, &mut |e| {
            enums.push((e.name.clone(), e.variants.clone()))
        });
        assert_eq!(
            enums,
            vec![("E".to_string(), vec!["A".into(), "B".into(), "C".into()])]
        );
    }

    #[test]
    fn impl_for_resolves_type_name() {
        let src = "impl ToJson for Metric { fn to_json(&self) {} }";
        let (ast, _) = parse_src(src);
        match &ast.items[0] {
            Item::Impl(i) => assert_eq!(i.type_name, "Metric"),
            _ => panic!("expected impl"),
        }
    }

    #[test]
    fn const_array_shape() {
        let src = "impl E { pub const ALL: [E; 3] = [E::A, E::B, E::C]; }";
        let (ast, _) = parse_src(src);
        let mut found = Vec::new();
        visit_const_arrays(&ast.items, &mut |c, owner| {
            found.push((
                c.name.clone(),
                c.elem_type.clone(),
                c.len,
                c.init_idents.clone(),
                owner.map(str::to_string),
            ))
        });
        assert_eq!(found.len(), 1);
        let (name, ty, len, inits, owner) = &found[0];
        assert_eq!(name, "ALL");
        assert_eq!(ty, "E");
        assert_eq!(*len, Some(3));
        assert!(inits.contains(&"A".to_string()) && inits.contains(&"C".to_string()));
        assert_eq!(owner.as_deref(), Some("E"));
    }

    #[test]
    fn body_control_flow_tree() {
        let src = r#"
            fn f(x: u32) -> u32 {
                if x > 1 { g(x)?; } else { h(); }
                match x { 0 => a(), _ => { b(); } }
                while x > 0 { c(); }
                x
            }
        "#;
        let (ast, _) = parse_src(src);
        let mut bodies = Vec::new();
        visit_fns(&ast.items, &mut |f, _| bodies.push(f.body.as_ref()));
        let body = bodies[0].expect("body");
        assert!(matches!(body.stmts[0], Stmt::If { .. }));
        match &body.stmts[1] {
            Stmt::Match { arms, .. } => assert_eq!(arms.len(), 2),
            _ => panic!("expected match"),
        }
        assert!(matches!(body.stmts[2], Stmt::Loop { .. }));
    }

    #[test]
    fn events_extracted_with_receivers() {
        let src = "fn f() { self.conflict.try_acquire(slot, &mut rng)?; }";
        let (ast, _) = parse_src(src);
        let mut found = Vec::new();
        visit_fns(&ast.items, &mut |f, _| {
            if let Some(b) = &f.body {
                if let Stmt::Run(r) = &b.stmts[0] {
                    for e in &r.events {
                        match &e.kind {
                            EventKind::Call { recv, name, .. } => {
                                found.push(format!("{:?}.{}", recv, name))
                            }
                            EventKind::Try => found.push("?".to_string()),
                            _ => {}
                        }
                    }
                }
            }
        });
        assert_eq!(found, vec!["Some(\"conflict\").try_acquire", "?"]);
    }

    #[test]
    fn let_binds_and_discards() {
        let src = "fn f() { let x = rng.next_u64(); let _ = t.try_acquire(); q.release(); }";
        let (ast, _) = parse_src(src);
        let mut runs = Vec::new();
        visit_fns(&ast.items, &mut |f, _| {
            if let Some(b) = &f.body {
                for s in &b.stmts {
                    if let Stmt::Run(r) = s {
                        runs.push((r.let_binds.clone(), r.discards_result));
                    }
                }
            }
        });
        assert_eq!(runs[0].0, vec!["x".to_string()]);
        assert!(!runs[0].1);
        assert!(runs[1].1, "let _ = call() discards");
        assert!(runs[2].1, "bare call statement discards");
    }

    #[test]
    fn let_else_is_one_run_with_conditional_return() {
        let src = "fn f() { let Some(v) = opt else { return; }; v.use_it(); }";
        let (ast, _) = parse_src(src);
        let mut kinds = Vec::new();
        visit_fns(&ast.items, &mut |f, _| {
            if let Some(b) = &f.body {
                if let Stmt::Run(r) = &b.stmts[0] {
                    for e in &r.events {
                        if let EventKind::Return { conditional } = e.kind {
                            kinds.push(conditional);
                        }
                    }
                }
            }
        });
        assert_eq!(kinds, vec![true], "nested return is conditional");
    }

    #[test]
    fn match_in_let_preserves_branches() {
        let src = "fn f() { let d = match mode { M::A => 1, M::B => 2 }; }";
        let (ast, _) = parse_src(src);
        let mut match_count = 0;
        visit_fns(&ast.items, &mut |f, _| {
            if let Some(b) = &f.body {
                for s in &b.stmts {
                    if let Stmt::Match { arms, .. } = s {
                        match_count = arms.len();
                    }
                }
            }
        });
        assert_eq!(match_count, 2);
    }
}
