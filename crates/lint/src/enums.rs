//! Exhaustiveness-drift rules (E).
//!
//! rustc checks that `match` covers every variant — until someone writes
//! `_`, mirrors an enum in a string match (`Metric::from_json`), lists
//! variants in CLI usage text, or maintains a parallel `ALL` array. All
//! four drift silently when a variant is added. These rules close the
//! gap:
//!
//! * **E001** — a `match` on an enum marked `lint:exhaustive(Name)`
//!   names more than half the variants but hides the rest behind a `_`
//!   arm. Such a match clearly *intends* per-variant handling; the
//!   wildcard means a new variant is absorbed silently instead of
//!   failing to compile.
//! * **E002** — an item annotated `lint:covers(Name)` must mention every
//!   variant of `Name`, either as an identifier or (case-insensitively)
//!   inside a string literal. This is the drift guard for
//!   `from_json`-style string matches and `USAGE` text.
//! * **E003** — a `const ALL: [Name; k]` array whose length or
//!   initializer disagrees with the enum definition: wrong `k`, or an
//!   initializer that skips (or double-counts) a variant.

use std::collections::BTreeSet;

use crate::allow::MarkerKind;
use crate::lexer::TokenKind;
use crate::parse::{visit_const_arrays, visit_fns, Arm, Block, Stmt};
use crate::symbols::SymbolTable;
use crate::{emit, Diagnostic, FileAnalysis, Rule};

/// Run E001/E002/E003 over one file (library scope only; the caller
/// gates).
pub fn check_exhaustiveness(fa: &FileAnalysis, table: &SymbolTable, out: &mut Vec<Diagnostic>) {
    check_wildcard_matches(fa, table, out);
    check_covers_markers(fa, table, out);
    check_all_arrays(fa, table, out);
}

// ----- E001 -----

fn check_wildcard_matches(fa: &FileAnalysis, table: &SymbolTable, out: &mut Vec<Diagnostic>) {
    visit_fns(&fa.ast.items, &mut |f, _| {
        let Some(body) = &f.body else { return };
        if fa.tokens.get(f.span.0).is_some_and(|t| t.in_test) {
            return;
        }
        walk_matches(fa, table, body, out);
    });
}

fn walk_matches(fa: &FileAnalysis, table: &SymbolTable, block: &Block, out: &mut Vec<Diagnostic>) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Match { arms, .. } => {
                check_one_match(fa, table, arms, out);
                for a in arms {
                    walk_matches(fa, table, &a.body, out);
                }
            }
            Stmt::If { then_b, else_b, .. } => {
                walk_matches(fa, table, then_b, out);
                if let Some(e) = else_b {
                    walk_matches(fa, table, e, out);
                }
            }
            Stmt::Loop { body, .. } => walk_matches(fa, table, body, out),
            Stmt::Block(b) => walk_matches(fa, table, b, out),
            Stmt::Run(_) => {}
        }
    }
}

fn check_one_match(
    fa: &FileAnalysis,
    table: &SymbolTable,
    arms: &[Arm],
    out: &mut Vec<Diagnostic>,
) {
    let mut enum_name: Option<String> = None;
    let mut named: BTreeSet<String> = BTreeSet::new();
    let mut wildcard: Option<(u32, u32)> = None;
    for arm in arms {
        let toks = &fa.tokens[arm.pat.0..arm.pat.1.min(fa.tokens.len())];
        if toks.len() == 1 && toks[0].kind == TokenKind::Ident && toks[0].text(&fa.src) == "_" {
            wildcard = Some((arm.line, arm.col));
            continue;
        }
        // Look for `Enum::Variant` paths where Enum is lint:exhaustive.
        for w in 0..toks.len().saturating_sub(3) {
            let [a, c1, c2, b] = [&toks[w], &toks[w + 1], &toks[w + 2], &toks[w + 3]];
            if a.kind == TokenKind::Ident
                && c1.is_punct(&fa.src, ':')
                && c2.is_punct(&fa.src, ':')
                && b.kind == TokenKind::Ident
            {
                let head = a.text(&fa.src);
                if !table.exhaustive.contains(head) {
                    continue;
                }
                let Some(variants) = table.enums.get(head) else {
                    continue;
                };
                let tail = b.text(&fa.src);
                if variants.iter().any(|v| v == tail) {
                    enum_name = Some(head.to_string());
                    named.insert(tail.to_string());
                }
            }
        }
    }
    if let (Some(en), Some((line, col))) = (enum_name.as_deref(), wildcard) {
        let total = table.enums[en].len();
        if named.len() * 2 > total {
            emit(
                fa,
                out,
                Rule::E001,
                line,
                col,
                format!(
                    "match on `{en}` (marked lint:exhaustive) names {}/{} \
                     variants but hides the rest behind `_`; name the \
                     remaining variants so a new one fails to compile \
                     instead of being absorbed silently",
                    named.len(),
                    total
                ),
            );
        }
    }
}

// ----- E002 -----

fn check_covers_markers(fa: &FileAnalysis, table: &SymbolTable, out: &mut Vec<Diagnostic>) {
    for m in &fa.markers {
        if m.kind != MarkerKind::Covers {
            continue;
        }
        let Some(variants) = table.enums.get(&m.name) else {
            emit(
                fa,
                out,
                Rule::E002,
                m.line,
                1,
                format!(
                    "lint:covers({}) names an enum the workspace symbol \
                     table does not know — fix the name or define the enum",
                    m.name
                ),
            );
            continue;
        };
        let Some(region) = covered_region(fa, m.line) else {
            continue;
        };
        let mut missing: Vec<&str> = Vec::new();
        for v in variants {
            let vl = v.to_ascii_lowercase();
            let mentioned = fa.tokens[region.0..region.1].iter().any(|t| match t.kind {
                TokenKind::Ident => t.text(&fa.src).eq_ignore_ascii_case(v),
                TokenKind::Str => t.text(&fa.src).to_ascii_lowercase().contains(&vl),
                _ => false,
            });
            if !mentioned {
                missing.push(v);
            }
        }
        if !missing.is_empty() {
            emit(
                fa,
                out,
                Rule::E002,
                m.line,
                1,
                format!(
                    "item below lint:covers({}) never mentions variant(s) \
                     {} — the mirror has drifted from the enum",
                    m.name,
                    missing
                        .iter()
                        .map(|v| format!("`{v}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            );
        }
    }
}

/// Token range of the item that starts after `marker_line`: from the
/// first token past the line to the end of the first item (the matching
/// `}` of the first depth-0 brace group, or a depth-0 `;`).
fn covered_region(fa: &FileAnalysis, marker_line: u32) -> Option<(usize, usize)> {
    let start = fa.tokens.iter().position(|t| t.line > marker_line)?;
    let mut depth = 0i32;
    let mut i = start;
    while i < fa.tokens.len() {
        let t = &fa.tokens[i];
        if t.kind == TokenKind::Punct {
            let text = t.text(&fa.src);
            match text.as_bytes().first() {
                Some(b'{') | Some(b'(') | Some(b'[') => depth += 1,
                Some(b'}') | Some(b')') | Some(b']') => {
                    depth -= 1;
                    if depth == 0 && text == "}" {
                        return Some((start, i + 1));
                    }
                }
                Some(b';') if depth == 0 => return Some((start, i + 1)),
                _ => {}
            }
        }
        i += 1;
    }
    Some((start, i))
}

// ----- E003 -----

fn check_all_arrays(fa: &FileAnalysis, table: &SymbolTable, out: &mut Vec<Diagnostic>) {
    visit_const_arrays(&fa.ast.items, &mut |c, _| {
        if c.name != "ALL" {
            return;
        }
        // `in_test` lives on tokens; look it up via the item's line.
        if fa
            .tokens
            .iter()
            .find(|t| t.line >= c.line)
            .is_some_and(|t| t.in_test)
        {
            return;
        }
        let Some(variants) = table.enums.get(&c.elem_type) else {
            return;
        };
        if let Some(len) = c.len {
            if len as usize != variants.len() {
                emit(
                    fa,
                    out,
                    Rule::E003,
                    c.line,
                    c.col,
                    format!(
                        "`ALL: [{0}; {len}]` disagrees with `{0}`'s {1} \
                         variants — the mirror array has drifted",
                        c.elem_type,
                        variants.len()
                    ),
                );
                return;
            }
        }
        let mut missing: Vec<&str> = Vec::new();
        for v in variants {
            if !c.init_idents.iter().any(|i| i == v) {
                missing.push(v);
            }
        }
        if !missing.is_empty() {
            emit(
                fa,
                out,
                Rule::E003,
                c.line,
                c.col,
                format!(
                    "`{}::ALL` never lists variant(s) {} — the mirror array \
                     has drifted from the enum",
                    c.elem_type,
                    missing
                        .iter()
                        .map(|v| format!("`{v}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use crate::{lint_rust_source_as, Scope};

    fn codes_at(src: &str) -> Vec<(u32, &'static str)> {
        lint_rust_source_as("crates/x/src/f.rs", src, Scope::Library)
            .iter()
            .map(|d| (d.line, d.rule.code()))
            .collect()
    }

    #[test]
    fn e001_flags_wildcard_hiding_variants() {
        let src = "\
// lint:exhaustive(Metric)
enum Metric { A, B, C, D }
fn render(m: Metric) -> u32 {
    match m {
        Metric::A => 1,
        Metric::B => 2,
        Metric::C => 3,
        _ => 0,
    }
}
";
        assert_eq!(codes_at(src), vec![(8, "E001")]);
    }

    #[test]
    fn e001_silent_for_dispatchy_matches_and_unmarked_enums() {
        let src = "\
// lint:exhaustive(Metric)
enum Metric { A, B, C, D }
enum Other { X, Y, Z }
fn pick(m: Metric) -> bool {
    match m {
        Metric::A => true,
        _ => false,
    }
}
fn other(o: Other) -> u32 {
    match o {
        Other::X => 1,
        Other::Y => 2,
        _ => 0,
    }
}
";
        // `pick` names 1/4 (dispatch, fine); `Other` is unmarked.
        assert!(codes_at(src).is_empty());
    }

    #[test]
    fn e002_flags_missing_variant_mention() {
        let src = "\
enum Mode { Alpha, Beta, Gamma }
// lint:covers(Mode)
fn from_str(s: &str) -> Option<Mode> {
    match s {
        \"alpha\" => Some(Mode::Alpha),
        \"beta\" => Some(Mode::Beta),
        _ => None,
    }
}
";
        assert_eq!(codes_at(src), vec![(2, "E002")]);
    }

    #[test]
    fn e002_satisfied_by_strings_or_idents() {
        let src = "\
enum Mode { Alpha, Beta, Gamma }
// lint:covers(Mode): usage text lists every mode
const USAGE: &str = \"--mode alpha|beta|gamma\";
";
        assert!(codes_at(src).is_empty());
    }

    #[test]
    fn e002_unknown_enum_is_reported() {
        let src = "\
// lint:covers(NoSuchEnum)
const USAGE: &str = \"x\";
";
        assert_eq!(codes_at(src), vec![(1, "E002")]);
    }

    #[test]
    fn e003_flags_length_and_membership_drift() {
        let src = "\
enum Mode { Alpha, Beta, Gamma }
impl Mode {
    pub const ALL: [Mode; 2] = [Mode::Alpha, Mode::Beta];
}
";
        assert_eq!(codes_at(src), vec![(3, "E003")]);
    }

    #[test]
    fn e003_flags_skipped_variant_with_right_length() {
        let src = "\
enum Mode { Alpha, Beta, Gamma }
impl Mode {
    pub const ALL: [Mode; 3] = [Mode::Alpha, Mode::Beta, Mode::Beta];
}
";
        assert_eq!(codes_at(src), vec![(3, "E003")]);
    }

    #[test]
    fn e003_silent_when_in_sync_or_differently_named() {
        let src = "\
enum Mode { Alpha, Beta }
impl Mode {
    pub const ALL: [Mode; 2] = [Mode::Alpha, Mode::Beta];
}
const MATRIX: [Mode; 1] = [Mode::Alpha];
";
        assert!(codes_at(src).is_empty());
    }
}
