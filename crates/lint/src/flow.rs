//! Intraprocedural flow rules: lock-protocol pairing (L) and
//! determinism dataflow (R).
//!
//! # L-rules — lock acquire/release pairing
//!
//! Scope: `crates/core` and `crates/lockmgr` library code. The engine's
//! own protocol is event-driven — `decide()` acquires, `complete()` /
//! `abort()` release, in separate handlers — so whole-program pairing is
//! out of reach for a static checker. What *is* checkable, and is where
//! the DGCC/incremental-2PL work will introduce bugs, is scope-local
//! pairing: when one function both acquires and releases, every exit
//! between the acquire and the (textually later) release must not
//! escape with the lock still held.
//!
//! * **L001** — a `return` / `?` escapes between an acquire-family call
//!   (`acquire`, `try_acquire`) and a later release-family call
//!   (`release`, `release_all`, `cancel`, or any function the
//!   call-graph closure says may release). Panic exits are exempt:
//!   a panicking simulation run is already fatal, poisoning is handled
//!   at the sweep boundary.
//! * **L002** — the result of an acquire-family call is discarded
//!   (`let _ = t.try_acquire(..)` or a bare `t.acquire(..);`
//!   statement). The grant/queue decision (or the guard object) is
//!   lost, so the caller can neither pair the release nor observe a
//!   denial.
//!
//! The held-state interpreter is conservative: branches merge with OR
//! (held on *any* path counts as held), loops are evaluated once, and a
//! release anywhere in a call chain credits the whole chain.
//!
//! # R-rules — determinism dataflow
//!
//! Scope: `crates/core` and `crates/workload` library code. Bit-identical
//! goldens across `--jobs` counts and comparable draw sequences across
//! conflict models both die the same way: an RNG draw that only happens
//! under a branch whose condition depends on the wrong thing. The check
//! is intraprocedural on purpose — the engine legitimately *routes* to
//! draw-bearing code from model-dependent decisions (a granted
//! transaction starts its subtransactions, which draw service times);
//! what it must never do is place the draw itself under the branch.
//!
//! * **R001** — an RNG draw under a branch whose condition depends on
//!   pool/job configuration (`jobs`, `njobs`, `WorkerPool`,
//!   `available_parallelism`, the `LOCKGRAN_JOBS` env var). Results
//!   would vary with `--jobs`.
//! * **R002** — an RNG draw from a *shared* stream (a named
//!   `*_rng` stream other than the conflict stream) under a branch
//!   whose condition depends on a concurrency-control value
//!   (`ConflictDecision`, `ConflictMode`, `Granted`/`BlockedBy`,
//!   escalation/hierarchy configuration). Draw order would diverge
//!   across conflict models, which is exactly the bug class that forces
//!   RNG re-pins. Draws through a plain `rng` parameter are not
//!   flagged — the *caller* picked the stream, and model-owned streams
//!   are allowed to depend on the model.
//!
//! Taint propagates through `let` bindings to a fixpoint, so
//! `let decision = self.conflict.try_acquire(..); match decision { .. }`
//! taints the match arms even though the condition names no seed
//! directly.

use std::collections::BTreeMap;

use crate::lexer::TokenKind;
use crate::parse::{visit_fns, Block, EventKind, FnItem, Run, Stmt, TokRange};
use crate::symbols::SymbolTable;
use crate::{emit, Diagnostic, FileAnalysis, Rule};

/// Identifiers whose presence in a branch condition marks it as
/// depending on the concurrency-control model.
const CC_SEEDS: [&str; 10] = [
    "ConflictDecision",
    "ConflictMode",
    "Granted",
    "BlockedBy",
    "conflict",
    "escalation",
    "escalation_threshold",
    "hierarchical",
    "hierarchy",
    "cc_stats",
];

/// Identifiers whose presence in a branch condition marks it as
/// depending on pool/job configuration.
const POOL_SEEDS: [&str; 5] = [
    "jobs",
    "njobs",
    "available_parallelism",
    "WorkerPool",
    "pool",
];

/// `SimRng` draw methods (and the engine's draw-consuming entry points).
const DRAW_FAMILY: [&str; 10] = [
    "next_u64",
    "uniform01",
    "uniform_inclusive",
    "bernoulli",
    "sample_distinct",
    "sample",
    "sample_into",
    "draw",
    "next_spec_into",
    "register_access",
];

/// Taint kind bit: concurrency-control dependence.
const CC: u8 = 1;
/// Taint kind bit: pool/job-configuration dependence.
const POOL: u8 = 2;

/// Is this function's body inside a test region?
fn fn_in_test(fa: &FileAnalysis, f: &FnItem) -> bool {
    fa.tokens.get(f.span.0).is_some_and(|t| t.in_test)
}

/// Apply `f` to every opaque run in the block tree.
fn for_each_run<'a>(block: &'a Block, f: &mut dyn FnMut(&'a Run)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Run(r) => f(r),
            Stmt::If { then_b, else_b, .. } => {
                for_each_run(then_b, f);
                if let Some(e) = else_b {
                    for_each_run(e, f);
                }
            }
            Stmt::Match { arms, .. } => {
                for a in arms {
                    for_each_run(&a.body, f);
                }
            }
            Stmt::Loop { body, .. } => for_each_run(body, f),
            Stmt::Block(b) => for_each_run(b, f),
        }
    }
}

// ----- L-rules -----

/// Run L001/L002 over every non-test function in a core/lockmgr file.
pub fn check_lock_protocol(fa: &FileAnalysis, table: &SymbolTable, out: &mut Vec<Diagnostic>) {
    if !(fa.rel.starts_with("crates/core/") || fa.rel.starts_with("crates/lockmgr/")) {
        return;
    }
    visit_fns(&fa.ast.items, &mut |f, _| {
        let Some(body) = &f.body else { return };
        if fn_in_test(fa, f) {
            return;
        }
        check_discarded_acquires(fa, body, out);
        check_pairing(fa, table, f, body, out);
    });
}

/// L002: an acquire whose result is dropped on the floor.
fn check_discarded_acquires(fa: &FileAnalysis, body: &Block, out: &mut Vec<Diagnostic>) {
    for_each_run(body, &mut |r| {
        if !r.discards_result {
            return;
        }
        for e in &r.events {
            if let EventKind::Call { name, .. } = &e.kind {
                if SymbolTable::is_acquire_call(name) {
                    emit(
                        fa,
                        out,
                        Rule::L002,
                        e.line,
                        e.col,
                        format!(
                            "result of `{name}` is discarded; the grant/queue \
                             decision is lost, so the lock can be neither \
                             released nor observed as denied — bind and handle \
                             it"
                        ),
                    );
                }
            }
        }
    });
}

/// L001 driver: gate to functions that both acquire and release, then
/// interpret the body with a held-lock bit.
fn check_pairing(
    fa: &FileAnalysis,
    table: &SymbolTable,
    f: &FnItem,
    body: &Block,
    out: &mut Vec<Diagnostic>,
) {
    let mut has_acquire = false;
    let mut release_lines: Vec<u32> = Vec::new();
    for_each_run(body, &mut |r| {
        for e in &r.events {
            if let EventKind::Call { name, .. } = &e.kind {
                if SymbolTable::is_acquire_call(name) {
                    has_acquire = true;
                } else if table.is_release_call(name) {
                    release_lines.push(e.line);
                }
            }
        }
    });
    if !has_acquire || release_lines.is_empty() {
        return;
    }
    let mut sim = LockSim {
        fa,
        table,
        fn_name: &f.name,
        release_lines,
        out,
    };
    sim.walk_block(body, false);
}

/// Result of interpreting one block: whether the lock may be held on
/// fall-through, and whether every path through the block exits the
/// function.
struct BlockOut {
    held: bool,
    diverged: bool,
}

struct LockSim<'a> {
    fa: &'a FileAnalysis,
    table: &'a SymbolTable,
    fn_name: &'a str,
    release_lines: Vec<u32>,
    out: &'a mut Vec<Diagnostic>,
}

impl LockSim<'_> {
    fn later_release(&self, line: u32) -> bool {
        self.release_lines.iter().any(|&l| l > line)
    }

    fn flag(&mut self, line: u32, col: u32, what: &str) {
        emit(
            self.fa,
            self.out,
            Rule::L001,
            line,
            col,
            format!(
                "{what} escapes `{}` while a lock may still be held: the \
                 release below this exit is skipped on this path — release \
                 (or cancel) before exiting",
                self.fn_name
            ),
        );
    }

    fn walk_block(&mut self, block: &Block, held0: bool) -> BlockOut {
        let mut held = held0;
        for stmt in &block.stmts {
            match stmt {
                Stmt::Run(r) => match self.walk_run(r, held) {
                    Some(h) => held = h,
                    None => {
                        return BlockOut {
                            held: false,
                            diverged: true,
                        }
                    }
                },
                Stmt::If { then_b, else_b, .. } => {
                    let t = self.walk_block(then_b, held);
                    let e = match else_b {
                        Some(eb) => self.walk_block(eb, held),
                        None => BlockOut {
                            held,
                            diverged: false,
                        },
                    };
                    if t.diverged && e.diverged {
                        return BlockOut {
                            held: false,
                            diverged: true,
                        };
                    }
                    held = (!t.diverged && t.held) || (!e.diverged && e.held);
                }
                Stmt::Match { arms, .. } => {
                    if arms.is_empty() {
                        continue;
                    }
                    let outs: Vec<BlockOut> = arms
                        .iter()
                        .map(|a| self.walk_block(&a.body, held))
                        .collect();
                    if outs.iter().all(|o| o.diverged) {
                        return BlockOut {
                            held: false,
                            diverged: true,
                        };
                    }
                    held = outs.iter().filter(|o| !o.diverged).any(|o| o.held);
                }
                Stmt::Loop { body, .. } => {
                    // Body may run zero or more times; one evaluation with
                    // an OR-merge against the entry state is the
                    // conservative fixed point for a boolean lattice.
                    let b = self.walk_block(body, held);
                    if !b.diverged {
                        held = held || b.held;
                    }
                }
                Stmt::Block(inner) => {
                    let o = self.walk_block(inner, held);
                    if o.diverged {
                        return BlockOut {
                            held: false,
                            diverged: true,
                        };
                    }
                    held = o.held;
                }
            }
        }
        BlockOut {
            held,
            diverged: false,
        }
    }

    /// Interpret one run; `None` means every path through it exits.
    fn walk_run(&mut self, r: &Run, held0: bool) -> Option<bool> {
        let mut held = held0;
        let mut acquired_in_run = false;
        for e in &r.events {
            match &e.kind {
                EventKind::Call { name, .. } => {
                    if SymbolTable::is_acquire_call(name) {
                        held = true;
                        acquired_in_run = true;
                    } else if self.table.is_release_call(name) {
                        held = false;
                    }
                }
                EventKind::Try => {
                    // A `?` directly on the acquire expression propagates
                    // the *failure to acquire* — nothing is held on that
                    // path — so only a `?` in a later statement counts.
                    if held && !acquired_in_run && self.later_release(e.line) {
                        self.flag(e.line, e.col, "`?`");
                    }
                }
                EventKind::Return { conditional } => {
                    if held && self.later_release(e.line) {
                        self.flag(e.line, e.col, "`return`");
                    }
                    if !conditional {
                        return None;
                    }
                }
                EventKind::Panic => return None, // exempt exit
                EventKind::Break | EventKind::Continue => {}
            }
        }
        Some(held)
    }
}

// ----- R-rules -----

/// Run R001/R002 over every non-test function in a core/workload file.
pub fn check_determinism_flow(fa: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    if !(fa.rel.starts_with("crates/core/") || fa.rel.starts_with("crates/workload/")) {
        return;
    }
    visit_fns(&fa.ast.items, &mut |f, _| {
        let Some(body) = &f.body else { return };
        if fn_in_test(fa, f) {
            return;
        }
        let bindings = tainted_bindings(fa, body);
        walk_taint(fa, body, &bindings, 0, out);
    });
}

/// Scan a token range for taint: seed identifiers, tainted bindings,
/// and the `LOCKGRAN_JOBS` env var inside string literals.
fn scan_taint(fa: &FileAnalysis, range: TokRange, bindings: &BTreeMap<String, u8>) -> u8 {
    let mut mask = 0u8;
    let hi = range.1.min(fa.tokens.len());
    for t in &fa.tokens[range.0.min(hi)..hi] {
        match t.kind {
            TokenKind::Ident => {
                let s = t.text(&fa.src);
                if CC_SEEDS.contains(&s) {
                    mask |= CC;
                }
                if POOL_SEEDS.contains(&s) {
                    mask |= POOL;
                }
                if let Some(&b) = bindings.get(s) {
                    mask |= b;
                }
            }
            TokenKind::Str if t.text(&fa.src).contains("LOCKGRAN_JOBS") => {
                mask |= POOL;
            }
            _ => {}
        }
    }
    mask
}

/// Propagate taint through `let` bindings to a fixpoint.
fn tainted_bindings(fa: &FileAnalysis, body: &Block) -> BTreeMap<String, u8> {
    let mut runs: Vec<&Run> = Vec::new();
    for_each_run(body, &mut |r| {
        if !r.let_binds.is_empty() && r.let_init.is_some() {
            runs.push(r);
        }
    });
    let mut bindings: BTreeMap<String, u8> = BTreeMap::new();
    // Bindings are usually defined before use, so this converges in one
    // or two rounds; the cap guards pathological cycles.
    for _ in 0..8 {
        let mut changed = false;
        for r in &runs {
            let init = r.let_init.unwrap_or(r.span);
            let mask = scan_taint(fa, init, &bindings);
            if mask == 0 {
                continue;
            }
            for b in &r.let_binds {
                let entry = bindings.entry(b.clone()).or_insert(0);
                if *entry | mask != *entry {
                    *entry |= mask;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    bindings
}

/// Is this receiver an identifiable shared (non-conflict) RNG stream?
/// A plain `rng` parameter stays unflagged — the caller chose the
/// stream, and model-owned streams may depend on the model.
fn shared_stream(recv: &Option<String>) -> bool {
    match recv {
        Some(r) => r != "rng" && r.contains("rng") && !r.contains("conflict"),
        None => false,
    }
}

/// Walk the block tree carrying the inherited taint mask; flag draws
/// inside tainted regions.
fn walk_taint(
    fa: &FileAnalysis,
    block: &Block,
    bindings: &BTreeMap<String, u8>,
    inherited: u8,
    out: &mut Vec<Diagnostic>,
) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::If {
                cond,
                then_b,
                else_b,
            } => {
                let mask = inherited | scan_taint(fa, *cond, bindings);
                walk_taint(fa, then_b, bindings, mask, out);
                if let Some(e) = else_b {
                    walk_taint(fa, e, bindings, mask, out);
                }
            }
            Stmt::Match {
                scrutinee, arms, ..
            } => {
                let mask = inherited | scan_taint(fa, *scrutinee, bindings);
                for a in arms {
                    walk_taint(fa, &a.body, bindings, mask, out);
                }
            }
            Stmt::Loop { cond, body } => {
                let mask = inherited
                    | cond
                        .map(|c| scan_taint(fa, c, bindings))
                        .unwrap_or_default();
                walk_taint(fa, body, bindings, mask, out);
            }
            Stmt::Block(b) => walk_taint(fa, b, bindings, inherited, out),
            Stmt::Run(r) => {
                if inherited == 0 {
                    continue;
                }
                for e in &r.events {
                    let EventKind::Call { recv, name, .. } = &e.kind else {
                        continue;
                    };
                    if !DRAW_FAMILY.contains(&name.as_str()) {
                        continue;
                    }
                    if inherited & POOL != 0 {
                        emit(
                            fa,
                            out,
                            Rule::R001,
                            e.line,
                            e.col,
                            format!(
                                "RNG draw `{name}` is reachable only under a \
                                 branch that depends on pool/job configuration; \
                                 results would vary with `--jobs` — hoist the \
                                 draw out of the branch or re-pin its stream"
                            ),
                        );
                    } else if inherited & CC != 0 && shared_stream(recv) {
                        emit(
                            fa,
                            out,
                            Rule::R002,
                            e.line,
                            e.col,
                            format!(
                                "RNG draw `{name}` on shared stream `{}` under a \
                                 branch that depends on the concurrency-control \
                                 model; draw order would diverge across conflict \
                                 models — hoist the draw or give the model its \
                                 own stream",
                                recv.as_deref().unwrap_or("?")
                            ),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{lint_rust_source_as, Scope};

    fn codes_at(path: &str, src: &str) -> Vec<(u32, &'static str)> {
        lint_rust_source_as(path, src, Scope::Library)
            .iter()
            .map(|d| (d.line, d.rule.code()))
            .collect()
    }

    #[test]
    fn l001_flags_early_return_and_try_between_acquire_and_release() {
        let src = "\
fn locked_step(t: &mut Table, g: u64) -> Result<u64, Err> {
    let d = t.try_acquire(g)?;
    let v = compute(d)?;
    if v == 0 {
        return Err(Err::Zero);
    }
    t.release(g);
    Ok(v)
}
";
        let diags = codes_at("crates/lockmgr/src/f.rs", src);
        assert_eq!(diags, vec![(3, "L001"), (5, "L001")]);
    }

    #[test]
    fn l001_silent_when_released_before_exit_or_on_panic_exit() {
        let src = "\
fn ok_step(t: &mut Table, g: u64) -> Result<u64, Err> {
    let d = t.try_acquire(g)?;
    if bad(d) {
        t.cancel(g);
        return Err(Err::Bad);
    }
    if worse(d) {
        panic!(\"corrupt table\");
    }
    t.release(g);
    Ok(d)
}
";
        assert!(codes_at("crates/lockmgr/src/f.rs", src).is_empty());
    }

    #[test]
    fn l001_credits_release_through_the_call_graph() {
        let src = "\
fn teardown(t: &mut Table, g: u64) {
    t.release(g);
}
fn step(t: &mut Table, g: u64) -> Result<(), Err> {
    let d = t.try_acquire(g)?;
    check(d)?;
    teardown(t, g);
    Ok(())
}
";
        // The `?` at line 6 escapes before `teardown`, which the call
        // graph knows releases — so it is still a leak.
        assert_eq!(codes_at("crates/core/src/f.rs", src), vec![(6, "L001")]);
    }

    #[test]
    fn l001_out_of_scope_crates_are_ignored() {
        let src = "\
fn f(t: &mut T) -> Result<(), E> {
    let d = t.try_acquire(1)?;
    oops()?;
    t.release(1);
    Ok(())
}
";
        assert!(codes_at("crates/sim/src/f.rs", src).is_empty());
        assert!(codes_at("crates/experiments/src/f.rs", src).is_empty());
    }

    #[test]
    fn l002_flags_discarded_acquires() {
        let src = "\
fn f(t: &mut T) {
    let _ = t.try_acquire(1);
    t.acquire(2);
    let d = t.try_acquire(3);
    handle(d);
}
";
        assert_eq!(
            codes_at("crates/lockmgr/src/f.rs", src),
            vec![(2, "L002"), (3, "L002")]
        );
    }

    #[test]
    fn r002_flags_shared_stream_draw_under_cc_branch() {
        let src = "\
fn f(&mut self) {
    let decision = self.conflict.try_acquire(1, 2, &g, &mut self.conflict_rng);
    match decision {
        ConflictDecision::Granted => {
            let dt = self.service_rng.uniform01();
            self.schedule(dt);
        }
        ConflictDecision::BlockedBy(t) => self.block(t),
    }
}
";
        assert_eq!(codes_at("crates/core/src/f.rs", src), vec![(5, "R002")]);
    }

    #[test]
    fn r002_allows_conflict_stream_and_plain_rng_params() {
        let src = "\
fn f(&mut self, rng: &mut SimRng) {
    if self.escalation_threshold > 0 {
        let x = self.conflict_rng.bernoulli(0.5);
        let y = rng.uniform01();
        use_both(x, y);
    }
}
";
        assert!(codes_at("crates/core/src/f.rs", src).is_empty());
    }

    #[test]
    fn r001_flags_draw_under_jobs_branch() {
        let src = "\
fn f(&mut self) {
    if self.jobs > 1 {
        let x = self.service_rng.next_u64();
        seed(x);
    }
}
";
        assert_eq!(codes_at("crates/core/src/f.rs", src), vec![(3, "R001")]);
    }

    #[test]
    fn r_rules_taint_flows_through_bindings() {
        let src = "\
fn f(&mut self) {
    let chosen = pick(self.conflict.stats());
    let derived = chosen + 1;
    if derived > 3 {
        let x = self.access_rng.uniform_inclusive(0, 9);
        touch(x);
    }
}
";
        assert_eq!(codes_at("crates/core/src/f.rs", src), vec![(5, "R002")]);
    }

    #[test]
    fn r_rules_unconditional_draws_are_fine() {
        let src = "\
fn f(&mut self) {
    let x = self.service_rng.uniform01();
    if self.conflict_mode_is_hierarchical() {
        self.route(x);
    }
}
";
        // The draw happens before the branch; routing on CC state is fine.
        assert!(codes_at("crates/core/src/f.rs", src).is_empty());
    }
}
