//! Test-region detection.
//!
//! Several rules (P001, D003) apply only to *library* code: panics and
//! exact float comparisons are standard practice inside tests. This pass
//! walks the token stream, finds items gated by `#[cfg(test)]` /
//! `#[test]` / `#[bench]` attributes, and marks every token inside their
//! bodies as `in_test`. Whole files under `tests/`, `benches/` or
//! `examples/` directories are classified as test code by the walker and
//! never reach this pass with library scope.

use crate::lexer::{Token, TokenKind};

/// Mark tokens inside test-gated item bodies.
pub fn mark_test_regions(tokens: &mut [Token], src: &str) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct(src, '#') && !tokens[i].in_test {
            // Outer attribute `#[...]`; inner attributes (`#![...]`) are
            // not item gates in this codebase and are skipped as plain
            // tokens.
            if let Some((attr_end, gates_test)) = parse_attribute(tokens, src, i) {
                if gates_test {
                    mark_item_body(tokens, src, attr_end);
                }
                i = attr_end;
                continue;
            }
        }
        i += 1;
    }
}

/// Parse the attribute starting at `tokens[i]` (a `#`). Returns the index
/// one past the closing `]` and whether the attribute gates test code.
fn parse_attribute(tokens: &[Token], src: &str, i: usize) -> Option<(usize, bool)> {
    let mut j = i + 1;
    if tokens.get(j)?.is_punct(src, '!') {
        return None; // inner attribute
    }
    if !tokens.get(j)?.is_punct(src, '[') {
        return None;
    }
    j += 1;
    let mut depth = 1usize;
    let mut idents: Vec<&str> = Vec::new();
    while depth > 0 {
        let t = tokens.get(j)?;
        if t.is_punct(src, '[') {
            depth += 1;
        } else if t.is_punct(src, ']') {
            depth -= 1;
        } else if t.kind == TokenKind::Ident {
            idents.push(t.text(src));
        }
        j += 1;
    }
    // `#[test]`, `#[cfg(test)]`, `#[bench]` gate test code. A negated
    // `#[cfg(not(test))]` does not, despite mentioning `test`.
    let negated = idents.contains(&"not");
    let gates = !negated
        && match idents.as_slice() {
            ["cfg", rest @ ..] => rest.contains(&"test"),
            other => matches!(other.last(), Some(&"test" | &"bench")),
        };
    Some((j, gates))
}

/// From the first token after an attribute, skip any further attributes
/// and the item header, then mark the `{ … }` body (if any) as test code.
fn mark_item_body(tokens: &mut [Token], src: &str, mut i: usize) {
    // Skip stacked attributes (e.g. `#[test]` + `#[ignore]`).
    while i < tokens.len() && tokens[i].is_punct(src, '#') {
        match parse_attribute(tokens, src, i) {
            Some((end, _)) => i = end,
            None => break,
        }
    }
    // Scan the item header for its body `{` at bracket depth 0; a `;`
    // first means a body-less item (`mod tests;`, `use …;`).
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut angle_guard = 0i32; // best-effort `<…>` tracking for generics
    let body_start = loop {
        let Some(t) = tokens.get(i) else { return };
        if t.kind == TokenKind::Punct {
            match t.text(src).as_bytes().first() {
                Some(b'(') => paren += 1,
                Some(b')') => paren -= 1,
                Some(b'[') => bracket += 1,
                Some(b']') => bracket -= 1,
                Some(b'<') => angle_guard += 1,
                Some(b'>') => angle_guard = (angle_guard - 1).max(0),
                Some(b';') if paren == 0 && bracket == 0 => return,
                Some(b'{') if paren == 0 && bracket == 0 => break i,
                _ => {}
            }
        }
        i += 1;
    };
    let _ = angle_guard;
    // Mark to the matching `}`.
    let mut depth = 0i32;
    for t in tokens[body_start..].iter_mut() {
        if t.kind == TokenKind::Punct {
            match t.text(src).as_bytes().first() {
                Some(b'{') => depth += 1,
                Some(b'}') => depth -= 1,
                _ => {}
            }
        }
        t.in_test = true;
        if depth == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn test_idents(src: &str) -> Vec<String> {
        let mut out = lex(src);
        mark_test_regions(&mut out.tokens, src);
        out.tokens
            .iter()
            .filter(|t| t.in_test && t.kind == TokenKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn helper() {}\n}";
        let marked = test_idents(src);
        assert!(marked.contains(&"helper".to_string()));
        assert!(!marked.contains(&"lib".to_string()));
    }

    #[test]
    fn test_fn_is_marked() {
        let src = "#[test]\nfn check() { body(); }\nfn lib() { outside(); }";
        let marked = test_idents(src);
        assert!(marked.contains(&"body".to_string()));
        assert!(!marked.contains(&"outside".to_string()));
    }

    #[test]
    fn stacked_attributes() {
        let src = "#[test]\n#[ignore]\nfn check() { inner(); }";
        assert!(test_idents(src).contains(&"inner".to_string()));
    }

    #[test]
    fn cfg_not_test_is_library_code() {
        let src = "#[cfg(not(test))]\nfn lib() { body(); }";
        assert!(test_idents(src).is_empty());
    }

    #[test]
    fn derive_attribute_does_not_gate() {
        let src = "#[derive(Debug)]\nstruct S { x: u32 }";
        assert!(test_idents(src).is_empty());
    }

    #[test]
    fn fn_with_brace_in_signature_generics() {
        // `(` depth guards against misreading closure braces in headers.
        let src = "#[test]\nfn check(f: impl Fn(u32) -> u32) { inner(); }";
        assert!(test_idents(src).contains(&"inner".to_string()));
    }
}
