//! The workspace symbol table.
//!
//! Built in a first pass over every parsed file, consumed by the rule
//! layers in a second pass. It resolves exactly three things the flow
//! and exhaustiveness rules need:
//!
//! * every enum definition and its variant list (E-rules);
//! * which enums are marked `lint:exhaustive` (E001);
//! * a conservative may-release closure over the call graph: a function
//!   *may release* a lock if it directly calls one of the release-family
//!   methods (`release` / `release_all` / `cancel`) or calls — by name,
//!   anywhere in the workspace — a function that may. Name-keyed rather
//!   than type-resolved: that over-approximates (two unrelated `close`
//!   methods alias), which for the L-rules errs in the safe direction of
//!   crediting a release rather than inventing a leak.

use std::collections::{BTreeMap, BTreeSet};

use crate::allow::{Marker, MarkerKind};
use crate::parse::{visit_enums, visit_fns, Ast, Block, EventKind, Stmt};

/// Method names that take a lock.
pub const ACQUIRE_FAMILY: [&str; 2] = ["acquire", "try_acquire"];

/// Method names that give a lock back (or abandon the request).
pub const RELEASE_FAMILY: [&str; 3] = ["release", "release_all", "cancel"];

/// Cross-file facts shared by every rule in the second pass.
#[derive(Default)]
pub struct SymbolTable {
    /// Enum name → variant names, in declaration order.
    pub enums: BTreeMap<String, Vec<String>>,
    /// Enums marked `lint:exhaustive`.
    pub exhaustive: BTreeSet<String>,
    /// Function name → names it calls (union over same-named fns).
    calls: BTreeMap<String, BTreeSet<String>>,
    /// Functions that transitively reach a release-family call.
    may_release: BTreeSet<String>,
}

impl SymbolTable {
    /// Fold one parsed file into the table.
    pub fn add_file(&mut self, ast: &Ast, markers: &[Marker]) {
        visit_enums(&ast.items, &mut |e| {
            self.enums.insert(e.name.clone(), e.variants.clone());
        });
        for m in markers {
            if m.kind == MarkerKind::Exhaustive {
                self.exhaustive.insert(m.name.clone());
            }
        }
        visit_fns(&ast.items, &mut |f, _| {
            if let Some(body) = &f.body {
                let mut callees = BTreeSet::new();
                collect_calls(body, &mut callees);
                self.calls
                    .entry(f.name.clone())
                    .or_default()
                    .extend(callees);
            }
        });
    }

    /// Close the may-release relation over the call graph. Call once,
    /// after every file has been added.
    pub fn finalize(&mut self) {
        let mut frontier: Vec<String> = self
            .calls
            .iter()
            .filter(|(_, callees)| RELEASE_FAMILY.iter().any(|r| callees.contains(*r)))
            .map(|(name, _)| name.clone())
            .collect();
        while let Some(name) = frontier.pop() {
            if !self.may_release.insert(name.clone()) {
                continue;
            }
            for (caller, callees) in &self.calls {
                if callees.contains(&name) && !self.may_release.contains(caller) {
                    frontier.push(caller.clone());
                }
            }
        }
    }

    /// Does a call to `name` (possibly transitively) release a lock?
    pub fn is_release_call(&self, name: &str) -> bool {
        RELEASE_FAMILY.contains(&name) || self.may_release.contains(name)
    }

    /// Is `name` a direct lock acquisition?
    pub fn is_acquire_call(name: &str) -> bool {
        ACQUIRE_FAMILY.contains(&name)
    }
}

/// Collect the names called anywhere in a block (all branches).
pub fn collect_calls(block: &Block, out: &mut BTreeSet<String>) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Run(r) => {
                for e in &r.events {
                    if let EventKind::Call { name, .. } = &e.kind {
                        out.insert(name.clone());
                    }
                }
            }
            Stmt::If { then_b, else_b, .. } => {
                collect_calls(then_b, out);
                if let Some(e) = else_b {
                    collect_calls(e, out);
                }
            }
            Stmt::Match { arms, .. } => {
                for a in arms {
                    collect_calls(&a.body, out);
                }
            }
            Stmt::Loop { body, .. } => collect_calls(body, out),
            Stmt::Block(b) => collect_calls(b, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn table_for(src: &str) -> SymbolTable {
        let lexed = lex(src);
        let ast = parse(&lexed.tokens, src);
        let mut t = SymbolTable::default();
        t.add_file(&ast, &lexed.markers);
        t.finalize();
        t
    }

    #[test]
    fn enums_and_markers_resolve() {
        let src = "
            // lint:exhaustive(Mode)
            enum Mode { A, B }
            enum Other { X }
        ";
        let t = table_for(src);
        assert_eq!(t.enums["Mode"], vec!["A", "B"]);
        assert_eq!(t.enums["Other"], vec!["X"]);
        assert!(t.exhaustive.contains("Mode"));
        assert!(!t.exhaustive.contains("Other"));
    }

    #[test]
    fn may_release_closes_over_calls() {
        let src = "
            fn direct(t: &mut T) { t.release(); }
            fn indirect(t: &mut T) { direct(t); }
            fn twice(t: &mut T) { indirect(t); }
            fn unrelated() { compute(); }
        ";
        let t = table_for(src);
        assert!(t.is_release_call("release"));
        assert!(t.is_release_call("direct"));
        assert!(t.is_release_call("indirect"));
        assert!(t.is_release_call("twice"));
        assert!(!t.is_release_call("unrelated"));
        assert!(!t.is_release_call("compute"));
        assert!(SymbolTable::is_acquire_call("try_acquire"));
        assert!(!SymbolTable::is_acquire_call("lock_stats"));
    }
}
