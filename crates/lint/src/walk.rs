//! Workspace file discovery.
//!
//! Walks the workspace root for `.rs` sources and `Cargo.toml` manifests,
//! skipping build output (`target/`), VCS metadata, and the linter's own
//! rule fixtures (which are violations *on purpose*). Files are returned
//! sorted by path so diagnostics come out in a stable order regardless of
//! the host filesystem's directory iteration order — the linter holds
//! itself to the determinism bar it enforces.

use std::fs;
use std::path::{Path, PathBuf};

/// A discovered source file with its workspace-relative display path.
pub struct SourceFile {
    /// Absolute path on disk.
    pub abs: PathBuf,
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
}

/// Recursively collect `.rs` and `Cargo.toml` files under `root`.
pub fn discover(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut out = Vec::new();
    walk_dir(root, root, &mut out)?;
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn walk_dir(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') || name == "fixtures" {
                continue;
            }
            walk_dir(root, &path, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip_prefix {}: {e}", path.display()))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile { abs: path, rel });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovers_this_crate_sorted() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = discover(root).expect("walk own crate");
        let rels: Vec<&str> = files.iter().map(|f| f.rel.as_str()).collect();
        assert!(rels.contains(&"src/walk.rs"));
        assert!(rels.contains(&"Cargo.toml"));
        let mut sorted = rels.clone();
        sorted.sort();
        assert_eq!(rels, sorted, "discovery order must be path-sorted");
        assert!(
            !rels.iter().any(|r| r.contains("fixtures/")),
            "fixtures must be excluded"
        );
    }
}
