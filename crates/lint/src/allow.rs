//! Suppression directives.
//!
//! A diagnostic can be silenced in place with a comment:
//!
//! ```text
//! // lint:allow(P001): poisoning is unrecoverable for a lock table
//! self.shards[idx].lock().expect("shard poisoned")
//! ```
//!
//! The directive names one or more rule codes (comma-separated) and an
//! optional `: reason` tail. It suppresses matching diagnostics on the
//! directive's own line and through the *next line that holds code* — so
//! it works as a trailing comment, on the line directly above the
//! flagged expression, and when the justification wraps across several
//! comment lines before the code resumes.
//!
//! `lint:allow-file(<rule>)` suppresses a rule for the whole file; it is
//! intended for files whose purpose conflicts with a rule wholesale
//! (none are needed in-tree today, but fixtures exercise it).

/// One parsed `lint:allow` / `lint:allow-file` directive.
#[derive(Clone, Debug)]
pub struct AllowDirective {
    /// Rule codes named in the directive (uppercased).
    pub rules: Vec<String>,
    /// 1-based line the directive's comment starts on.
    pub line: u32,
    /// Last line the directive covers (inclusive). Initialized to
    /// `line + 1`; [`AllowSet::extend_to_code`] widens it to the next
    /// line holding a token, so a justification wrapped over several
    /// comment lines still reaches the code below it.
    pub until: u32,
    /// True for `lint:allow-file`.
    pub file_wide: bool,
}

impl AllowDirective {
    /// Scan one comment's text (including its `//` / `/*` markers) for
    /// directives and append them to `out`. `line` is the line the
    /// comment starts on.
    pub fn scan(comment: &str, line: u32, out: &mut Vec<AllowDirective>) {
        let mut rest = comment;
        while let Some(at) = rest.find("lint:allow") {
            let after = &rest[at + "lint:allow".len()..];
            let (file_wide, after) = match after.strip_prefix("-file") {
                Some(a) => (true, a),
                None => (false, after),
            };
            let Some(args) = after.strip_prefix('(') else {
                rest = &rest[at + 1..];
                continue;
            };
            let Some(close) = args.find(')') else {
                rest = &rest[at + 1..];
                continue;
            };
            let rules: Vec<String> = args[..close]
                .split(',')
                .map(|r| r.trim().to_ascii_uppercase())
                .filter(|r| !r.is_empty())
                .collect();
            if !rules.is_empty() {
                out.push(AllowDirective {
                    rules,
                    line,
                    until: line + 1,
                    file_wide,
                });
            }
            rest = &rest[at + "lint:allow".len()..];
        }
    }
}

/// The set of directives for one file, indexed for fast suppression
/// checks.
pub struct AllowSet {
    directives: Vec<AllowDirective>,
}

impl AllowSet {
    /// Build a set from the directives collected while lexing one file.
    pub fn new(directives: Vec<AllowDirective>) -> Self {
        AllowSet { directives }
    }

    /// Widen each directive's window to the first line at or past
    /// `line + 1` that holds a token, so comment-only lines between the
    /// directive and the code it vouches for don't break the link.
    /// `token_lines` must be ascending (lex order guarantees this).
    pub fn extend_to_code(&mut self, token_lines: &[u32]) {
        for d in &mut self.directives {
            if let Some(&next) = token_lines.iter().find(|&&l| l > d.line) {
                d.until = d.until.max(next);
            }
        }
    }

    /// Is `rule` suppressed at `line`?
    ///
    /// A line-scoped directive covers its own line through `until`
    /// (the next code line); a file-wide directive covers everything.
    pub fn suppresses(&self, rule: &str, line: u32) -> bool {
        self.directives.iter().any(|d| {
            d.rules.iter().any(|r| r == rule)
                && (d.file_wide || (d.line <= line && line <= d.until))
        })
    }

    /// Directives that never suppressed anything could be reported some
    /// day; for now expose the raw list for tests.
    pub fn directives(&self) -> &[AllowDirective] {
        &self.directives
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_one(comment: &str) -> Vec<AllowDirective> {
        let mut out = Vec::new();
        AllowDirective::scan(comment, 7, &mut out);
        out
    }

    #[test]
    fn parses_single_rule_with_reason() {
        let ds = scan_one("// lint:allow(P001): justified");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rules, vec!["P001"]);
        assert!(!ds[0].file_wide);
    }

    #[test]
    fn parses_multiple_rules() {
        let ds = scan_one("// lint:allow(d001, D003)");
        assert_eq!(ds[0].rules, vec!["D001", "D003"]);
    }

    #[test]
    fn parses_file_wide() {
        let ds = scan_one("// lint:allow-file(Z001): fixture");
        assert!(ds[0].file_wide);
        assert_eq!(ds[0].rules, vec!["Z001"]);
    }

    #[test]
    fn ignores_malformed() {
        assert!(scan_one("// lint:allow no parens").is_empty());
        assert!(scan_one("// lint:allow()").is_empty());
    }

    #[test]
    fn suppression_covers_directive_line_and_next() {
        let set = AllowSet::new(scan_one("// lint:allow(P001)"));
        assert!(set.suppresses("P001", 7));
        assert!(set.suppresses("P001", 8));
        assert!(!set.suppresses("P001", 9));
        assert!(!set.suppresses("P001", 6));
        assert!(!set.suppresses("D001", 7));
    }

    #[test]
    fn extend_to_code_skips_comment_only_lines() {
        // Directive on line 7, wrapped comment on 8, code resumes on 9.
        let mut set = AllowSet::new(scan_one("// lint:allow(P001): a long\n"));
        set.extend_to_code(&[1, 3, 9, 12]);
        assert!(set.suppresses("P001", 9));
        assert!(!set.suppresses("P001", 10));
        assert!(!set.suppresses("P001", 12));
    }

    #[test]
    fn file_wide_covers_everything() {
        let set = AllowSet::new(scan_one("// lint:allow-file(D001)"));
        assert!(set.suppresses("D001", 1));
        assert!(set.suppresses("D001", 10_000));
        assert!(!set.suppresses("D002", 1));
    }
}
