//! Suppression directives.
//!
//! A diagnostic can be silenced in place with a comment:
//!
//! ```text
//! // lint:allow(P001): poisoning is unrecoverable for a lock table
//! self.shards[idx].lock().expect("shard poisoned")
//! ```
//!
//! The directive names one or more rule codes (comma-separated) and an
//! optional `: reason` tail. It suppresses matching diagnostics on the
//! directive's own line and through the *next line that holds code* — so
//! it works as a trailing comment, on the line directly above the
//! flagged expression, and when the justification wraps across several
//! comment lines before the code resumes.
//!
//! `lint:allow-file(<rule>)` suppresses a rule for the whole file; it is
//! intended for files whose purpose conflicts with a rule wholesale
//! (none are needed in-tree today, but fixtures exercise it).
//!
//! Each directive tracks whether it ever suppressed a diagnostic; a
//! directive that suppressed nothing is itself reported as stale (rule
//! W001), so allows cannot silently outlive the code they vouched for.
//!
//! Two *marker* directives feed the exhaustiveness rules rather than
//! suppressing anything: `lint:exhaustive(Enum)` marks an enum whose
//! matches must not hide variants behind `_` (rule E001), and
//! `lint:covers(Enum)` asserts that the item below the comment mentions
//! every variant of the enum (rule E002) — the drift guard for string
//! matches and CLI usage text that rustc cannot check.

use std::cell::Cell;

use crate::lexer::Token;

/// One parsed `lint:allow` / `lint:allow-file` directive.
#[derive(Clone, Debug)]
pub struct AllowDirective {
    /// Rule codes named in the directive (uppercased).
    pub rules: Vec<String>,
    /// 1-based line the directive's comment starts on.
    pub line: u32,
    /// Last line the directive covers (inclusive). Initialized to
    /// `line + 1`; [`AllowSet::extend_to_code`] widens it to the next
    /// line holding a token, so a justification wrapped over several
    /// comment lines still reaches the code below it.
    pub until: u32,
    /// True for `lint:allow-file`.
    pub file_wide: bool,
    /// Set when the directive suppresses at least one diagnostic; a
    /// directive still unset after all rules ran is stale (W001).
    pub used: Cell<bool>,
}

/// What a [`Marker`] asserts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MarkerKind {
    /// `lint:exhaustive(Enum)`: matches on this enum must not hide
    /// variants behind a `_` arm (rule E001).
    Exhaustive,
    /// `lint:covers(Enum)`: the item below must mention every variant
    /// (rule E002).
    Covers,
}

/// One parsed `lint:exhaustive` / `lint:covers` marker.
#[derive(Clone, Debug)]
pub struct Marker {
    /// The assertion the marker makes.
    pub kind: MarkerKind,
    /// The enum the marker names.
    pub name: String,
    /// 1-based line the marker's comment starts on.
    pub line: u32,
}

impl Marker {
    /// Scan one comment's text for markers and append them to `out`.
    pub fn scan(comment: &str, line: u32, out: &mut Vec<Marker>) {
        for (kw, kind) in [
            ("lint:exhaustive", MarkerKind::Exhaustive),
            ("lint:covers", MarkerKind::Covers),
        ] {
            let mut rest = comment;
            while let Some(at) = rest.find(kw) {
                let after = &rest[at + kw.len()..];
                if let Some(args) = after.strip_prefix('(') {
                    if let Some(close) = args.find(')') {
                        let name = args[..close].trim().to_string();
                        if !name.is_empty() {
                            out.push(Marker { kind, name, line });
                        }
                    }
                }
                rest = &rest[at + kw.len()..];
            }
        }
    }
}

/// The lines holding *code* tokens — tokens that are part of attribute
/// machinery (`#[...]` / `#![...]`, possibly spanning lines) are
/// excluded, so a `lint:allow` above an attribute extends through the
/// attribute to the item it decorates.
pub fn code_token_lines(tokens: &[Token], src: &str) -> Vec<u32> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct(src, '#') {
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.is_punct(src, '!')) {
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| t.is_punct(src, '[')) {
                let mut depth = 0usize;
                while j < tokens.len() {
                    if tokens[j].is_punct(src, '[') {
                        depth += 1;
                    } else if tokens[j].is_punct(src, ']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                i = (j + 1).min(tokens.len());
                continue;
            }
        }
        out.push(tokens[i].line);
        i += 1;
    }
    out
}

impl AllowDirective {
    /// Scan one comment's text (including its `//` / `/*` markers) for
    /// directives and append them to `out`. `line` is the line the
    /// comment starts on.
    pub fn scan(comment: &str, line: u32, out: &mut Vec<AllowDirective>) {
        let mut rest = comment;
        while let Some(at) = rest.find("lint:allow") {
            let after = &rest[at + "lint:allow".len()..];
            let (file_wide, after) = match after.strip_prefix("-file") {
                Some(a) => (true, a),
                None => (false, after),
            };
            let Some(args) = after.strip_prefix('(') else {
                rest = &rest[at + 1..];
                continue;
            };
            let Some(close) = args.find(')') else {
                rest = &rest[at + 1..];
                continue;
            };
            let rules: Vec<String> = args[..close]
                .split(',')
                .map(|r| r.trim().to_ascii_uppercase())
                .filter(|r| !r.is_empty())
                .collect();
            if !rules.is_empty() {
                out.push(AllowDirective {
                    rules,
                    line,
                    until: line + 1,
                    file_wide,
                    used: Cell::new(false),
                });
            }
            rest = &rest[at + "lint:allow".len()..];
        }
    }
}

/// The set of directives for one file, indexed for fast suppression
/// checks.
pub struct AllowSet {
    directives: Vec<AllowDirective>,
}

impl AllowSet {
    /// Build a set from the directives collected while lexing one file.
    pub fn new(directives: Vec<AllowDirective>) -> Self {
        AllowSet { directives }
    }

    /// Widen each directive's window to the first line at or past
    /// `line + 1` that holds a token, so comment-only lines between the
    /// directive and the code it vouches for don't break the link.
    /// `token_lines` must be ascending (lex order guarantees this).
    pub fn extend_to_code(&mut self, token_lines: &[u32]) {
        for d in &mut self.directives {
            if let Some(&next) = token_lines.iter().find(|&&l| l > d.line) {
                d.until = d.until.max(next);
            }
        }
    }

    /// Is `rule` suppressed at `line`?
    ///
    /// A line-scoped directive covers its own line through `until`
    /// (the next code line); a file-wide directive covers everything.
    /// Every directive that matches is marked used, which is what keeps
    /// it off the stale-allow (W001) report.
    pub fn suppresses(&self, rule: &str, line: u32) -> bool {
        let mut hit = false;
        for d in &self.directives {
            if d.rules.iter().any(|r| r == rule)
                && (d.file_wide || (d.line <= line && line <= d.until))
            {
                d.used.set(true);
                hit = true;
            }
        }
        hit
    }

    /// The raw directive list (used by the stale-allow pass and tests).
    pub fn directives(&self) -> &[AllowDirective] {
        &self.directives
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_one(comment: &str) -> Vec<AllowDirective> {
        let mut out = Vec::new();
        AllowDirective::scan(comment, 7, &mut out);
        out
    }

    #[test]
    fn parses_single_rule_with_reason() {
        let ds = scan_one("// lint:allow(P001): justified");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].rules, vec!["P001"]);
        assert!(!ds[0].file_wide);
    }

    #[test]
    fn parses_multiple_rules() {
        let ds = scan_one("// lint:allow(d001, D003)");
        assert_eq!(ds[0].rules, vec!["D001", "D003"]);
    }

    #[test]
    fn parses_file_wide() {
        let ds = scan_one("// lint:allow-file(Z001): fixture");
        assert!(ds[0].file_wide);
        assert_eq!(ds[0].rules, vec!["Z001"]);
    }

    #[test]
    fn ignores_malformed() {
        assert!(scan_one("// lint:allow no parens").is_empty());
        assert!(scan_one("// lint:allow()").is_empty());
    }

    #[test]
    fn suppression_covers_directive_line_and_next() {
        let set = AllowSet::new(scan_one("// lint:allow(P001)"));
        assert!(set.suppresses("P001", 7));
        assert!(set.suppresses("P001", 8));
        assert!(!set.suppresses("P001", 9));
        assert!(!set.suppresses("P001", 6));
        assert!(!set.suppresses("D001", 7));
    }

    #[test]
    fn extend_to_code_skips_comment_only_lines() {
        // Directive on line 7, wrapped comment on 8, code resumes on 9.
        let mut set = AllowSet::new(scan_one("// lint:allow(P001): a long\n"));
        set.extend_to_code(&[1, 3, 9, 12]);
        assert!(set.suppresses("P001", 9));
        assert!(!set.suppresses("P001", 10));
        assert!(!set.suppresses("P001", 12));
    }

    #[test]
    fn file_wide_covers_everything() {
        let set = AllowSet::new(scan_one("// lint:allow-file(D001)"));
        assert!(set.suppresses("D001", 1));
        assert!(set.suppresses("D001", 10_000));
        assert!(!set.suppresses("D002", 1));
    }

    #[test]
    fn suppression_marks_directive_used() {
        let set = AllowSet::new(scan_one("// lint:allow(P001)"));
        assert!(!set.directives()[0].used.get());
        assert!(!set.suppresses("D001", 7)); // wrong rule: not a use
        assert!(!set.directives()[0].used.get());
        assert!(!set.suppresses("P001", 99)); // out of range: not a use
        assert!(!set.directives()[0].used.get());
        assert!(set.suppresses("P001", 8));
        assert!(set.directives()[0].used.get());
    }

    #[test]
    fn markers_are_scanned() {
        let mut out = Vec::new();
        Marker::scan("// lint:exhaustive(Metric)", 3, &mut out);
        Marker::scan("/// lint:covers(ConflictMode): CLI usage", 9, &mut out);
        Marker::scan("// no marker here", 12, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].kind, MarkerKind::Exhaustive);
        assert_eq!(out[0].name, "Metric");
        assert_eq!(out[0].line, 3);
        assert_eq!(out[1].kind, MarkerKind::Covers);
        assert_eq!(out[1].name, "ConflictMode");
    }

    #[test]
    fn code_lines_skip_attribute_machinery() {
        // line 1: #[derive(Debug)]   (attribute only)
        // line 2: struct S;          (code)
        let src = "#[derive(Debug)]\nstruct S;";
        let tokens = crate::lexer::lex(src).tokens;
        let lines = code_token_lines(&tokens, src);
        assert_eq!(lines, vec![2, 2, 2]);
    }

    #[test]
    fn extend_to_code_crosses_attribute_lines() {
        // Directive on line 1, attribute on line 2, code on line 3: the
        // allow must reach the decorated item, not stop at the attribute.
        let src =
            "// lint:allow(P001): wrapped fn is infallible\n#[inline]\nfn f() { o.unwrap(); }";
        let lexed = crate::lexer::lex(src);
        let mut set = AllowSet::new(lexed.allows);
        set.extend_to_code(&code_token_lines(&lexed.tokens, src));
        assert!(set.suppresses("P001", 3), "allow must cover the fn line");
    }
}
