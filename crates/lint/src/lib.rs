//! `lockgran-lint` — determinism & policy static analysis for the
//! lockgran workspace.
//!
//! The paper reproduction stands on bit-for-bit reproducibility: the
//! Table 1 golden snapshot and the determinism tests only mean something
//! if nothing in the simulator can produce run-to-run variation. This
//! crate machine-checks the conventions that guard that property, using
//! its own [Rust lexer](lexer) — no external parser, in keeping with the
//! workspace's zero-dependency policy (which rule Z001 itself enforces).
//!
//! # Rule catalog
//!
//! | Code | Checks for | Scope |
//! |------|------------|-------|
//! | D001 | `HashMap`/`HashSet` (iteration-order nondeterminism) | all but `crates/bench` |
//! | D002 | `std::time::{Instant, SystemTime}` (wall-clock reads) | all but `crates/bench` |
//! | D003 | `==`/`!=` against a float literal | library code |
//! | D004 | raw `thread::spawn` / `mpsc` outside the worker pool | all but `crates/sim/src/pool.rs` |
//! | P001 | `.unwrap()` / `.expect("…")` panics | library code |
//! | P002 | `.remove(0)` front-shift (use `VecDeque::pop_front`) | library code |
//! | Z001 | non-local dependency in a `Cargo.toml` | all manifests |
//! | J001 | `ToJson`/`FromJson` pairs that don't round-trip field names | all `.rs` |
//!
//! "Library code" excludes `tests/`, `benches/`, `examples/` directories
//! and `#[cfg(test)]` / `#[test]` regions, where panics and exact float
//! asserts are idiomatic.
//!
//! # Suppressions
//!
//! ```text
//! // lint:allow(P001): poisoning is unrecoverable for a lock table
//! ```
//!
//! suppresses the named rule(s) on the comment's line and through the
//! next line holding code (so a justification may wrap over several
//! comment lines); `// lint:allow-file(RULE): reason` suppresses for the
//! whole file. The `: reason` tail is not parsed but is the convention —
//! an allow without a justification should not survive review.

#![warn(missing_docs)]

pub mod allow;
pub mod context;
pub mod json_pairs;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod walk;

use std::fmt;
use std::path::Path;

use allow::AllowSet;

/// A rule code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Hash containers with nondeterministic iteration order.
    D001,
    /// Wall-clock reads in simulation code.
    D002,
    /// Exact float comparison against a literal.
    D003,
    /// Raw threading primitives outside the deterministic worker pool.
    D004,
    /// Panicking calls in library code.
    P001,
    /// O(n) front-removal from a `Vec` in library code.
    P002,
    /// External dependency in a manifest.
    Z001,
    /// JSON impl pair that does not round-trip.
    J001,
}

impl Rule {
    /// The stable diagnostic code, as used in `lint:allow(...)`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::D004 => "D004",
            Rule::P001 => "P001",
            Rule::P002 => "P002",
            Rule::Z001 => "Z001",
            Rule::J001 => "J001",
        }
    }

    /// Every rule in the catalog.
    pub const ALL: [Rule; 8] = [
        Rule::D001,
        Rule::D002,
        Rule::D003,
        Rule::D004,
        Rule::P001,
        Rule::P002,
        Rule::Z001,
        Rule::J001,
    ];
}

/// One finding, with a 1-based source position.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Workspace-relative path (display form, `/`-separated).
    pub path: String,
    /// 1-based line of the flagged token.
    pub line: u32,
    /// 1-based column (in characters) of the flagged token.
    pub col: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation, including the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.path,
            self.line,
            self.col,
            self.rule.code(),
            self.message
        )
    }
}

/// How a file's contents should be judged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// Library code: all rules apply; `#[cfg(test)]` regions within it
    /// are exempt from the library-only rules.
    Library,
    /// Dedicated test/bench/example files: determinism rules apply
    /// (a nondeterministic test flakes), panic/float rules do not.
    TestCode,
    /// `crates/bench`: measures wall-clock time by design; only the
    /// JSON pairing rule applies.
    Bench,
}

/// Classify a workspace-relative path. `None` means the file is not
/// linted at all.
pub fn classify(rel: &str) -> Option<Scope> {
    if rel.contains("tests/fixtures/") {
        return None; // rule fixtures are violations on purpose
    }
    if rel.starts_with("crates/bench/") {
        return Some(Scope::Bench);
    }
    let in_test_dir = rel
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples");
    if in_test_dir {
        Some(Scope::TestCode)
    } else {
        Some(Scope::Library)
    }
}

/// Lint one Rust source file. `rel` selects the scope (see [`classify`]).
pub fn lint_rust_source(rel: &str, src: &str) -> Vec<Diagnostic> {
    let Some(scope) = classify(rel) else {
        return Vec::new();
    };
    lint_rust_source_as(rel, src, scope)
}

/// Lint Rust source under an explicit scope (used by fixture tests).
pub fn lint_rust_source_as(rel: &str, src: &str, scope: Scope) -> Vec<Diagnostic> {
    let mut lexed = lexer::lex(src);
    context::mark_test_regions(&mut lexed.tokens, src);
    let mut allows = AllowSet::new(lexed.allows);
    let token_lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    allows.extend_to_code(&token_lines);
    let mut out = Vec::new();
    rules::check_tokens(rel, src, &lexed.tokens, scope, &allows, &mut out);
    json_pairs::check_json_pairs(rel, src, &lexed.tokens, &allows, &mut out);
    out
}

/// Lint one `Cargo.toml`.
pub fn lint_manifest(rel: &str, src: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    manifest::check_manifest(rel, src, &mut out);
    out
}

/// Lint every source file and manifest under `root`. Diagnostics come
/// back sorted by (path, line, col, rule).
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let files = walk::discover(root)?;
    let mut out = Vec::new();
    for file in &files {
        let src = std::fs::read_to_string(&file.abs)
            .map_err(|e| format!("read {}: {e}", file.abs.display()))?;
        if file.rel.ends_with("Cargo.toml") {
            out.extend(lint_manifest(&file.rel, &src));
        } else {
            out.extend(lint_rust_source(&file.rel, &src));
        }
    }
    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(out)
}

/// The number of files [`lint_workspace`] would scan — exposed so the CLI
/// can report coverage alongside the verdict.
pub fn count_scanned(root: &Path) -> Result<usize, String> {
    Ok(walk::discover(root)?.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_scopes() {
        assert_eq!(classify("crates/sim/src/engine.rs"), Some(Scope::Library));
        assert_eq!(
            classify("crates/core/tests/protocol.rs"),
            Some(Scope::TestCode)
        );
        assert_eq!(classify("tests/determinism.rs"), Some(Scope::TestCode));
        assert_eq!(classify("crates/bench/src/lib.rs"), Some(Scope::Bench));
        assert_eq!(classify("crates/lint/tests/fixtures/d001.rs"), None);
    }

    #[test]
    fn rule_codes_are_stable() {
        let codes: Vec<&str> = Rule::ALL.iter().map(|r| r.code()).collect();
        assert_eq!(
            codes,
            ["D001", "D002", "D003", "D004", "P001", "P002", "Z001", "J001"]
        );
    }

    #[test]
    fn diagnostic_display_format() {
        let d = Diagnostic {
            path: "crates/sim/src/engine.rs".into(),
            line: 42,
            col: 7,
            rule: Rule::D001,
            message: "msg".into(),
        };
        assert_eq!(d.to_string(), "crates/sim/src/engine.rs:42:7: D001: msg");
    }
}
