//! `lockgran-lint` — determinism & policy static analysis for the
//! lockgran workspace.
//!
//! The paper reproduction stands on bit-for-bit reproducibility: the
//! Table 1 golden snapshot and the determinism tests only mean something
//! if nothing in the simulator can produce run-to-run variation. This
//! crate machine-checks the conventions that guard that property, using
//! its own [Rust lexer](lexer) and [recursive-descent parser](parse) —
//! no external parser, in keeping with the workspace's zero-dependency
//! policy (which rule Z001 itself enforces).
//!
//! # Architecture
//!
//! The analyzer runs in layers:
//!
//! 1. [`lexer`] — token stream with exact line/column spans; comments are
//!    scanned for suppression directives and markers.
//! 2. [`parse`] — a resolved AST: the item tree (fns, impls, enums,
//!    mods), function bodies as a control-flow tree, and call / exit /
//!    binding events extracted from the opaque statement runs.
//! 3. [`symbols`] — a per-workspace symbol table: enum variant lists,
//!    `lint:exhaustive` marks, and a conservative may-release closure
//!    over the name-keyed call graph.
//! 4. Rules — token rules ([`rules`], [`json_pairs`], [`manifest`]) plus
//!    the AST-level families: lock protocol ([`flow`] L-rules),
//!    determinism dataflow ([`flow`] R-rules), and exhaustiveness drift
//!    ([`enums`] E-rules).
//!
//! # Rule catalog
//!
//! | Code | Checks for | Scope |
//! |------|------------|-------|
//! | D001 | `HashMap`/`HashSet` (iteration-order nondeterminism) | all but `crates/bench` |
//! | D002 | `std::time::{Instant, SystemTime}` (wall-clock reads) | all but `crates/bench` |
//! | D003 | `==`/`!=` against a float literal | library code |
//! | D004 | raw `thread::spawn` / `mpsc` outside the worker pool | all but `crates/sim/src/pool.rs` |
//! | D005 | `BTreeMap`/`BTreeSet` on the lock-manager hot path (use `DetMap`) | lockmgr hot modules |
//! | P001 | `.unwrap()` / `.expect("…")` panics | library code |
//! | P002 | `.remove(0)` front-shift (use `VecDeque::pop_front`) | library code |
//! | Z001 | non-local dependency in a `Cargo.toml` | all manifests |
//! | J001 | `ToJson`/`FromJson` pairs that don't round-trip field names | all `.rs` |
//! | L001 | `return`/`?` escaping between a lock acquire and its release | `core`, `lockmgr` library |
//! | L002 | acquire-family call whose result is discarded | `core`, `lockmgr` library |
//! | R001 | RNG draw under a branch depending on pool/job config | `core`, `workload` library |
//! | R002 | shared-stream RNG draw under a CC-dependent branch | `core`, `workload` library |
//! | E001 | `_` arm hiding variants of a `lint:exhaustive` enum | library code |
//! | E002 | `lint:covers(Enum)` item missing a variant mention | library code |
//! | E003 | `const ALL: [Enum; N]` drifted from the enum definition | library code |
//! | W001 | stale `lint:allow` that no longer suppresses anything | library code |
//!
//! "Library code" excludes `tests/`, `benches/`, `examples/` directories
//! and `#[cfg(test)]` / `#[test]` regions, where panics and exact float
//! asserts are idiomatic.
//!
//! # Suppressions
//!
//! ```text
//! // lint:allow(P001): poisoning is unrecoverable for a lock table
//! ```
//!
//! suppresses the named rule(s) on the comment's line and through the
//! next line holding code (so a justification may wrap over several
//! comment lines); `// lint:allow-file(RULE): reason` suppresses for the
//! whole file. The `: reason` tail is not parsed but is the convention —
//! an allow without a justification should not survive review. A
//! directive that suppresses nothing is itself flagged (W001), so allows
//! cannot outlive the code they vouched for. Doc comments (`///`, `//!`)
//! never register directives — examples in documentation stay examples.
//!
//! Two marker directives feed the E-rules: `lint:exhaustive(Enum)` and
//! `lint:covers(Enum)` (see [`allow`]).

#![warn(missing_docs)]

pub mod allow;
pub mod context;
pub mod enums;
pub mod flow;
pub mod json_pairs;
pub mod lexer;
pub mod manifest;
pub mod parse;
pub mod rules;
pub mod symbols;
pub mod walk;

use std::fmt;
use std::path::Path;

use allow::{AllowSet, Marker};
use lexer::Token;
use parse::Ast;
use symbols::SymbolTable;

/// A rule code.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Hash containers with nondeterministic iteration order.
    D001,
    /// Wall-clock reads in simulation code.
    D002,
    /// Exact float comparison against a literal.
    D003,
    /// Raw threading primitives outside the deterministic worker pool.
    D004,
    /// Ordered maps on the lock-manager hot path (use `DetMap`).
    D005,
    /// Panicking calls in library code.
    P001,
    /// O(n) front-removal from a `Vec` in library code.
    P002,
    /// External dependency in a manifest.
    Z001,
    /// JSON impl pair that does not round-trip.
    J001,
    /// Early exit between a lock acquire and its release.
    L001,
    /// Discarded result of a lock acquisition.
    L002,
    /// RNG draw under a pool/job-configuration-dependent branch.
    R001,
    /// Shared-stream RNG draw under a CC-model-dependent branch.
    R002,
    /// Wildcard arm hiding variants of a `lint:exhaustive` enum.
    E001,
    /// `lint:covers` item that fails to mention every variant.
    E002,
    /// `const ALL` mirror array drifted from its enum.
    E003,
    /// Stale `lint:allow` directive that suppresses nothing.
    W001,
}

impl Rule {
    /// The stable diagnostic code, as used in `lint:allow(...)`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::D004 => "D004",
            Rule::D005 => "D005",
            Rule::P001 => "P001",
            Rule::P002 => "P002",
            Rule::Z001 => "Z001",
            Rule::J001 => "J001",
            Rule::L001 => "L001",
            Rule::L002 => "L002",
            Rule::R001 => "R001",
            Rule::R002 => "R002",
            Rule::E001 => "E001",
            Rule::E002 => "E002",
            Rule::E003 => "E003",
            Rule::W001 => "W001",
        }
    }

    /// Every rule in the catalog.
    pub const ALL: [Rule; 17] = [
        Rule::D001,
        Rule::D002,
        Rule::D003,
        Rule::D004,
        Rule::D005,
        Rule::P001,
        Rule::P002,
        Rule::Z001,
        Rule::J001,
        Rule::L001,
        Rule::L002,
        Rule::R001,
        Rule::R002,
        Rule::E001,
        Rule::E002,
        Rule::E003,
        Rule::W001,
    ];
}

/// One finding, with a 1-based source position.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Workspace-relative path (display form, `/`-separated).
    pub path: String,
    /// 1-based line of the flagged token.
    pub line: u32,
    /// 1-based column (in characters) of the flagged token.
    pub col: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation, including the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.path,
            self.line,
            self.col,
            self.rule.code(),
            self.message
        )
    }
}

/// How a file's contents should be judged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// Library code: all rules apply; `#[cfg(test)]` regions within it
    /// are exempt from the library-only rules.
    Library,
    /// Dedicated test/bench/example files: determinism rules apply
    /// (a nondeterministic test flakes), panic/float rules do not.
    TestCode,
    /// `crates/bench`: measures wall-clock time by design; only the
    /// JSON pairing rule applies.
    Bench,
}

/// Classify a workspace-relative path. `None` means the file is not
/// linted at all.
pub fn classify(rel: &str) -> Option<Scope> {
    if rel.contains("tests/fixtures/") {
        return None; // rule fixtures are violations on purpose
    }
    if rel.starts_with("crates/bench/") {
        return Some(Scope::Bench);
    }
    let in_test_dir = rel
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples");
    if in_test_dir {
        Some(Scope::TestCode)
    } else {
        Some(Scope::Library)
    }
}

/// One fully analyzed Rust source file: the input to every rule layer.
pub struct FileAnalysis {
    /// Workspace-relative path (display form).
    pub rel: String,
    /// The file's scope classification.
    pub scope: Scope,
    /// The source text.
    pub src: String,
    /// The token stream (with test regions marked).
    pub tokens: Vec<Token>,
    /// The parsed item tree.
    pub ast: Ast,
    /// Exhaustiveness markers found in comments.
    pub markers: Vec<Marker>,
    /// Suppression directives, widened to the code they cover.
    pub allows: AllowSet,
}

/// Lex, scope-mark, and parse one file.
pub fn analyze_rust_source(rel: &str, src: &str, scope: Scope) -> FileAnalysis {
    let mut lexed = lexer::lex(src);
    context::mark_test_regions(&mut lexed.tokens, src);
    let mut allows = AllowSet::new(lexed.allows);
    allows.extend_to_code(&allow::code_token_lines(&lexed.tokens, src));
    let ast = parse::parse(&lexed.tokens, src);
    FileAnalysis {
        rel: rel.to_string(),
        scope,
        src: src.to_string(),
        tokens: lexed.tokens,
        ast,
        markers: lexed.markers,
        allows,
    }
}

/// Append a diagnostic unless a `lint:allow` suppresses it.
pub(crate) fn emit(
    fa: &FileAnalysis,
    out: &mut Vec<Diagnostic>,
    rule: Rule,
    line: u32,
    col: u32,
    message: String,
) {
    if fa.allows.suppresses(rule.code(), line) {
        return;
    }
    out.push(Diagnostic {
        path: fa.rel.clone(),
        line,
        col,
        rule,
        message,
    });
}

/// Run every applicable rule over one analyzed file.
fn check_file(fa: &FileAnalysis, table: &SymbolTable, out: &mut Vec<Diagnostic>) {
    rules::check_tokens(&fa.rel, &fa.src, &fa.tokens, fa.scope, &fa.allows, out);
    json_pairs::check_json_pairs(&fa.rel, &fa.src, &fa.tokens, &fa.allows, out);
    if fa.scope == Scope::Library {
        flow::check_lock_protocol(fa, table, out);
        flow::check_determinism_flow(fa, out);
        enums::check_exhaustiveness(fa, table, out);
        stale_allows(fa, out);
    }
}

/// W001: report directives that suppressed nothing. Runs after every
/// other rule, in library scope only — a file linted under a reduced
/// scope (tests, benches) legitimately leaves allows idle.
fn stale_allows(fa: &FileAnalysis, out: &mut Vec<Diagnostic>) {
    let unused: Vec<(u32, Vec<String>)> = fa
        .allows
        .directives()
        .iter()
        .filter(|d| !d.used.get())
        .map(|d| (d.line, d.rules.clone()))
        .collect();
    for (line, rules) in unused {
        // A directive naming W001 vouches for itself (and marks itself
        // used through this very check).
        if fa.allows.suppresses(Rule::W001.code(), line) {
            continue;
        }
        out.push(Diagnostic {
            path: fa.rel.clone(),
            line,
            col: 1,
            rule: Rule::W001,
            message: format!(
                "stale `lint:allow({})` — it no longer suppresses anything; \
                 remove it, or fix its rule list if the finding moved",
                rules.join(", ")
            ),
        });
    }
}

/// Lint one Rust source file. `rel` selects the scope (see [`classify`]).
pub fn lint_rust_source(rel: &str, src: &str) -> Vec<Diagnostic> {
    let Some(scope) = classify(rel) else {
        return Vec::new();
    };
    lint_rust_source_as(rel, src, scope)
}

/// Lint Rust source under an explicit scope (used by fixture tests).
/// The symbol table is built from this file alone, so cross-file
/// call-graph facts are limited to what the file itself defines.
pub fn lint_rust_source_as(rel: &str, src: &str, scope: Scope) -> Vec<Diagnostic> {
    let fa = analyze_rust_source(rel, src, scope);
    let mut table = SymbolTable::default();
    table.add_file(&fa.ast, &fa.markers);
    table.finalize();
    let mut out = Vec::new();
    check_file(&fa, &table, &mut out);
    out
}

/// Lint one `Cargo.toml`.
pub fn lint_manifest(rel: &str, src: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    manifest::check_manifest(rel, src, &mut out);
    out
}

/// Lint every source file and manifest under `root`. Runs in two passes:
/// the first analyzes every file and folds it into the workspace symbol
/// table, the second runs the rules with the complete table in hand.
/// Diagnostics come back sorted by (path, line, col, rule).
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let files = walk::discover(root)?;
    let mut out = Vec::new();
    let mut analyses: Vec<FileAnalysis> = Vec::new();
    let mut table = SymbolTable::default();
    for file in &files {
        let src = std::fs::read_to_string(&file.abs)
            .map_err(|e| format!("read {}: {e}", file.abs.display()))?;
        if file.rel.ends_with("Cargo.toml") {
            out.extend(lint_manifest(&file.rel, &src));
        } else if let Some(scope) = classify(&file.rel) {
            let fa = analyze_rust_source(&file.rel, &src, scope);
            table.add_file(&fa.ast, &fa.markers);
            analyses.push(fa);
        }
    }
    table.finalize();
    for fa in &analyses {
        check_file(fa, &table, &mut out);
    }
    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(out)
}

/// The number of files [`lint_workspace`] would scan — exposed so the CLI
/// can report coverage alongside the verdict.
pub fn count_scanned(root: &Path) -> Result<usize, String> {
    Ok(walk::discover(root)?.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_scopes() {
        assert_eq!(classify("crates/sim/src/engine.rs"), Some(Scope::Library));
        assert_eq!(
            classify("crates/core/tests/protocol.rs"),
            Some(Scope::TestCode)
        );
        assert_eq!(classify("tests/determinism.rs"), Some(Scope::TestCode));
        assert_eq!(classify("crates/bench/src/lib.rs"), Some(Scope::Bench));
        assert_eq!(classify("crates/lint/tests/fixtures/d001.rs"), None);
    }

    #[test]
    fn rule_codes_are_stable() {
        let codes: Vec<&str> = Rule::ALL.iter().map(|r| r.code()).collect();
        assert_eq!(
            codes,
            [
                "D001", "D002", "D003", "D004", "D005", "P001", "P002", "Z001", "J001", "L001",
                "L002", "R001", "R002", "E001", "E002", "E003", "W001"
            ]
        );
    }

    #[test]
    fn diagnostic_display_format() {
        let d = Diagnostic {
            path: "crates/sim/src/engine.rs".into(),
            line: 42,
            col: 7,
            rule: Rule::D001,
            message: "msg".into(),
        };
        assert_eq!(d.to_string(), "crates/sim/src/engine.rs:42:7: D001: msg");
    }

    #[test]
    fn stale_allow_is_reported_in_library_scope_only() {
        let src = "// lint:allow(D001): nothing here triggers D001\nfn f() {}\n";
        let diags = lint_rust_source_as("crates/sim/src/x.rs", src, Scope::Library);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule.code(), "W001");
        assert_eq!(diags[0].line, 1);
        assert!(
            lint_rust_source_as("crates/sim/tests/x.rs", src, Scope::TestCode).is_empty(),
            "reduced scopes leave allows idle legitimately"
        );
        assert!(
            lint_rust_source_as("crates/bench/src/x.rs", src, Scope::Bench).is_empty(),
            "bench scope runs almost nothing; allows stay idle"
        );
    }

    #[test]
    fn used_allow_is_not_stale() {
        let src = "fn f(o: Option<u32>) -> u32 {\n    // lint:allow(P001): test helper\n    o.unwrap()\n}\n";
        assert!(lint_rust_source_as("crates/sim/src/x.rs", src, Scope::Library).is_empty());
    }

    #[test]
    fn stale_allow_can_vouch_for_itself() {
        let src = "// lint:allow(D001, W001): kept while the refactor lands\nfn f() {}\n";
        assert!(lint_rust_source_as("crates/sim/src/x.rs", src, Scope::Library).is_empty());
    }
}
