//! J001: `ToJson` / `FromJson` impl pairs must round-trip field names.
//!
//! The in-tree JSON layer has no derive macro, so serialize/deserialize
//! impls are written by hand — and a renamed field on one side silently
//! breaks round-tripping (the reader sees a missing field, or worse, a
//! `field_or` default kicks in and the value quietly resets). This rule
//! extracts, per type, the field-name string literals *emitted* by its
//! `ToJson` impl and *read* by its `FromJson` impl in the same file, and
//! reports names present on only one side.
//!
//! Heuristics (documented so future rule authors know the contract):
//!
//! * emitted names are string literals in tuple-first position —
//!   `("name", …)` where the `(` is not a call (previous token is not an
//!   identifier or `!`). This matches the `Json::object(vec![("a", v)])`
//!   convention used everywhere in-tree;
//! * read names are the string-literal arguments of `.field("…")`,
//!   `.opt_field("…")`, `.field_or("…", …)` and `.get("…")`;
//! * enum impls that match on variant names use the same convention on
//!   both sides (externally tagged: `{"Uniform": {...}}`), so variant
//!   tags participate in the comparison exactly like struct fields;
//! * a side that names no fields at all (unit types, custom encodings
//!   via `Json::from`) opts out — the comparison only runs when both
//!   sides collected at least one name.

use std::collections::{BTreeMap, BTreeSet};

use crate::allow::AllowSet;
use crate::lexer::{Token, TokenKind};
use crate::{Diagnostic, Rule};

#[derive(Default)]
struct ImplNames {
    /// Names emitted by `to_json`, with the line of the impl header.
    to: Option<(BTreeSet<String>, u32)>,
    /// Names read by `from_json`, with the line of the impl header.
    from: Option<(BTreeSet<String>, u32)>,
}

/// Run J001 over one file's tokens.
pub fn check_json_pairs(
    path: &str,
    src: &str,
    tokens: &[Token],
    allows: &AllowSet,
    out: &mut Vec<Diagnostic>,
) {
    let mut impls: BTreeMap<String, ImplNames> = BTreeMap::new();

    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident(src, "impl") {
            i += 1;
            continue;
        }
        let Some((trait_is_to, type_key, body, header_line, after)) =
            parse_json_impl(src, tokens, i)
        else {
            i += 1;
            continue;
        };
        let names = if trait_is_to {
            collect_emitted(src, body)
        } else {
            collect_read(src, body)
        };
        let entry = impls.entry(type_key).or_default();
        let slot = if trait_is_to {
            &mut entry.to
        } else {
            &mut entry.from
        };
        match slot {
            // Generic impls can pair one trait impl with several types;
            // merging keeps the comparison meaningful for the common
            // one-impl-per-type case and silent otherwise.
            Some((set, _)) => set.extend(names),
            None => *slot = Some((names, header_line)),
        }
        i = after;
    }

    for (type_key, names) in impls {
        let (Some((to, to_line)), Some((from, from_line))) = (&names.to, &names.from) else {
            continue;
        };
        if to.is_empty() || from.is_empty() {
            continue; // custom encoding on one side: opted out
        }
        for name in to.difference(from) {
            push(
                out,
                allows,
                path,
                *from_line,
                format!(
                    "`{type_key}`: `to_json` emits field \"{name}\" but \
                     `from_json` never reads it — the pair does not round-trip"
                ),
            );
        }
        for name in from.difference(to) {
            push(
                out,
                allows,
                path,
                *to_line,
                format!(
                    "`{type_key}`: `from_json` reads field \"{name}\" but \
                     `to_json` never emits it — the pair does not round-trip"
                ),
            );
        }
    }
}

fn push(out: &mut Vec<Diagnostic>, allows: &AllowSet, path: &str, line: u32, message: String) {
    if allows.suppresses(Rule::J001.code(), line) {
        return;
    }
    out.push(Diagnostic {
        path: path.to_string(),
        line,
        col: 1,
        rule: Rule::J001,
        message,
    });
}

/// Parse `impl [<…>] (ToJson|FromJson) for TYPE { BODY }` starting at the
/// `impl` token. Returns (is_to_json, normalized type key, body tokens,
/// header line, index past the closing brace).
fn parse_json_impl<'t>(
    src: &str,
    tokens: &'t [Token],
    impl_idx: usize,
) -> Option<(bool, String, &'t [Token], u32, usize)> {
    let mut j = impl_idx + 1;
    // Skip generics on the impl itself.
    if tokens.get(j)?.is_punct(src, '<') {
        let mut depth = 1i32;
        j += 1;
        while depth > 0 {
            let t = tokens.get(j)?;
            if t.is_punct(src, '<') {
                depth += 1;
            } else if t.is_punct(src, '>') {
                depth -= 1;
            }
            j += 1;
        }
    }
    let trait_tok = tokens.get(j)?;
    let trait_is_to = match trait_tok.text(src) {
        "ToJson" => true,
        "FromJson" => false,
        _ => return None,
    };
    if trait_tok.kind != TokenKind::Ident {
        return None;
    }
    j += 1;
    if !tokens.get(j)?.is_ident(src, "for") {
        return None;
    }
    j += 1;
    // Collect the type up to the impl body `{` (skipping a possible
    // `where` clause), normalizing to a joined token string.
    let mut key = String::new();
    let mut saw_where = false;
    let body_open = loop {
        let t = tokens.get(j)?;
        if t.is_punct(src, '{') {
            break j;
        }
        if t.is_ident(src, "where") {
            saw_where = true;
        }
        if !saw_where {
            key.push_str(t.text(src));
        }
        j += 1;
    };
    // Find the matching close brace.
    let mut depth = 0i32;
    let mut k = body_open;
    loop {
        let t = tokens.get(k)?;
        if t.is_punct(src, '{') {
            depth += 1;
        } else if t.is_punct(src, '}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        k += 1;
    }
    Some((
        trait_is_to,
        key,
        &tokens[body_open + 1..k],
        tokens[impl_idx].line,
        k + 1,
    ))
}

/// Names emitted by a `to_json` body: string literals in tuple-first
/// position `("name", …)` where the paren does not open a call.
fn collect_emitted(src: &str, body: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..body.len() {
        if !body[i].is_punct(src, '(') {
            continue;
        }
        if i > 0 && (body[i - 1].kind == TokenKind::Ident || body[i - 1].is_punct(src, '!')) {
            continue; // `f("…", …)` / `format!("…", …)` — a call, not a tuple
        }
        let (Some(s), Some(c)) = (body.get(i + 1), body.get(i + 2)) else {
            continue;
        };
        if s.kind == TokenKind::Str && c.is_punct(src, ',') {
            if let Some(name) = str_contents(s.text(src)) {
                names.insert(name);
            }
        }
    }
    names
}

/// Names read by a `from_json` body: arguments of the field accessors.
fn collect_read(src: &str, body: &[Token]) -> BTreeSet<String> {
    const ACCESSORS: [&str; 4] = ["field", "opt_field", "field_or", "get"];
    let mut names = BTreeSet::new();
    for i in 0..body.len() {
        if body[i].kind != TokenKind::Ident || !ACCESSORS.contains(&body[i].text(src)) {
            continue;
        }
        // Method call: `.field("…")`.
        if i == 0 || !body[i - 1].is_punct(src, '.') {
            continue;
        }
        let (Some(p), Some(s)) = (body.get(i + 1), body.get(i + 2)) else {
            continue;
        };
        if p.is_punct(src, '(') && s.kind == TokenKind::Str {
            if let Some(name) = str_contents(s.text(src)) {
                names.insert(name);
            }
        }
    }
    names
}

/// The contents of a plain `"…"` literal token (no raw/byte forms — field
/// names are always plain literals in-tree).
fn str_contents(text: &str) -> Option<String> {
    let inner = text.strip_prefix('"')?.strip_suffix('"')?;
    if inner.contains('\\') {
        return None; // escaped names don't occur; skip rather than mis-parse
    }
    Some(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Diagnostic> {
        let lexed = lex(src);
        let allows = AllowSet::new(lexed.allows);
        let mut out = Vec::new();
        check_json_pairs("f.rs", src, &lexed.tokens, &allows, &mut out);
        out
    }

    const GOOD: &str = r#"
        impl ToJson for Point {
            fn to_json(&self) -> Json {
                Json::object(vec![("x", self.x.to_json()), ("y", self.y.to_json())])
            }
        }
        impl FromJson for Point {
            fn from_json(v: &Json) -> Result<Self, String> {
                Ok(Point { x: v.field("x")?, y: v.field("y")? })
            }
        }
    "#;

    #[test]
    fn matching_pair_is_clean() {
        assert!(run(GOOD).is_empty());
    }

    #[test]
    fn renamed_field_is_flagged_both_ways() {
        let bad = GOOD.replace("v.field(\"y\")", "v.field(\"why\")");
        let diags = run(&bad);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule.code() == "J001"));
        assert!(diags.iter().any(|d| d.message.contains("\"y\"")));
        assert!(diags.iter().any(|d| d.message.contains("\"why\"")));
    }

    #[test]
    fn one_sided_impl_is_ignored() {
        let only_to = r#"
            impl ToJson for Log {
                fn to_json(&self) -> Json {
                    Json::object(vec![("entries", self.entries.to_json())])
                }
            }
        "#;
        assert!(run(only_to).is_empty());
    }

    #[test]
    fn custom_encoding_opts_out() {
        let custom = r#"
            impl ToJson for Id {
                fn to_json(&self) -> Json { Json::from(self.0) }
            }
            impl FromJson for Id {
                fn from_json(v: &Json) -> Result<Self, String> {
                    Ok(Id(v.field("id")?))
                }
            }
        "#;
        assert!(run(custom).is_empty());
    }

    #[test]
    fn format_macro_is_not_an_emitted_field() {
        let src = r#"
            impl ToJson for E {
                fn to_json(&self) -> Json {
                    let label = format!("not_a_field", );
                    Json::object(vec![("kind", label.to_json())])
                }
            }
            impl FromJson for E {
                fn from_json(v: &Json) -> Result<Self, String> {
                    Ok(E { kind: v.field("kind")? })
                }
            }
        "#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn field_or_and_opt_field_count_as_reads() {
        let src = r#"
            impl ToJson for C {
                fn to_json(&self) -> Json {
                    Json::object(vec![("a", self.a.to_json()), ("b", self.b.to_json())])
                }
            }
            impl FromJson for C {
                fn from_json(v: &Json) -> Result<Self, String> {
                    Ok(C { a: v.opt_field("a")?, b: v.field_or("b", 0)? })
                }
            }
        "#;
        assert!(run(src).is_empty());
    }

    #[test]
    fn allow_on_impl_header_suppresses() {
        let bad = GOOD.replace("v.field(\"y\")", "v.field(\"why\")");
        let suppressed = bad
            .replace(
                "impl ToJson for Point",
                "// lint:allow(J001): migration shim\n        impl ToJson for Point",
            )
            .replace(
                "impl FromJson for Point",
                "// lint:allow(J001): migration shim\n        impl FromJson for Point",
            );
        assert!(run(&suppressed).is_empty());
    }
}
