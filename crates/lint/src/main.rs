//! CLI entry point: `cargo run -p lockgran-lint [-- --root DIR] [--fix-allow]`.
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use lockgran_lint::{count_scanned, lint_workspace, Diagnostic, Rule};

const USAGE: &str = "\
lockgran-lint — determinism & policy static analysis

USAGE:
    cargo run -p lockgran-lint [-- OPTIONS]

OPTIONS:
    --root <DIR>   Workspace root to scan (default: this workspace)
    --fix-allow    Print ready-to-paste `// lint:allow(...)` comments
                   for each finding instead of bare diagnostics
    --json         Emit diagnostics as a JSON array of
                   {path, line, col, rule, message} objects
    --github       Emit diagnostics as GitHub Actions annotations
                   (`::error file=…`) so CI surfaces them inline
    --list-rules   Print the rule catalog and exit
    -h, --help     Show this help
";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Output {
    Text,
    Json,
    Github,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut fix_allow = false;
    let mut output = Output::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root requires a directory\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--fix-allow" => fix_allow = true,
            "--json" => output = Output::Json,
            "--github" => output = Output::Github,
            "--list-rules" => {
                for rule in Rule::ALL {
                    println!("{}", rule.code());
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => default_root(),
    };

    let scanned = match count_scanned(&root) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("lockgran-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let diags = match lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("lockgran-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if output == Output::Json {
        print!("{}", render_json(&diags));
    } else if output == Output::Github {
        for d in &diags {
            println!("{}", render_annotation(d));
        }
    }

    if diags.is_empty() {
        if output == Output::Text {
            println!("lockgran-lint: clean ({scanned} files scanned)");
        }
        return ExitCode::SUCCESS;
    }

    if output == Output::Text {
        if fix_allow {
            println!("# Paste the matching comment on the line above each finding");
            println!("# (or fix the code — an allow needs a real justification).");
            for d in &diags {
                println!(
                    "{d}\n    // lint:allow({}): <justify: why is this safe here?>",
                    d.rule.code()
                );
            }
        } else {
            for d in &diags {
                println!("{d}");
            }
        }
    }
    let files: std::collections::BTreeSet<&str> = diags.iter().map(|d| d.path.as_str()).collect();
    eprintln!(
        "lockgran-lint: {} violation(s) in {} file(s) ({scanned} files scanned)",
        diags.len(),
        files.len()
    );
    ExitCode::FAILURE
}

/// Render diagnostics as a machine-readable JSON array (hand-rolled, in
/// keeping with the zero-dependency policy).
fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"path\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.path),
            d.line,
            d.col,
            d.rule.code(),
            json_escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One GitHub Actions workflow-command annotation.
fn render_annotation(d: &Diagnostic) -> String {
    format!(
        "::error file={},line={},col={},title={}::{}",
        gh_property(&d.path),
        d.line,
        d.col,
        d.rule.code(),
        gh_message(&d.message)
    )
}

/// Escape a workflow-command property value (`%`, CR, LF, `:`, `,`).
fn gh_property(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
        .replace(':', "%3A")
        .replace(',', "%2C")
}

/// Escape a workflow-command message (`%`, CR, LF).
fn gh_message(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// The workspace root when `--root` is not given: two levels above this
/// crate's manifest (compiled in), falling back to the current directory
/// when the binary is run outside the source tree.
fn default_root() -> PathBuf {
    let compiled = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    match compiled.parent().and_then(|p| p.parent()) {
        Some(ws) if ws.join("Cargo.toml").exists() => ws.to_path_buf(),
        _ => PathBuf::from("."),
    }
}
