//! CLI entry point: `cargo run -p lockgran-lint [-- --root DIR] [--fix-allow]`.
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use lockgran_lint::{count_scanned, lint_workspace, Rule};

const USAGE: &str = "\
lockgran-lint — determinism & policy static analysis

USAGE:
    cargo run -p lockgran-lint [-- OPTIONS]

OPTIONS:
    --root <DIR>   Workspace root to scan (default: this workspace)
    --fix-allow    Print ready-to-paste `// lint:allow(...)` comments
                   for each finding instead of bare diagnostics
    --list-rules   Print the rule catalog and exit
    -h, --help     Show this help
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut fix_allow = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root requires a directory\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--fix-allow" => fix_allow = true,
            "--list-rules" => {
                for rule in Rule::ALL {
                    println!("{}", rule.code());
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => default_root(),
    };

    let scanned = match count_scanned(&root) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("lockgran-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let diags = match lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("lockgran-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if diags.is_empty() {
        println!("lockgran-lint: clean ({scanned} files scanned)");
        return ExitCode::SUCCESS;
    }

    if fix_allow {
        println!("# Paste the matching comment on the line above each finding");
        println!("# (or fix the code — an allow needs a real justification).");
        for d in &diags {
            println!(
                "{d}\n    // lint:allow({}): <justify: why is this safe here?>",
                d.rule.code()
            );
        }
    } else {
        for d in &diags {
            println!("{d}");
        }
    }
    let files: std::collections::BTreeSet<&str> = diags.iter().map(|d| d.path.as_str()).collect();
    eprintln!(
        "lockgran-lint: {} violation(s) in {} file(s) ({scanned} files scanned)",
        diags.len(),
        files.len()
    );
    ExitCode::FAILURE
}

/// The workspace root when `--root` is not given: two levels above this
/// crate's manifest (compiled in), falling back to the current directory
/// when the binary is run outside the source tree.
fn default_root() -> PathBuf {
    let compiled = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    match compiled.parent().and_then(|p| p.parent()) {
        Some(ws) if ws.join("Cargo.toml").exists() => ws.to_path_buf(),
        _ => PathBuf::from("."),
    }
}
