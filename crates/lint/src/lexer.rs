//! A small hand-written Rust lexer.
//!
//! The linter does not need a full parser: every rule in the catalog can
//! be phrased over a token stream with accurate line/column spans, plus a
//! little bracket matching done by the consumers. The lexer therefore
//! only distinguishes the token classes the rules care about and treats
//! every punctuation character as its own token — multi-character
//! operators (`==`, `::`, `->`, …) are recognized by the rule layer from
//! *adjacent* punctuation tokens, which keeps the lexer trivial and the
//! adjacency information exact.
//!
//! What it does get right, because the rules depend on it:
//!
//! * comments (line, nested block) are skipped but scanned for
//!   `lint:allow` directives;
//! * all string literal forms (`"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
//!   `c"…"`) lex as a single [`TokenKind::Str`] token, so rule patterns
//!   never fire on text inside strings;
//! * char literals are disambiguated from lifetimes (`'a'` vs `'a`);
//! * float literals are distinguished from integer literals, including
//!   the exponent and suffix forms (`1e3`, `2f64`) but not hex.

use crate::allow::{AllowDirective, Marker};

/// The coarse token classes the rule layer matches on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `impl`, `r#type`).
    Ident,
    /// Lifetime (`'a`, `'static`). Never participates in any rule; kept
    /// distinct so it cannot be confused with a char literal.
    Lifetime,
    /// Any string literal form, including raw and byte strings.
    Str,
    /// Char or byte-char literal (`'x'`, `b'{'`).
    Char,
    /// Integer literal (any base), including suffixed forms.
    Int,
    /// Float literal (`1.0`, `1e3`, `2f64`).
    Float,
    /// A single punctuation character (`=`, `.`, `(`, …).
    Punct,
}

/// One token with its byte span and 1-based source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub start: usize,
    /// Byte offset one past the token's last character.
    pub end: usize,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
    /// Set by the scope pass when the token sits inside test-only code
    /// (`#[cfg(test)]` module or `#[test]` function body).
    pub in_test: bool,
}

impl Token {
    /// The token's source text.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }

    /// True for a punctuation token matching `c`.
    pub fn is_punct(&self, src: &str, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text(src).starts_with(c)
    }

    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, src: &str, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text(src) == name
    }
}

/// Result of lexing one file: the token stream plus every suppression
/// directive and exhaustiveness marker found in comments.
pub struct LexOutput {
    /// The token stream, in source order.
    pub tokens: Vec<Token>,
    /// Suppression directives found in comments, in source order.
    pub allows: Vec<AllowDirective>,
    /// `lint:exhaustive` / `lint:covers` markers, in source order.
    pub markers: Vec<Marker>,
}

struct Cursor<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'s> Cursor<'s> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    /// Advance by one character (not byte), maintaining line/col.
    fn bump(&mut self) {
        match self.peek() {
            None => {}
            Some(b'\n') => {
                self.pos += 1;
                self.line += 1;
                self.col = 1;
            }
            Some(b) if b < 0x80 => {
                self.pos += 1;
                self.col += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 scalar: skip its continuation bytes and
                // count it as one column.
                self.pos += 1;
                while matches!(self.peek(), Some(b) if (0x80..0xC0).contains(&b)) {
                    self.pos += 1;
                }
                self.col += 1;
            }
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic() || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80
}

/// Lex `src` into tokens and suppression directives.
pub fn lex(src: &str) -> LexOutput {
    let mut cur = Cursor {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();
    let mut allows = Vec::new();
    let mut markers = Vec::new();

    while let Some(b) = cur.peek() {
        // Whitespace.
        if b.is_ascii_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if b == b'/' && cur.peek_at(1) == Some(b'/') {
            let line = cur.line;
            let start = cur.pos;
            while cur.peek().is_some_and(|b| b != b'\n') {
                cur.bump();
            }
            let text = &src[start..cur.pos];
            // Doc comments are documentation, not directives: a rendered
            // allow-directive example in rustdoc text must not register
            // (it would then be reported stale by W001). `////…` rulers
            // are not doc comments.
            let doc =
                (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
            if !doc {
                AllowDirective::scan(text, line, &mut allows);
                Marker::scan(text, line, &mut markers);
            }
            continue;
        }
        if b == b'/' && cur.peek_at(1) == Some(b'*') {
            let line = cur.line;
            let start = cur.pos;
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 && cur.peek().is_some() {
                if cur.peek() == Some(b'/') && cur.peek_at(1) == Some(b'*') {
                    depth += 1;
                    cur.bump();
                    cur.bump();
                } else if cur.peek() == Some(b'*') && cur.peek_at(1) == Some(b'/') {
                    depth -= 1;
                    cur.bump();
                    cur.bump();
                } else {
                    cur.bump();
                }
            }
            // Block comments may span lines; a directive applies at the
            // line the comment *starts* on (multi-line allow comments are
            // not supported and not used in-tree). Block doc comments are
            // documentation, like their line-comment cousins.
            let text = &src[start..cur.pos];
            let doc = text.starts_with("/**") || text.starts_with("/*!");
            if !doc {
                AllowDirective::scan(text, line, &mut allows);
                Marker::scan(text, line, &mut markers);
            }
            continue;
        }

        let (line, col, start) = (cur.line, cur.col, cur.pos);

        // String-literal prefixes and identifiers share a start set, so
        // resolve the literal forms first.
        if is_ident_start(b) {
            if let Some(kind) = lex_prefixed_literal(&mut cur) {
                tokens.push(Token {
                    kind,
                    start,
                    end: cur.pos,
                    line,
                    col,
                    in_test: false,
                });
                continue;
            }
            while cur.peek().is_some_and(is_ident_continue) {
                cur.bump();
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                start,
                end: cur.pos,
                line,
                col,
                in_test: false,
            });
            continue;
        }

        if b == b'"' {
            lex_quoted(&mut cur);
            tokens.push(Token {
                kind: TokenKind::Str,
                start,
                end: cur.pos,
                line,
                col,
                in_test: false,
            });
            continue;
        }

        if b == b'\'' {
            let kind = lex_quote(&mut cur);
            tokens.push(Token {
                kind,
                start,
                end: cur.pos,
                line,
                col,
                in_test: false,
            });
            continue;
        }

        if b.is_ascii_digit() {
            let kind = lex_number(&mut cur);
            tokens.push(Token {
                kind,
                start,
                end: cur.pos,
                line,
                col,
                in_test: false,
            });
            continue;
        }

        // Anything else: a single punctuation character.
        cur.bump();
        tokens.push(Token {
            kind: TokenKind::Punct,
            start,
            end: cur.pos,
            line,
            col,
            in_test: false,
        });
    }

    LexOutput {
        tokens,
        allows,
        markers,
    }
}

/// Try to lex a literal that starts with an identifier-like prefix:
/// `r"…"`, `r#"…"#`, `b"…"`, `br"…"`, `br#"…"#`, `c"…"`, `cr#"…"#`,
/// `b'x'`. Returns `None` (without consuming anything) when the cursor
/// sits on a plain identifier — including raw identifiers (`r#type`).
fn lex_prefixed_literal(cur: &mut Cursor<'_>) -> Option<TokenKind> {
    let b0 = cur.peek()?;
    // Byte-char literal.
    if b0 == b'b' && cur.peek_at(1) == Some(b'\'') {
        cur.bump(); // b
        lex_quote(cur);
        return Some(TokenKind::Char);
    }
    // String prefixes: the prefix is 1–2 of {r, b, c} followed by zero or
    // more `#` and then a quote.
    let prefix_len = match (b0, cur.peek_at(1)) {
        (b'r' | b'b' | b'c', Some(b'"' | b'#')) => 1,
        (b'b' | b'c', Some(b'r')) if matches!(cur.peek_at(2), Some(b'"' | b'#')) => 2,
        _ => return None,
    };
    let raw = prefix_len == 2 || b0 == b'r';
    // Count the hashes after the prefix.
    let mut hashes = 0usize;
    while cur.peek_at(prefix_len + hashes) == Some(b'#') {
        hashes += 1;
    }
    if cur.peek_at(prefix_len + hashes) != Some(b'"') {
        // `r#type` raw identifier (or stray `#`): not a literal.
        return None;
    }
    if !raw && hashes > 0 {
        return None;
    }
    for _ in 0..prefix_len + hashes {
        cur.bump();
    }
    if raw {
        cur.bump(); // opening quote
                    // Scan for `"` followed by `hashes` hash marks.
        'outer: while let Some(b) = cur.peek() {
            cur.bump();
            if b == b'"' {
                for i in 0..hashes {
                    if cur.peek_at(i) != Some(b'#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
        }
    } else {
        lex_quoted(cur);
    }
    Some(TokenKind::Str)
}

/// Lex a `"`-delimited string with escapes; the cursor sits on the
/// opening quote.
fn lex_quoted(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(b) = cur.peek() {
        cur.bump();
        match b {
            b'"' => break,
            b'\\' => cur.bump(), // skip escaped char ("\\", "\"", …)
            _ => {}
        }
    }
}

/// Lex from a `'`: either a lifetime or a char literal.
fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // '
    match cur.peek() {
        Some(b'\\') => {
            // Escaped char literal: skip the escape body to the closing
            // quote ('\n', '\u{7D}', '\x7f').
            cur.bump();
            while cur.peek().is_some_and(|b| b != b'\'') {
                cur.bump();
            }
            cur.bump();
            TokenKind::Char
        }
        Some(b) if is_ident_start(b) => {
            while cur.peek().is_some_and(is_ident_continue) {
                cur.bump();
            }
            if cur.peek() == Some(b'\'') {
                cur.bump();
                TokenKind::Char // 'x'
            } else {
                TokenKind::Lifetime // 'static
            }
        }
        Some(_) => {
            // '0', '{', … — a char literal over a non-ident char.
            while cur.peek().is_some_and(|b| b != b'\'') {
                cur.bump();
            }
            cur.bump();
            TokenKind::Char
        }
        None => TokenKind::Lifetime,
    }
}

/// Lex a numeric literal; the cursor sits on the first digit.
fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    if cur.peek() == Some(b'0') && matches!(cur.peek_at(1), Some(b'x' | b'o' | b'b')) {
        cur.bump();
        cur.bump();
        while cur.peek().is_some_and(is_ident_continue) {
            cur.bump();
        }
        return TokenKind::Int;
    }
    let mut float = false;
    while cur.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
        cur.bump();
    }
    // Fractional part: `1.5` but not `1.method()` or `1..2`.
    if cur.peek() == Some(b'.') && cur.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
        float = true;
        cur.bump();
        while cur.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            cur.bump();
        }
    } else if cur.peek() == Some(b'.')
        && !cur
            .peek_at(1)
            .is_some_and(|b| is_ident_start(b) || b == b'.')
    {
        // `1.` trailing-dot float (e.g. `1. + x`); rare but legal.
        float = true;
        cur.bump();
    }
    // Exponent.
    if matches!(cur.peek(), Some(b'e' | b'E')) {
        let sign = usize::from(matches!(cur.peek_at(1), Some(b'+' | b'-')));
        if cur.peek_at(1 + sign).is_some_and(|b| b.is_ascii_digit()) {
            float = true;
            cur.bump();
            if sign == 1 {
                cur.bump();
            }
            while cur.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                cur.bump();
            }
        }
    }
    // Suffix (`u64`, `f64`, …).
    if cur.peek().is_some_and(is_ident_start) {
        let suffix_start = cur.pos;
        while cur.peek().is_some_and(is_ident_continue) {
            cur.bump();
        }
        let suffix = &cur.src[suffix_start..cur.pos];
        if suffix == "f32" || suffix == "f64" {
            float = true;
        }
    }
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ks = kinds("use std::collections::BTreeMap;");
        assert_eq!(ks[0], (TokenKind::Ident, "use".into()));
        assert_eq!(ks[1], (TokenKind::Ident, "std".into()));
        assert_eq!(ks[2], (TokenKind::Punct, ":".into()));
        assert_eq!(ks[7], (TokenKind::Ident, "BTreeMap".into()));
        assert_eq!(ks.last().map(|k| k.1.clone()), Some(";".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        let ks = kinds(r#"let s = "HashMap == 1.0";"#);
        assert!(ks.iter().all(|(_, t)| t != "HashMap"));
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
    }

    #[test]
    fn raw_and_byte_strings() {
        let ks = kinds(r##"let a = r#"raw "inner" text"#; let b = b"bytes";"##);
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
    }

    #[test]
    fn raw_identifier_is_not_a_string() {
        let ks = kinds("let r#type = 1;");
        assert!(ks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r"));
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "type"));
    }

    #[test]
    fn char_vs_lifetime() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let d = b'{'; }");
        assert_eq!(
            ks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(),
            2
        );
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 2);
    }

    #[test]
    fn numbers() {
        let ks = kinds("1 1.5 1e3 2f64 0xff 3u32 1..2 x.0");
        let floats: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(floats, vec!["1.5", "1e3", "2f64"]);
        let ints: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Int)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(ints, vec!["1", "0xff", "3u32", "1", "2", "0"]);
    }

    #[test]
    fn nested_block_comments() {
        let ks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(ks.len(), 2);
    }

    #[test]
    fn line_and_col_are_one_based() {
        let toks = lex("ab\n  cd").tokens;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn allow_directives_are_collected() {
        let out = lex("// lint:allow(D001): reasons\nlet x = 1;");
        assert_eq!(out.allows.len(), 1);
        assert_eq!(out.allows[0].rules, vec!["D001".to_string()]);
        assert_eq!(out.allows[0].line, 1);
    }

    #[test]
    fn doc_comments_do_not_register_directives_or_markers() {
        let src = "\
//! // lint:allow(P001): example in module docs
/// // lint:allow(D001): example in item docs
/** lint:covers(Mode) */
//// lint:allow(Z001): a ruler comment is not a doc comment
// lint:exhaustive(Metric)
fn f() {}
";
        let out = lex(src);
        assert_eq!(out.allows.len(), 1, "only the //// line counts");
        assert_eq!(out.allows[0].rules, vec!["Z001".to_string()]);
        assert_eq!(out.markers.len(), 1, "only the plain // marker counts");
        assert_eq!(out.markers[0].name, "Metric");
    }
}
