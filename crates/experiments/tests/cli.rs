//! End-to-end tests of the `lockgran` binary.

use std::process::Command;

fn lockgran() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lockgran"))
}

fn run_ok(args: &[&str]) -> (String, String) {
    let out = lockgran().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "lockgran {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn list_names_every_artifact() {
    let (stdout, _) = run_ok(&["list"]);
    for id in [
        "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
        "fig12", "extA", "extB",
    ] {
        assert!(stdout.contains(id), "{id} missing from list output");
    }
}

#[test]
fn single_run_prints_paper_outputs() {
    let (stdout, _) = run_ok(&[
        "run", "--ltot", "50", "--npros", "4", "--tmax", "300", "--seed", "9",
    ]);
    for key in [
        "totcom",
        "throughput",
        "response",
        "totcpus",
        "totios",
        "lockcpus",
        "lockios",
        "usefulcpus",
        "usefulios",
    ] {
        assert!(stdout.contains(key), "{key} missing:\n{stdout}");
    }
    assert!(stdout.contains("ltot=50"));
}

#[test]
fn figure_quick_renders_table_and_chart() {
    let (stdout, _) = run_ok(&["fig7", "--quick", "--tmax", "300", "--chart"]);
    assert!(stdout.contains("fig7"));
    assert!(stdout.contains("liotime=0"));
    assert!(stdout.contains("throughput"));
    // Chart footer with the log x axis.
    assert!(stdout.contains("(log)"), "chart not rendered:\n{stdout}");
}

#[test]
fn figure_writes_artifacts() {
    let dir = std::env::temp_dir().join(format!("lockgran-cli-{}", std::process::id()));
    let (_, _) = run_ok(&[
        "table1",
        "--quick",
        "--tmax",
        "300",
        "--out",
        dir.to_str().unwrap(),
    ]);
    for ext in ["txt", "csv", "json"] {
        assert!(
            dir.join(format!("table1.{ext}")).exists(),
            "table1.{ext} missing"
        );
    }
    let csv = std::fs::read_to_string(dir.join("table1.csv")).unwrap();
    assert!(csv.starts_with("figure,panel,series,x,mean,ci95"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn batch_runs_config_file() {
    let dir = std::env::temp_dir().join(format!("lockgran-batch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cfgs = r#"[
        {
            "dbsize": 5000, "ltot": 10, "ntrans": 5,
            "size": {"Uniform": {"max": 100}},
            "cputime": 0.05, "iotime": 0.2, "lcputime": 0.01, "liotime": 0.2,
            "npros": 4, "tmax": 300.0,
            "placement": "Best", "partitioning": "Horizontal",
            "conflict": "Probabilistic", "lock_distribution": "PerOperation",
            "service": "Deterministic",
            "lock_preemption": true, "mpl_limit": null, "warmup": 0.0
        },
        {
            "dbsize": 5000, "ltot": 1000, "ntrans": 5,
            "size": {"Uniform": {"max": 100}},
            "cputime": 0.05, "iotime": 0.2, "lcputime": 0.01, "liotime": 0.2,
            "npros": 4, "tmax": 300.0,
            "placement": "Worst", "partitioning": "Random",
            "conflict": "Explicit", "lock_distribution": "EvenSplit",
            "service": "Exponential",
            "lock_preemption": false, "mpl_limit": 3, "warmup": 0.0
        }
    ]"#;
    let cfg_path = dir.join("batch.json");
    std::fs::write(&cfg_path, cfgs).unwrap();
    let out_path = dir.join("out.csv");
    let (stdout, _) = run_ok(&[
        "batch",
        cfg_path.to_str().unwrap(),
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(
        stdout.lines().count() >= 3,
        "header + 2 rows expected:\n{stdout}"
    );
    let written = std::fs::read_to_string(&out_path).unwrap();
    assert!(written.contains("worst,random,explicit"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn timeline_prints_windows_and_chart() {
    let (stdout, _) = run_ok(&[
        "timeline",
        "--tmax",
        "400",
        "--interval",
        "100",
        "--npros",
        "4",
    ]);
    assert!(stdout.contains("throughput"));
    assert!(stdout.contains("active"));
    // Four windows plus header and summary.
    assert!(stdout.contains("400.0"), "last window missing:\n{stdout}");
    assert!(stdout.contains("throughput over time"));
}

#[test]
fn warmup_gives_a_verdict() {
    let (stdout, _) = run_ok(&["warmup", "--tmax", "800", "--interval", "50", "--reps", "2"]);
    assert!(
        stdout.contains("suggested warmup") || stdout.contains("no stable warm-up"),
        "unexpected output:\n{stdout}"
    );
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = lockgran().arg("nonsense").output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"), "no usage text:\n{stderr}");
}

#[test]
fn invalid_parameters_are_rejected() {
    // ltot > dbsize must be a validation error, not a panic.
    let out = lockgran()
        .args(["run", "--ltot", "999999"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("dbsize"),
        "unexpected error text:\n{stderr}"
    );
}
