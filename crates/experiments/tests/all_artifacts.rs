//! Smoke coverage: every registered artifact (paper + extensions) runs in
//! quick mode and produces a structurally complete figure.

use lockgran_experiments::figures::{run_by_id, ALL_IDS, EXT_IDS};
use lockgran_experiments::{emit, render_chart, ChartOptions, RunOptions};

fn opts() -> RunOptions {
    let mut o = RunOptions::quick();
    o.tmax = Some(300.0); // minimal horizon: structure, not statistics
    o
}

#[test]
fn every_artifact_runs_and_is_well_formed() {
    for id in ALL_IDS.iter().chain(EXT_IDS.iter()) {
        let fig = run_by_id(id, &opts()).unwrap_or_else(|| panic!("{id} not registered"));
        assert_eq!(&fig.id, id);
        assert!(!fig.title.is_empty(), "{id}: empty title");
        assert!(!fig.panels.is_empty(), "{id}: no panels");
        for panel in &fig.panels {
            assert!(!panel.series.is_empty(), "{id}/{}: no series", panel.metric);
            for s in &panel.series {
                assert_eq!(
                    s.points.len(),
                    opts().ltots().len(),
                    "{id}/{}/{}: wrong point count",
                    panel.metric,
                    s.label
                );
                assert!(
                    s.points.iter().all(|p| p.mean.is_finite()),
                    "{id}/{}/{}: non-finite point",
                    panel.metric,
                    s.label
                );
            }
        }
        // Every emitter must handle every artifact.
        let table = emit::render_table(&fig);
        assert!(table.contains(id.trim_start_matches("fig")), "{id}: table");
        let csv = emit::to_csv(&fig);
        assert!(csv.lines().count() > 1, "{id}: empty csv");
        let json = emit::to_json(&fig);
        assert!(lockgran_sim::json::parse(&json).is_ok());
        for panel in &fig.panels {
            let chart = render_chart(panel, &ChartOptions::default());
            assert!(!chart.is_empty(), "{id}/{}: empty chart", panel.metric);
        }
    }
}

#[test]
fn unknown_artifact_is_none() {
    assert!(run_by_id("fig99", &opts()).is_none());
}
