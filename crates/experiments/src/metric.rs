//! Named output metrics.
//!
//! A [`Metric`] names one scalar of [`RunMetrics`] so that figure modules,
//! the CLI and the emitters can refer to the paper's output parameters
//! symbolically.

use lockgran_core::RunMetrics;
use lockgran_sim::{FromJson, Json, ToJson};

/// A scalar output of one simulation run.
// lint:exhaustive(Metric): matches must name variants, not hide them
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Metric {
    /// `throughput = totcom / tmax`.
    Throughput,
    /// Mean response time.
    ResponseTime,
    /// 95th-percentile response time (histogram estimate).
    ResponseP95,
    /// `usefulcpus`: per-processor transaction CPU time.
    UsefulCpu,
    /// `usefulios`: per-processor transaction I/O time.
    UsefulIo,
    /// `lockcpus + lockios`: total lock overhead.
    LockOverhead,
    /// `lockcpus` only.
    LockCpu,
    /// `lockios` only.
    LockIo,
    /// Fraction of lock request attempts denied.
    DenialRate,
    /// Time-average number of active transactions.
    MeanActive,
    /// Mean CPU utilization.
    CpuUtilization,
    /// Mean I/O utilization.
    IoUtilization,
    /// Transaction aborts: processor-failure kills (failure extension)
    /// plus deadlock victims (twophase conflict model).
    Aborts,
    /// Waits-for cycles broken by aborting a victim (twophase conflict
    /// model).
    Deadlocks,
    /// Lock escalations (hierarchical conflict model).
    Escalations,
    /// Intention locks granted (hierarchical conflict model).
    IntentLocks,
}

impl Metric {
    /// All metrics, for CLI listings.
    pub const ALL: [Metric; 16] = [
        Metric::Throughput,
        Metric::ResponseTime,
        Metric::ResponseP95,
        Metric::UsefulCpu,
        Metric::UsefulIo,
        Metric::LockOverhead,
        Metric::LockCpu,
        Metric::LockIo,
        Metric::DenialRate,
        Metric::MeanActive,
        Metric::CpuUtilization,
        Metric::IoUtilization,
        Metric::Aborts,
        Metric::Deadlocks,
        Metric::Escalations,
        Metric::IntentLocks,
    ];

    /// Extract this metric from a run.
    pub fn get(self, m: &RunMetrics) -> f64 {
        match self {
            Metric::Throughput => m.throughput,
            Metric::ResponseTime => m.response_time,
            Metric::ResponseP95 => m.response_time_p95,
            Metric::UsefulCpu => m.usefulcpus,
            Metric::UsefulIo => m.usefulios,
            Metric::LockOverhead => m.lock_overhead(),
            Metric::LockCpu => m.lockcpus,
            Metric::LockIo => m.lockios,
            Metric::DenialRate => m.denial_rate,
            Metric::MeanActive => m.mean_active,
            Metric::CpuUtilization => m.cpu_utilization,
            Metric::IoUtilization => m.io_utilization,
            Metric::Aborts => m.aborts as f64,
            Metric::Deadlocks => m.deadlocks as f64,
            Metric::Escalations => m.escalations as f64,
            Metric::IntentLocks => m.intent_locks as f64,
        }
    }

    /// Short identifier used in CSV/JSON columns.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Throughput => "throughput",
            Metric::ResponseTime => "response_time",
            Metric::ResponseP95 => "response_p95",
            Metric::UsefulCpu => "useful_cpu",
            Metric::UsefulIo => "useful_io",
            Metric::LockOverhead => "lock_overhead",
            Metric::LockCpu => "lock_cpu",
            Metric::LockIo => "lock_io",
            Metric::DenialRate => "denial_rate",
            Metric::MeanActive => "mean_active",
            Metric::CpuUtilization => "cpu_utilization",
            Metric::IoUtilization => "io_utilization",
            Metric::Aborts => "aborts",
            Metric::Deadlocks => "deadlocks",
            Metric::Escalations => "escalations",
            Metric::IntentLocks => "intent_locks",
        }
    }
}

impl ToJson for Metric {
    /// Variant-name string, like the previous serde derive:
    /// `"ResponseTime"`.
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Metric::Throughput => "Throughput",
                Metric::ResponseTime => "ResponseTime",
                Metric::ResponseP95 => "ResponseP95",
                Metric::UsefulCpu => "UsefulCpu",
                Metric::UsefulIo => "UsefulIo",
                Metric::LockOverhead => "LockOverhead",
                Metric::LockCpu => "LockCpu",
                Metric::LockIo => "LockIo",
                Metric::DenialRate => "DenialRate",
                Metric::MeanActive => "MeanActive",
                Metric::CpuUtilization => "CpuUtilization",
                Metric::IoUtilization => "IoUtilization",
                Metric::Aborts => "Aborts",
                Metric::Deadlocks => "Deadlocks",
                Metric::Escalations => "Escalations",
                Metric::IntentLocks => "IntentLocks",
            }
            .to_string(),
        )
    }
}

// lint:covers(Metric): the string match below mirrors the enum
impl FromJson for Metric {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v.as_str() {
            Some("Throughput") => Ok(Metric::Throughput),
            Some("ResponseTime") => Ok(Metric::ResponseTime),
            Some("ResponseP95") => Ok(Metric::ResponseP95),
            Some("UsefulCpu") => Ok(Metric::UsefulCpu),
            Some("UsefulIo") => Ok(Metric::UsefulIo),
            Some("LockOverhead") => Ok(Metric::LockOverhead),
            Some("LockCpu") => Ok(Metric::LockCpu),
            Some("LockIo") => Ok(Metric::LockIo),
            Some("DenialRate") => Ok(Metric::DenialRate),
            Some("MeanActive") => Ok(Metric::MeanActive),
            Some("CpuUtilization") => Ok(Metric::CpuUtilization),
            Some("IoUtilization") => Ok(Metric::IoUtilization),
            Some("Aborts") => Ok(Metric::Aborts),
            Some("Deadlocks") => Ok(Metric::Deadlocks),
            Some("Escalations") => Ok(Metric::Escalations),
            Some("IntentLocks") => Ok(Metric::IntentLocks),
            _ => Err(format!("expected metric variant name, got {v}")),
        }
    }
}

impl std::str::FromStr for Metric {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Metric::ALL
            .iter()
            .copied()
            .find(|m| m.name() == s.to_ascii_lowercase())
            .ok_or_else(|| format!("unknown metric '{s}'"))
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_parse_round_trip() {
        for m in Metric::ALL {
            assert_eq!(m.name().parse::<Metric>().unwrap(), m);
        }
        assert!("bogus".parse::<Metric>().is_err());
    }
}
