//! Parameter-sweep machinery.
//!
//! Every figure in the paper sweeps the number of locks `ltot` from 1 to
//! `dbsize` while varying one other dimension (processors, transaction
//! size, lock I/O cost, partitioning, placement, multiprogramming level).
//! [`sweep_ltot`] runs the base configuration at each `ltot` with `reps`
//! independent replications; figure modules turn the results into
//! [`crate::Series`] per secondary-dimension value.

use lockgran_core::{ModelConfig, RunArena, RunMetrics};
use lockgran_sim::{SimRng, Tally, WorkerPool};

use crate::metric::Metric;
use crate::series::{Point, Series};

/// The paper's log-spaced lock-count sweep, 1 … dbsize = 5000.
pub const LTOT_SWEEP: [u64; 12] = [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000];

/// Reduced sweep for tests / benches.
pub const LTOT_SWEEP_QUICK: [u64; 5] = [1, 10, 100, 1000, 5000];

/// How to run a figure.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Quick mode: reduced sweep, shorter horizon, fewer series — used by
    /// unit tests and Criterion benches.
    pub quick: bool,
    /// Base RNG seed; replication seeds are derived from it.
    pub seed: u64,
    /// Replications per point (quick mode forces 1).
    pub reps: u32,
    /// Override the simulated horizon (time units).
    pub tmax: Option<f64>,
    /// Worker threads for the `(ltot, rep)` fan-out: 0 = resolve from
    /// `LOCKGRAN_JOBS` / available parallelism, 1 = fully sequential.
    /// Results are bit-identical at any value (see [`WorkerPool`]).
    pub jobs: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            quick: false,
            seed: 0x1991_0601, // ICDE 1991
            reps: 3,
            tmax: None,
            jobs: 0,
        }
    }
}

impl RunOptions {
    /// Quick-mode options (for tests and benches).
    pub fn quick() -> Self {
        RunOptions {
            quick: true,
            ..RunOptions::default()
        }
    }

    /// The lock-count sweep for this mode.
    pub fn ltots(&self) -> &'static [u64] {
        if self.quick {
            &LTOT_SWEEP_QUICK
        } else {
            &LTOT_SWEEP
        }
    }

    /// Replications per point for this mode.
    pub fn effective_reps(&self) -> u32 {
        if self.quick {
            1
        } else {
            self.reps.max(1)
        }
    }

    /// Simulated horizon for this mode.
    pub fn effective_tmax(&self) -> f64 {
        self.tmax
            .unwrap_or(if self.quick { 1_500.0 } else { 10_000.0 })
    }

    /// Apply mode-wide overrides (horizon) to a base configuration.
    pub fn apply(&self, cfg: ModelConfig) -> ModelConfig {
        cfg.with_tmax(self.effective_tmax())
    }

    /// Worker count after resolving `jobs = 0` through `LOCKGRAN_JOBS` and
    /// the machine's available parallelism.
    pub fn effective_jobs(&self) -> usize {
        WorkerPool::resolve_jobs(if self.jobs == 0 {
            None
        } else {
            Some(self.jobs)
        })
    }

    /// These options with an explicit worker count.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }
}

/// Results at one sweep point.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The lock count.
    pub ltot: u64,
    /// One [`RunMetrics`] per replication.
    pub runs: Vec<RunMetrics>,
}

impl SweepPoint {
    /// Mean and 95% CI of a metric over this point's replications.
    pub fn estimate(&self, metric: Metric) -> Point {
        let mut t = Tally::new();
        for m in &self.runs {
            t.record(metric.get(m));
        }
        Point {
            x: self.ltot as f64,
            mean: t.mean(),
            ci95: t.ci95_half_width(),
        }
    }
}

/// Run `base` at every `ltot` in `opts.ltots()` with
/// `opts.effective_reps()` replications each.
///
/// Replication seeds derive from `opts.seed` only — not from `ltot` — so
/// every sweep point sees the same transaction streams (common random
/// numbers: curves differ by the system response, not by workload noise).
///
/// All `(ltot, rep)` pairs fan out across a [`WorkerPool`] of
/// `opts.effective_jobs()` threads, each worker streaming its share of
/// the pairs through one private [`RunArena`] — slabs, lock tables, the
/// future-event list and the Yao memo are reused across runs instead of
/// rebuilt per pair. Each pair is still an independent pure function of
/// `(config, seed)` — seeds never depend on execution order, and
/// [`RunArena::run`] is bit-identical to a fresh [`lockgran_core::sim::run`] — and the
/// pool gathers results in submission order, so the output is
/// bit-identical at any worker count (`jobs = 1` runs the exact
/// sequential loop).
///
/// Fault isolation: each `(ltot, rep)` task runs under
/// [`WorkerPool::try_run_with_state`], so one poisoned pair degrades its
/// sweep point (a stderr warning, one fewer replication, a fresh arena
/// for that worker) instead of aborting the whole sweep. Only a point
/// losing *every* replication panics — there is no honest way to report a
/// sweep point with no data.
pub fn sweep_ltot(base: &ModelConfig, opts: &RunOptions) -> Vec<SweepPoint> {
    let root = SimRng::new(opts.seed);
    let reps = opts.effective_reps();
    let rep_seeds: Vec<u64> = (0..reps)
        .map(|r| root.split_index(u64::from(r)).seed())
        .collect();
    let tasks: Vec<_> = opts
        .ltots()
        .iter()
        .flat_map(|&ltot| {
            let cfg = opts.apply(base.clone().with_ltot(ltot));
            rep_seeds.iter().map(move |&seed| {
                let cfg = cfg.clone();
                move |arena: &mut RunArena| arena.run(&cfg, seed)
            })
        })
        .collect();
    let results = WorkerPool::new(opts.effective_jobs()).try_run_with_state(RunArena::new, tasks);
    opts.ltots()
        .iter()
        .zip(results.chunks(reps as usize))
        .map(|(&ltot, chunk)| {
            let runs: Vec<RunMetrics> = chunk
                .iter()
                .filter_map(|r| match r {
                    Ok(m) => Some(m.clone()),
                    Err(p) => {
                        eprintln!(
                            "warning: sweep point ltot={ltot}: {p}; dropping this replication"
                        );
                        None
                    }
                })
                .collect();
            if runs.is_empty() {
                // A point that lost every replication has no data to
                // report; the caller's fault isolation (try_run around
                // the figure) turns this into a figure-level error
                // instead of a process abort.
                panic!("sweep point ltot={ltot}: every replication panicked");
            }
            SweepPoint { ltot, runs }
        })
        .collect()
}

/// Build one labelled series from a sweep.
pub fn series_from(points: &[SweepPoint], metric: Metric, label: impl Into<String>) -> Series {
    Series {
        label: label.into(),
        points: points.iter().map(|p| p.estimate(metric)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_all_points() {
        let base = ModelConfig::table1();
        let opts = RunOptions::quick();
        let pts = sweep_ltot(&base, &opts);
        assert_eq!(pts.len(), LTOT_SWEEP_QUICK.len());
        for (p, &l) in pts.iter().zip(LTOT_SWEEP_QUICK.iter()) {
            assert_eq!(p.ltot, l);
            assert_eq!(p.runs.len(), 1);
            assert!(p.runs[0].totcom > 0);
        }
    }

    #[test]
    fn series_extraction_orders_points() {
        let base = ModelConfig::table1();
        let opts = RunOptions::quick();
        let pts = sweep_ltot(&base, &opts);
        let s = series_from(&pts, Metric::Throughput, "base");
        assert_eq!(s.label, "base");
        let xs: Vec<f64> = s.points.iter().map(|p| p.x).collect();
        assert_eq!(xs, vec![1.0, 10.0, 100.0, 1000.0, 5000.0]);
        assert!(s.points.iter().all(|p| p.mean > 0.0));
        // One replication -> no CI.
        assert!(s.points.iter().all(|p| p.ci95 == 0.0));
    }

    #[test]
    fn sweep_is_deterministic() {
        let base = ModelConfig::table1();
        let opts = RunOptions::quick();
        let a = sweep_ltot(&base, &opts);
        let b = sweep_ltot(&base, &opts);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.runs[0].throughput, y.runs[0].throughput);
            assert_eq!(x.runs[0].response_time, y.runs[0].response_time);
        }
    }

    #[test]
    fn default_options_use_full_sweep() {
        let opts = RunOptions::default();
        assert_eq!(opts.ltots(), &LTOT_SWEEP);
        assert_eq!(opts.effective_reps(), 3);
        assert_eq!(opts.effective_tmax(), 10_000.0);
        let quick = RunOptions::quick();
        assert_eq!(quick.effective_reps(), 1);
        assert_eq!(quick.effective_tmax(), 1_500.0);
    }
}
