//! ASCII line charts.
//!
//! The paper's artifacts are *figures*; [`render_chart`] draws each panel
//! as a terminal plot — log-scaled x (the lock-count sweep spans 1 …
//! 5000) and linear or log y — so `lockgran fig2 --chart` shows the
//! curve shapes directly, one glyph per series.

use std::fmt::Write as _;

use crate::series::Panel;

/// Chart rendering options.
#[derive(Clone, Copy, Debug)]
pub struct ChartOptions {
    /// Plot width in columns (data area, excluding the axis gutter).
    pub width: usize,
    /// Plot height in rows.
    pub height: usize,
    /// Log-scale the y axis (x is always log-scaled: the sweep is
    /// geometric).
    pub log_y: bool,
}

impl Default for ChartOptions {
    fn default() -> Self {
        ChartOptions {
            width: 64,
            height: 16,
            log_y: false,
        }
    }
}

const GLYPHS: &[u8] = b"*o+x#@%&ABCDEF";

fn scale_x(x: f64, lo: f64, hi: f64, width: usize) -> usize {
    debug_assert!(x > 0.0 && lo > 0.0);
    if hi <= lo {
        return 0;
    }
    let t = (x.ln() - lo.ln()) / (hi.ln() - lo.ln());
    ((t * (width - 1) as f64).round() as usize).min(width - 1)
}

fn scale_y(y: f64, lo: f64, hi: f64, height: usize, log: bool) -> usize {
    if hi <= lo {
        return 0;
    }
    let t = if log {
        let floor = lo.max(1e-12);
        ((y.max(floor)).ln() - floor.ln()) / (hi.ln() - floor.ln())
    } else {
        (y - lo) / (hi - lo)
    };
    let row = (t.clamp(0.0, 1.0) * (height - 1) as f64).round() as usize;
    height - 1 - row // row 0 is the top
}

/// Render one panel as an ASCII chart with a legend.
///
/// Returns an empty string for panels with no positive x values (the x
/// axis is logarithmic).
pub fn render_chart(panel: &Panel, opts: &ChartOptions) -> String {
    let xs: Vec<f64> = panel
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.x))
        .filter(|&x| x > 0.0)
        .collect();
    let ys: Vec<f64> = panel
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.mean))
        .collect();
    let (Some(&x_lo), Some(&x_hi)) = (
        xs.iter().min_by(|a, b| a.total_cmp(b)),
        xs.iter().max_by(|a, b| a.total_cmp(b)),
    ) else {
        return String::new();
    };
    let y_lo = if opts.log_y {
        ys.iter()
            .copied()
            .filter(|&y| y > 0.0)
            .fold(f64::INFINITY, f64::min)
    } else {
        0.0f64.min(ys.iter().copied().fold(f64::INFINITY, f64::min))
    };
    let y_hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !y_hi.is_finite() || y_hi <= y_lo {
        return String::new();
    }

    let mut grid = vec![vec![b' '; opts.width]; opts.height];
    for (si, s) in panel.series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        // Mark the points, connecting consecutive ones with interpolated
        // marks so curves read as lines.
        let pts: Vec<(usize, usize)> = s
            .points
            .iter()
            .filter(|p| p.x > 0.0)
            .map(|p| {
                (
                    scale_x(p.x, x_lo, x_hi, opts.width),
                    scale_y(p.mean, y_lo, y_hi, opts.height, opts.log_y),
                )
            })
            .collect();
        for w in pts.windows(2) {
            let (c0, r0) = w[0];
            let (c1, r1) = w[1];
            let steps = (c1.abs_diff(c0)).max(r1.abs_diff(r0)).max(1);
            for k in 0..=steps {
                let c = c0 as f64 + (c1 as f64 - c0 as f64) * k as f64 / steps as f64;
                let r = r0 as f64 + (r1 as f64 - r0 as f64) * k as f64 / steps as f64;
                grid[r.round() as usize][c.round() as usize] = glyph;
            }
        }
        if let Some(&(c, r)) = pts.first() {
            grid[r][c] = glyph;
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "[{}]  y: {:.4} … {:.4}{}",
        panel.metric,
        y_lo,
        y_hi,
        if opts.log_y { " (log)" } else { "" }
    );
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_hi:>9.3}")
        } else if i == opts.height - 1 {
            format!("{y_lo:>9.3}")
        } else {
            " ".repeat(9)
        };
        let _ = writeln!(out, "{label} |{}", String::from_utf8_lossy(row));
    }
    let _ = writeln!(out, "{} +{}", " ".repeat(9), "-".repeat(opts.width));
    let _ = writeln!(
        out,
        "{}  {:<w$}{:>10}",
        " ".repeat(9),
        format!("{}={}", panel.x_label, x_lo),
        format!("{}={} (log)", panel.x_label, x_hi),
        w = opts.width.saturating_sub(10)
    );
    for (si, s) in panel.series.iter().enumerate() {
        let _ = writeln!(
            out,
            "{}  {} {}",
            " ".repeat(9),
            GLYPHS[si % GLYPHS.len()] as char,
            s.label
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{Point, Series};

    fn panel() -> Panel {
        Panel {
            metric: "throughput".into(),
            x_label: "ltot".into(),
            series: vec![
                Series {
                    label: "npros=1".into(),
                    points: vec![
                        Point {
                            x: 1.0,
                            mean: 0.015,
                            ci95: 0.0,
                        },
                        Point {
                            x: 100.0,
                            mean: 0.019,
                            ci95: 0.0,
                        },
                        Point {
                            x: 5000.0,
                            mean: 0.008,
                            ci95: 0.0,
                        },
                    ],
                },
                Series {
                    label: "npros=30".into(),
                    points: vec![
                        Point {
                            x: 1.0,
                            mean: 0.41,
                            ci95: 0.0,
                        },
                        Point {
                            x: 100.0,
                            mean: 0.57,
                            ci95: 0.0,
                        },
                        Point {
                            x: 5000.0,
                            mean: 0.23,
                            ci95: 0.0,
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn renders_with_legend_and_axes() {
        let chart = render_chart(&panel(), &ChartOptions::default());
        assert!(chart.contains("[throughput]"));
        assert!(chart.contains("npros=1"));
        assert!(chart.contains("npros=30"));
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("ltot=1"));
        assert!(chart.contains("ltot=5000"));
    }

    #[test]
    fn peak_row_is_above_trough_row() {
        // The npros=30 optimum (0.57) must be drawn above its fine-end
        // value (0.23): find the columns and compare first-glyph rows.
        let opts = ChartOptions {
            width: 40,
            height: 12,
            log_y: false,
        };
        let chart = render_chart(&panel(), &opts);
        let rows: Vec<&str> = chart.lines().collect();
        // Row containing the maximum value ends up near the top border.
        let first_o = rows.iter().position(|r| r.contains('o')).unwrap();
        let last_o = rows
            .iter()
            .rposition(|r| r.contains('o') && r.contains('|'))
            .unwrap();
        assert!(first_o < last_o, "curve has no vertical extent");
    }

    #[test]
    fn log_y_handles_wide_ranges() {
        let opts = ChartOptions {
            log_y: true,
            ..ChartOptions::default()
        };
        let chart = render_chart(&panel(), &opts);
        assert!(chart.contains("(log)"));
    }

    #[test]
    fn empty_panel_renders_empty() {
        let p = Panel {
            metric: "m".into(),
            x_label: "x".into(),
            series: vec![],
        };
        assert!(render_chart(&p, &ChartOptions::default()).is_empty());
    }

    #[test]
    fn single_point_series_does_not_panic() {
        let p = Panel {
            metric: "m".into(),
            x_label: "x".into(),
            series: vec![Series {
                label: "s".into(),
                points: vec![Point {
                    x: 10.0,
                    mean: 1.0,
                    ci95: 0.0,
                }],
            }],
        };
        let _ = render_chart(&p, &ChartOptions::default());
    }
}
