//! # lockgran-experiments — regenerating the paper's evaluation
//!
//! One module per table/figure of Dandamudi & Au (ICDE 1991), §3:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`figures::table1`] | Table 1 — input parameters & baseline outputs |
//! | [`figures::fig02`]  | Fig 2 — throughput & response vs `ltot` × `npros` |
//! | [`figures::fig03`]  | Fig 3 — useful I/O & CPU time vs `ltot` × `npros` |
//! | [`figures::fig04`]  | Fig 4 — lock overhead, large transactions |
//! | [`figures::fig05`]  | Fig 5 — lock overhead, small transactions |
//! | [`figures::fig06`]  | Fig 6 — throughput & response vs transaction size |
//! | [`figures::fig07`]  | Fig 7 — throughput vs lock I/O time |
//! | [`figures::fig08`]  | Fig 8 — throughput under random partitioning |
//! | [`figures::fig09`]  | Fig 9 — placement strategies, large transactions |
//! | [`figures::fig10`]  | Fig 10 — placement strategies, small transactions |
//! | [`figures::fig11`]  | Fig 11 — placement strategies, 80/20 mix |
//! | [`figures::fig12`]  | Fig 12 — placement strategies, ntrans = 200 |
//!
//! Each module's `run(&RunOptions)` performs the paper's parameter sweep
//! and returns a [`Figure`] — labelled series of `(ltot, mean, ci95)`
//! points — which [`emit`] renders as an aligned text table, CSV, or
//! JSON. The `lockgran` binary drives everything from the command line.

#![warn(missing_docs)]

pub mod chart;
pub mod emit;
pub mod figures;
pub mod metric;
pub mod series;
pub mod sweep;

pub use chart::{render_chart, ChartOptions};
pub use emit::{render_table, to_csv, to_json};
pub use metric::Metric;
pub use series::{Figure, Panel, Point, Series};
pub use sweep::{RunOptions, SweepPoint, LTOT_SWEEP, LTOT_SWEEP_QUICK};
