//! `lockgran` — regenerate the paper's tables and figures from the
//! command line.
//!
//! ```text
//! lockgran list
//! lockgran fig2 [--quick] [--chart] [--seed N] [--reps N] [--tmax T] [--jobs N] [--out DIR]
//! lockgran all  [--quick] [--jobs N] [--out DIR]
//! lockgran ext  [--quick] [--jobs N] [--out DIR]
//! lockgran batch <configs.json> [--seed N] [--out FILE.csv]
//! lockgran timeline [run flags] [--interval X]
//! lockgran warmup [run flags] [--interval X] [--reps R]
//! lockgran run  [--ltot N] [--npros N] [--ntrans N] [--maxtransize N]
//!               [--placement P] [--partitioning P] [--conflict C]
//!               [--areas N] [--escalation N|inf]
//!               [--liotime X] [--tmax T] [--seed N]
//! ```
//!
//! Figure ids are `table1`, `fig2` … `fig12` and the extension
//! experiments `extA` … `extI` (`all` runs the paper set, `ext` the
//! extensions). `--conflict hierarchical` selects the multigranularity
//! lock-table model; `--areas` sets its database → area → granule
//! fan-out and `--escalation` its per-transaction lock-escalation
//! threshold (`inf` = never escalate). `--conflict twophase` selects
//! incremental two-phase locking with waits-for deadlock detection and
//! youngest-victim abort. Figure output is an aligned text table on stdout;
//! `--out DIR` also writes `<id>.txt`, `<id>.csv` and `<id>.json`
//! artifacts. Multi-figure runs are fault-isolated: a figure that
//! panics is reported in an end-of-run summary (and the exit code is
//! nonzero) while the remaining figures still render.

use std::path::PathBuf;
use std::process::ExitCode;

use lockgran_core::{sim, ConflictMode, HierarchySpec, ModelConfig};
use lockgran_experiments::figures::{run_by_id, ALL_IDS, EXT_IDS};
use lockgran_experiments::{chart, emit, Figure, RunOptions};
use lockgran_sim::WorkerPool;
use lockgran_workload::{Partitioning, Placement};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

// lint:covers(ConflictMode): usage text lists every conflict mode
const USAGE: &str = "usage:
  lockgran list
  lockgran <table1|fig2..fig12|all|extA|extB|extC|extD|extE|extF|extG|extH|extI|ext> [--quick] [--chart] [--seed N] [--reps N] [--tmax T] [--jobs N] [--out DIR]
  lockgran batch <configs.json> [--seed N] [--out FILE.csv]
  lockgran timeline [run flags] [--interval X]
  lockgran warmup [run flags] [--interval X] [--reps R]
  lockgran run [--ltot N] [--npros N] [--ntrans N] [--maxtransize N]
               [--placement best|random|worst] [--partitioning horizontal|random]
               [--conflict probabilistic|explicit|hierarchical|twophase]
               [--areas N] [--escalation N|inf]
               [--liotime X] [--tmax T] [--seed N]";

fn dispatch(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing command".into());
    };
    match cmd.as_str() {
        "list" => {
            println!("paper artifacts:");
            for id in ALL_IDS {
                println!("  {id}");
            }
            println!("extension experiments:");
            for id in EXT_IDS {
                println!("  {id}");
            }
            Ok(())
        }
        "run" => run_single(&args[1..]),
        "batch" => run_batch(&args[1..]),
        "timeline" => run_timeline_cmd(&args[1..]),
        "warmup" => run_warmup_cmd(&args[1..]),
        "all" => {
            let (opts, out, show_chart) = parse_fig_flags(&args[1..])?;
            run_figures(&ALL_IDS, &opts, out.as_deref(), show_chart)
        }
        "ext" => {
            let (opts, out, show_chart) = parse_fig_flags(&args[1..])?;
            run_figures(&EXT_IDS, &opts, out.as_deref(), show_chart)
        }
        id if ALL_IDS.contains(&id) || EXT_IDS.contains(&id) => {
            let (opts, out, show_chart) = parse_fig_flags(&args[1..])?;
            run_figure(id, &opts, out.as_deref(), show_chart)
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

fn run_figure(
    id: &str,
    opts: &RunOptions,
    out: Option<&std::path::Path>,
    show_chart: bool,
) -> Result<(), String> {
    eprintln!(
        "running {id} ({} mode, {} replications, {} sweep worker(s))…",
        if opts.quick { "quick" } else { "full" },
        opts.effective_reps(),
        opts.effective_jobs()
    );
    let fig = run_by_id(id, opts).ok_or_else(|| format!("unknown figure '{id}'"))?;
    render_figure(&fig, out, show_chart)
}

/// Run a batch of figures, fanning the figures themselves out across the
/// worker budget: `outer` figures run concurrently, each with
/// `jobs / outer` sweep workers. Results are rendered in catalogue order
/// regardless of completion order, so the output stream is identical to
/// the sequential run.
///
/// Figures are fault-isolated: a figure that panics is collected into an
/// end-of-run summary and returned as an error (→ nonzero exit) after
/// every surviving figure has rendered, instead of tearing down the whole
/// batch mid-flight.
fn run_figures(
    ids: &[&str],
    opts: &RunOptions,
    out: Option<&std::path::Path>,
    show_chart: bool,
) -> Result<(), String> {
    let jobs = opts.effective_jobs();
    let outer = jobs.min(ids.len()).max(1);
    let inner = (jobs / outer).max(1);
    eprintln!(
        "running {} figures ({} mode, {} replications, {jobs} worker(s): {outer} concurrent figure(s) × {inner} sweep worker(s))…",
        ids.len(),
        if opts.quick { "quick" } else { "full" },
        opts.effective_reps(),
    );
    let tasks: Vec<_> = ids
        .iter()
        .map(|&id| {
            let opts = opts.clone().with_jobs(inner);
            move || run_by_id(id, &opts)
        })
        .collect();
    let figs = WorkerPool::new(outer).try_run(tasks);
    let mut failures: Vec<String> = Vec::new();
    for (id, result) in ids.iter().zip(figs) {
        match result {
            Ok(Some(fig)) => {
                if let Err(e) = render_figure(&fig, out, show_chart) {
                    failures.push(format!("{id}: {e}"));
                }
            }
            Ok(None) => failures.push(format!("{id}: unknown figure")),
            Err(p) => failures.push(format!("{id}: panicked: {}", p.message)),
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        let mut summary = format!("{} of {} figures failed:", failures.len(), ids.len());
        for f in &failures {
            summary.push_str("\n  ");
            summary.push_str(f);
        }
        Err(summary)
    }
}

/// Print a computed figure (and write artifacts) — the output side of
/// [`run_figure`], shared with the batched path.
fn render_figure(
    fig: &Figure,
    out: Option<&std::path::Path>,
    show_chart: bool,
) -> Result<(), String> {
    print!("{}", emit::render_table(fig));
    println!();
    if show_chart {
        for panel in &fig.panels {
            println!(
                "{}",
                chart::render_chart(panel, &chart::ChartOptions::default())
            );
        }
    }
    if let Some(dir) = out {
        emit::write_artifacts(fig, dir).map_err(|e| format!("writing artifacts: {e}"))?;
        eprintln!(
            "wrote {}/{{{id}.txt,{id}.csv,{id}.json}}",
            dir.display(),
            id = fig.id
        );
    }
    Ok(())
}

fn parse_fig_flags(args: &[String]) -> Result<(RunOptions, Option<PathBuf>, bool), String> {
    let mut opts = RunOptions::default();
    let mut out = None;
    let mut show_chart = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--chart" => show_chart = true,
            "--seed" => opts.seed = next_val(&mut it, "--seed")?,
            "--reps" => opts.reps = next_val(&mut it, "--reps")?,
            "--tmax" => opts.tmax = Some(next_val(&mut it, "--tmax")?),
            "--jobs" => opts.jobs = next_val(&mut it, "--jobs")?,
            "--out" => out = Some(PathBuf::from(next_str(&mut it, "--out")?)),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok((opts, out, show_chart))
}

/// `lockgran timeline [run flags] [--interval X]` — windowed time series
/// of one run, as a table plus an ASCII chart of throughput over time.
fn run_timeline_cmd(args: &[String]) -> Result<(), String> {
    let (cfg, seed, rest) = parse_run_flags(args)?;
    let mut interval = cfg.tmax / 40.0;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--interval" => interval = next_val(&mut it, "--interval")?,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let (m, points) = sim::run_timeline(&cfg, seed, interval);
    println!(
        "{:>10} {:>8} {:>12} {:>8} {:>8} {:>9} {:>9}",
        "t", "totcom", "throughput", "active", "blocked", "cpu util", "io util"
    );
    for p in &points {
        println!(
            "{:>10.1} {:>8} {:>12.4} {:>8} {:>8} {:>9.3} {:>9.3}",
            p.t,
            p.completions,
            p.throughput,
            p.active,
            p.blocked,
            p.cpu_utilization,
            p.io_utilization
        );
    }
    println!();
    println!(
        "final: throughput {:.4}, response {:.2}",
        m.throughput, m.response_time
    );
    // Throughput-over-time chart (linear x via index is fine here).
    let panel = lockgran_experiments::Panel {
        metric: "throughput over time".into(),
        x_label: "t".into(),
        series: vec![lockgran_experiments::Series {
            label: "throughput".into(),
            points: points
                .iter()
                .map(|p| lockgran_experiments::Point {
                    x: p.t,
                    mean: p.throughput,
                    ci95: 0.0,
                })
                .collect(),
        }],
    };
    println!(
        "{}",
        chart::render_chart(&panel, &chart::ChartOptions::default())
    );
    Ok(())
}

/// `lockgran warmup [run flags] [--interval X] [--reps R]` — Welch
/// warm-up suggestion for a configuration.
fn run_warmup_cmd(args: &[String]) -> Result<(), String> {
    let (cfg, seed, rest) = parse_run_flags(args)?;
    let mut interval = cfg.tmax / 40.0;
    let mut reps = 5u32;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--interval" => interval = next_val(&mut it, "--interval")?,
            "--reps" => reps = next_val(&mut it, "--reps")?,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    match sim::suggest_warmup(&cfg, seed, reps, interval) {
        Some(w) => println!(
            "suggested warmup: {w:.0} time units ({}% of tmax {})",
            (w / cfg.tmax * 100.0).round(),
            cfg.tmax
        ),
        None => println!(
            "no stable warm-up point found — lengthen tmax (currently {}) or widen --interval",
            cfg.tmax
        ),
    }
    Ok(())
}

/// Parse the shared `run`-style configuration flags, returning unparsed
/// extras for the caller.
fn parse_run_flags(args: &[String]) -> Result<(ModelConfig, u64, Vec<String>), String> {
    let mut cfg = ModelConfig::table1();
    let mut seed = 0u64;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ltot" => cfg.ltot = next_val(&mut it, "--ltot")?,
            "--npros" => cfg.npros = next_val(&mut it, "--npros")?,
            "--ntrans" => cfg.ntrans = next_val(&mut it, "--ntrans")?,
            "--maxtransize" => {
                let m: u64 = next_val(&mut it, "--maxtransize")?;
                cfg = cfg.with_maxtransize(m);
            }
            "--placement" => {
                cfg.placement = next_str(&mut it, "--placement")?.parse::<Placement>()?;
            }
            "--partitioning" => {
                cfg.partitioning = next_str(&mut it, "--partitioning")?.parse::<Partitioning>()?;
            }
            "--conflict" => {
                cfg.conflict = next_str(&mut it, "--conflict")?.parse::<ConflictMode>()?;
            }
            "--areas" => {
                hierarchy_of(&mut cfg).areas = next_val(&mut it, "--areas")?;
            }
            "--escalation" => {
                hierarchy_of(&mut cfg).escalation_threshold =
                    parse_escalation(next_str(&mut it, "--escalation")?)?;
            }
            "--liotime" => cfg.liotime = next_val(&mut it, "--liotime")?,
            "--tmax" => cfg.tmax = next_val(&mut it, "--tmax")?,
            "--seed" => seed = next_val(&mut it, "--seed")?,
            other => rest.push(other.to_string()),
        }
    }
    cfg.validate()?;
    Ok((cfg, seed, rest))
}

/// `lockgran batch <configs.json> [--seed N] [--out FILE.csv]`
///
/// The JSON file holds an array of [`ModelConfig`] values (see
/// `ModelConfig::table1()` serialized for a template). Each config runs
/// once; results are printed as CSV (and written to `--out` if given).
fn run_batch(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    let path = next_str(&mut it, "batch")?;
    let mut seed = 0u64;
    let mut out: Option<PathBuf> = None;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = next_val(&mut it, "--seed")?,
            "--out" => out = Some(PathBuf::from(next_str(&mut it, "--out")?)),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let value = lockgran_sim::json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    let configs: Vec<ModelConfig> =
        lockgran_sim::FromJson::from_json(&value).map_err(|e| format!("parsing {path}: {e}"))?;
    let mut csv = String::from(
        "index,ltot,npros,ntrans,placement,partitioning,conflict,throughput,response_time,         usefulcpus,usefulios,lockcpus,lockios,denial_rate
",
    );
    for (i, cfg) in configs.iter().enumerate() {
        cfg.validate()
            .map_err(|e| format!("config #{i} invalid: {e}"))?;
        let m = sim::run(cfg, seed.wrapping_add(i as u64));
        csv.push_str(&format!(
            "{i},{},{},{},{},{},{},{},{},{},{},{},{},{}
",
            cfg.ltot,
            cfg.npros,
            cfg.ntrans,
            cfg.placement,
            cfg.partitioning,
            cfg.conflict.name(),
            m.throughput,
            m.response_time,
            m.usefulcpus,
            m.usefulios,
            m.lockcpus,
            m.lockios,
            m.denial_rate
        ));
    }
    print!("{csv}");
    if let Some(p) = out {
        std::fs::write(&p, &csv).map_err(|e| format!("writing {}: {e}", p.display()))?;
        eprintln!("wrote {}", p.display());
    }
    Ok(())
}

fn run_single(args: &[String]) -> Result<(), String> {
    let mut cfg = ModelConfig::table1();
    let mut seed = 0u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--ltot" => cfg.ltot = next_val(&mut it, "--ltot")?,
            "--npros" => cfg.npros = next_val(&mut it, "--npros")?,
            "--ntrans" => cfg.ntrans = next_val(&mut it, "--ntrans")?,
            "--maxtransize" => {
                let m: u64 = next_val(&mut it, "--maxtransize")?;
                cfg = cfg.with_maxtransize(m);
            }
            "--placement" => {
                cfg.placement = next_str(&mut it, "--placement")?.parse::<Placement>()?;
            }
            "--partitioning" => {
                cfg.partitioning = next_str(&mut it, "--partitioning")?.parse::<Partitioning>()?;
            }
            "--conflict" => {
                cfg.conflict = next_str(&mut it, "--conflict")?.parse::<ConflictMode>()?;
            }
            "--areas" => {
                hierarchy_of(&mut cfg).areas = next_val(&mut it, "--areas")?;
            }
            "--escalation" => {
                hierarchy_of(&mut cfg).escalation_threshold =
                    parse_escalation(next_str(&mut it, "--escalation")?)?;
            }
            "--liotime" => cfg.liotime = next_val(&mut it, "--liotime")?,
            "--tmax" => cfg.tmax = next_val(&mut it, "--tmax")?,
            "--seed" => seed = next_val(&mut it, "--seed")?,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    cfg.validate()?;
    let m = sim::run(&cfg, seed);
    println!(
        "config : ltot={} npros={} ntrans={} placement={} partitioning={} conflict={}",
        cfg.ltot,
        cfg.npros,
        cfg.ntrans,
        cfg.placement,
        cfg.partitioning,
        cfg.conflict.name()
    );
    println!("totcom      = {}", m.totcom);
    println!("throughput  = {:.5}", m.throughput);
    println!("response    = {:.2}", m.response_time);
    println!("totcpus     = {:.1}", m.totcpus);
    println!("totios      = {:.1}", m.totios);
    println!("lockcpus    = {:.1}", m.lockcpus);
    println!("lockios     = {:.1}", m.lockios);
    println!("usefulcpus  = {:.2}", m.usefulcpus);
    println!("usefulios   = {:.2}", m.usefulios);
    println!("denial rate = {:.3}", m.denial_rate);
    println!("mean active = {:.2}", m.mean_active);
    println!("cpu util    = {:.3}", m.cpu_utilization);
    println!("io util     = {:.3}", m.io_utilization);
    if cfg.conflict == ConflictMode::Hierarchical {
        let h = cfg.hierarchy_spec();
        println!(
            "hierarchy   = {} areas, escalation {}",
            h.areas,
            match h.escalation_threshold {
                Some(t) => t.to_string(),
                None => "off".to_string(),
            }
        );
        println!("escalations = {}", m.escalations);
        println!("intent lks  = {}", m.intent_locks);
    }
    if cfg.conflict == ConflictMode::Twophase {
        println!("deadlocks   = {}", m.deadlocks);
        println!("aborts      = {}", m.aborts);
    }
    Ok(())
}

/// Overlay a hierarchy-parameter flag onto the config (creating the spec
/// from defaults on first use).
fn hierarchy_of(cfg: &mut ModelConfig) -> &mut HierarchySpec {
    cfg.hierarchy.get_or_insert_with(HierarchySpec::default)
}

/// Parse an `--escalation` value: a positive integer threshold, or
/// `inf`/`none` for "never escalate".
fn parse_escalation(s: &str) -> Result<Option<u64>, String> {
    match s {
        "inf" | "none" => Ok(None),
        n => n
            .parse::<u64>()
            .map(Some)
            .map_err(|_| format!("--escalation: cannot parse '{n}' (want a count or 'inf')")),
    }
}

fn next_str<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn next_val<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, String> {
    let s = next_str(it, flag)?;
    s.parse().map_err(|_| format!("{flag}: cannot parse '{s}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every command `dispatch` accepts appears in the usage text, so the
    /// help can never drift behind the dispatcher again. Numbered paper
    /// figures are covered by the `fig2..fig12` range shorthand;
    /// everything else must be spelled out.
    #[test]
    fn usage_covers_every_dispatch_command() {
        for cmd in ["list", "run", "batch", "timeline", "warmup", "all", "ext"] {
            assert!(USAGE.contains(cmd), "USAGE is missing command '{cmd}'");
        }
        assert!(
            USAGE.contains("fig2..fig12"),
            "USAGE is missing the fig2..fig12 range"
        );
        for id in ALL_IDS {
            let covered =
                USAGE.contains(id) || (id.starts_with("fig") && USAGE.contains("fig2..fig12"));
            assert!(covered, "USAGE does not cover figure id '{id}'");
        }
        for id in EXT_IDS {
            assert!(USAGE.contains(id), "USAGE is missing extension id '{id}'");
        }
    }

    /// A batch with failing figures renders the survivors and returns a
    /// structured summary error (→ nonzero exit) instead of aborting at
    /// the first failure.
    #[test]
    fn run_figures_collects_failures_into_summary() {
        let mut opts = RunOptions::quick();
        opts.jobs = 1;
        opts.tmax = Some(300.0);
        let err = run_figures(&["no-such-figure", "also-missing"], &opts, None, false)
            .expect_err("bogus ids must fail");
        assert!(err.contains("2 of 2 figures failed"), "summary: {err}");
        assert!(
            err.contains("no-such-figure: unknown figure"),
            "summary: {err}"
        );
        assert!(
            err.contains("also-missing: unknown figure"),
            "summary: {err}"
        );
    }

    /// The dispatcher accepts every catalogued id (they reach the figure
    /// path, not the unknown-command error).
    #[test]
    fn dispatch_recognises_every_catalogued_id() {
        for id in ALL_IDS.iter().chain(EXT_IDS.iter()) {
            // An invalid flag proves the id itself was recognised: the
            // error comes from flag parsing, not `unknown command`.
            let args = vec![id.to_string(), "--bogus".to_string()];
            let err = dispatch(&args).unwrap_err();
            assert!(
                err.contains("unknown flag"),
                "id '{id}' not routed to the figure path: {err}"
            );
        }
    }
}
