//! Result containers: figures, panels, series, points.

use lockgran_sim::{Json, ToJson};

/// One data point of a series.
#[derive(Clone, Copy, Debug)]
pub struct Point {
    /// The swept value (number of locks, `ltot`, unless noted).
    pub x: f64,
    /// Mean over replications.
    pub mean: f64,
    /// 95% confidence half-width over replications (0 for one rep).
    pub ci95: f64,
}

impl ToJson for Point {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("x", self.x.to_json()),
            ("mean", self.mean.to_json()),
            ("ci95", self.ci95.to_json()),
        ])
    }
}

/// A labelled curve.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label, e.g. `npros=30` or `worst/npros=1`.
    pub label: String,
    /// Points in sweep order.
    pub points: Vec<Point>,
}

impl Series {
    /// x of the point with the largest mean (the curve's optimum for
    /// throughput-like metrics).
    pub fn argmax(&self) -> Option<f64> {
        self.points
            .iter()
            .max_by(|a, b| a.mean.total_cmp(&b.mean))
            .map(|p| p.x)
    }

    /// x of the point with the smallest mean.
    pub fn argmin(&self) -> Option<f64> {
        self.points
            .iter()
            .min_by(|a, b| a.mean.total_cmp(&b.mean))
            .map(|p| p.x)
    }

    /// Largest mean on the curve.
    pub fn max_mean(&self) -> Option<f64> {
        self.points.iter().map(|p| p.mean).max_by(f64::total_cmp)
    }

    /// Mean at a given x, if present.
    pub fn at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|p| p.x == x).map(|p| p.mean)
    }
}

impl ToJson for Series {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("label", self.label.to_json()),
            ("points", self.points.to_json()),
        ])
    }
}

/// One plot of a figure (one metric, several curves).
#[derive(Clone, Debug)]
pub struct Panel {
    /// Metric short name (see [`crate::Metric::name`]).
    pub metric: String,
    /// Axis label for x (usually "ltot").
    pub x_label: String,
    /// Curves.
    pub series: Vec<Series>,
}

impl Panel {
    /// Find a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

impl ToJson for Panel {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("metric", self.metric.to_json()),
            ("x_label", self.x_label.to_json()),
            ("series", self.series.to_json()),
        ])
    }
}

/// A reproduced table/figure.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Identifier, e.g. `fig2`.
    pub id: String,
    /// Human title quoting the paper's caption.
    pub title: String,
    /// Panels (Fig 2 and Fig 6 have two: throughput and response time).
    pub panels: Vec<Panel>,
    /// Free-form notes: parameter values, expectations, caveats.
    pub notes: Vec<String>,
}

impl ToJson for Figure {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("id", self.id.to_json()),
            ("title", self.title.to_json()),
            ("panels", self.panels.to_json()),
            ("notes", self.notes.to_json()),
        ])
    }
}

impl Figure {
    /// Find a panel by metric name.
    pub fn panel(&self, metric: &str) -> Option<&Panel> {
        self.panels.iter().find(|p| p.metric == metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> Series {
        Series {
            label: "s".into(),
            points: vec![
                Point {
                    x: 1.0,
                    mean: 0.5,
                    ci95: 0.0,
                },
                Point {
                    x: 10.0,
                    mean: 2.0,
                    ci95: 0.1,
                },
                Point {
                    x: 100.0,
                    mean: 1.0,
                    ci95: 0.1,
                },
            ],
        }
    }

    #[test]
    fn argmax_and_at() {
        let s = series();
        assert_eq!(s.argmax(), Some(10.0));
        assert_eq!(s.argmin(), Some(1.0));
        assert_eq!(s.max_mean(), Some(2.0));
        assert_eq!(s.at(100.0), Some(1.0));
        assert_eq!(s.at(7.0), None);
    }

    #[test]
    fn figure_lookup() {
        let f = Figure {
            id: "t".into(),
            title: "t".into(),
            panels: vec![Panel {
                metric: "throughput".into(),
                x_label: "ltot".into(),
                series: vec![series()],
            }],
            notes: vec![],
        };
        assert!(f.panel("throughput").is_some());
        assert!(f.panel("nope").is_none());
        assert!(f.panel("throughput").unwrap().series("s").is_some());
    }
}
