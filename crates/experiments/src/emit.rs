//! Rendering figures as text tables, CSV and JSON.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::series::Figure;

/// Render a figure as aligned text tables (one block per panel), the rows
/// the paper's plots would be drawn from.
pub fn render_table(fig: &Figure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} — {} ==", fig.id, fig.title);
    for note in &fig.notes {
        let _ = writeln!(out, "   {note}");
    }
    for panel in &fig.panels {
        let _ = writeln!(out, "\n-- {} --", panel.metric);
        // Header: x values from the first series.
        let Some(first) = panel.series.first() else {
            continue;
        };
        let label_w = panel
            .series
            .iter()
            .map(|s| s.label.len())
            .max()
            .unwrap_or(8)
            .max(panel.x_label.len());
        let _ = write!(out, "{:>label_w$}", panel.x_label);
        for p in &first.points {
            let _ = write!(out, " {:>10}", format_x(p.x));
        }
        let _ = writeln!(out);
        for s in &panel.series {
            let _ = write!(out, "{:>label_w$}", s.label);
            for p in &s.points {
                let _ = write!(out, " {:>10.4}", p.mean);
            }
            let _ = writeln!(out);
        }
    }
    out
}

fn format_x(x: f64) -> String {
    if x == x.trunc() {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Long-format CSV: `figure,panel,series,x,mean,ci95`.
pub fn to_csv(fig: &Figure) -> String {
    let mut out = String::from("figure,panel,series,x,mean,ci95\n");
    for panel in &fig.panels {
        for s in &panel.series {
            for p in &s.points {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{}",
                    fig.id,
                    panel.metric,
                    csv_escape(&s.label),
                    p.x,
                    p.mean,
                    p.ci95
                );
            }
        }
    }
    out
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Pretty JSON of the whole figure.
pub fn to_json(fig: &Figure) -> String {
    use lockgran_sim::ToJson as _;
    fig.to_json().pretty()
}

/// Write `<dir>/<id>.txt`, `<dir>/<id>.csv` and `<dir>/<id>.json`.
pub fn write_artifacts(fig: &Figure, dir: &Path) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{}.txt", fig.id)), render_table(fig))?;
    fs::write(dir.join(format!("{}.csv", fig.id)), to_csv(fig))?;
    fs::write(dir.join(format!("{}.json", fig.id)), to_json(fig))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{Panel, Point, Series};

    fn fig() -> Figure {
        Figure {
            id: "figX".into(),
            title: "test figure".into(),
            panels: vec![Panel {
                metric: "throughput".into(),
                x_label: "ltot".into(),
                series: vec![
                    Series {
                        label: "npros=1".into(),
                        points: vec![
                            Point {
                                x: 1.0,
                                mean: 0.0157,
                                ci95: 0.001,
                            },
                            Point {
                                x: 100.0,
                                mean: 0.0196,
                                ci95: 0.002,
                            },
                        ],
                    },
                    Series {
                        label: "npros=30".into(),
                        points: vec![
                            Point {
                                x: 1.0,
                                mean: 0.4591,
                                ci95: 0.01,
                            },
                            Point {
                                x: 100.0,
                                mean: 0.5769,
                                ci95: 0.02,
                            },
                        ],
                    },
                ],
            }],
            notes: vec!["table 1 defaults".into()],
        }
    }

    #[test]
    fn text_table_contains_everything() {
        let t = render_table(&fig());
        assert!(t.contains("figX"));
        assert!(t.contains("table 1 defaults"));
        assert!(t.contains("throughput"));
        assert!(t.contains("npros=30"));
        assert!(t.contains("0.5769"));
        // x header rendered as integers.
        assert!(t.contains("100"));
    }

    #[test]
    fn csv_is_long_format() {
        let c = to_csv(&fig());
        let lines: Vec<&str> = c.trim().lines().collect();
        assert_eq!(lines[0], "figure,panel,series,x,mean,ci95");
        assert_eq!(lines.len(), 1 + 4);
        assert!(lines[1].starts_with("figX,throughput,npros=1,1,"));
    }

    #[test]
    fn csv_escapes_commas() {
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn json_round_trips_structure() {
        let j = to_json(&fig());
        let v = lockgran_sim::json::parse(&j).unwrap();
        assert_eq!(v["id"], "figX");
        assert_eq!(v["panels"][0]["series"][1]["label"], "npros=30");
    }

    #[test]
    fn artifacts_written_to_disk() {
        let dir = std::env::temp_dir().join(format!("lockgran-emit-{}", std::process::id()));
        write_artifacts(&fig(), &dir).unwrap();
        for ext in ["txt", "csv", "json"] {
            let p = dir.join(format!("figX.{ext}"));
            assert!(p.exists(), "{p:?} missing");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
