//! Extension C — sub-transaction scheduling discipline.
//!
//! The paper's §4 (citing Dandamudi & Chow [3]) asserts that "the actual
//! scheduling policy used at the sub-transaction level has only marginal
//! effect on locking granularity". This experiment checks that claim in
//! our model: the Table 1 sweep under FCFS vs shortest-job-first at the
//! per-processor resource queues. Expected: the curves nearly coincide —
//! in particular, the optimum lock count must not move.

use lockgran_core::{ModelConfig, QueueDiscipline};

use super::{figure, sweep_family};
use crate::metric::Metric;
use crate::series::Figure;
use crate::sweep::RunOptions;

/// Run extension experiment C.
pub fn run(opts: &RunOptions) -> Figure {
    let configs = QueueDiscipline::ALL
        .iter()
        .map(|&d| {
            (
                d.name().to_string(),
                ModelConfig::table1().with_npros(10).with_discipline(d),
            )
        })
        .collect();
    let swept = sweep_family(configs, opts);
    figure(
        "extC",
        "Extension: sub-transaction scheduling discipline (FCFS vs SJF), npros = 10",
        &swept,
        &[Metric::Throughput, Metric::ResponseTime],
        vec![
            "Checks the paper's §4 claim that sub-transaction scheduling has only marginal effect."
                .to_string(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discipline_effect_is_marginal() {
        let f = run(&RunOptions::quick());
        let tput = f.panel("throughput").unwrap();
        let fcfs = tput.series("fcfs").unwrap();
        let sjf = tput.series("sjf").unwrap();
        for (a, b) in fcfs.points.iter().zip(sjf.points.iter()) {
            let rel = (a.mean - b.mean).abs() / a.mean;
            assert!(rel < 0.10, "ltot={}: {rel:.3} relative difference", a.x);
        }
        // The optimum does not move.
        assert_eq!(fcfs.argmax(), sjf.argmax());
    }
}
