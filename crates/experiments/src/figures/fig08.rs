//! Figure 8 — "Effects of number of locks and number of processors on
//! throughput (random partitioning)".
//!
//! The Figure 2 sweep repeated with random partitioning: each transaction
//! fans out to `PU_i ~ U(1, npros)` random distinct processors instead of
//! all of them. Expected (paper §3.4): the processor-count ordering and
//! the convex shape are unchanged, but every curve sits below its
//! horizontal-partitioning counterpart — larger sub-transactions mean
//! longer queueing, service and synchronization times.

use lockgran_core::ModelConfig;
use lockgran_workload::Partitioning;

use super::{figure, npros_grid, sweep_family};
use crate::metric::Metric;
use crate::series::Figure;
use crate::sweep::RunOptions;

/// Reproduce Figure 8.
pub fn run(opts: &RunOptions) -> Figure {
    let configs = npros_grid(opts)
        .iter()
        .map(|&n| {
            (
                format!("npros={n}"),
                ModelConfig::table1()
                    .with_npros(n)
                    .with_partitioning(Partitioning::Random),
            )
        })
        .collect();
    let swept = sweep_family(configs, opts);
    figure(
        "fig8",
        "Effects of number of locks and number of processors on throughput (random partitioning)",
        &swept,
        &[Metric::Throughput, Metric::ResponseTime],
        vec![
            "Random partitioning: PU_i ~ U(1, npros) distinct processors.".to_string(),
            "Expected: same shape/ordering as fig2 but uniformly lower throughput.".to_string(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig02;

    #[test]
    fn processor_ordering_is_preserved() {
        let f = run(&RunOptions::quick());
        let tput = f.panel("throughput").unwrap();
        let one = tput.series("npros=1").unwrap();
        let thirty = tput.series("npros=30").unwrap();
        for (a, b) in one.points.iter().zip(thirty.points.iter()) {
            assert!(b.mean > a.mean, "ltot={}", a.x);
        }
    }

    #[test]
    fn horizontal_partitioning_beats_random() {
        let opts = RunOptions::quick();
        let random = run(&opts);
        let horizontal = fig02::run(&opts);
        // Paper §3.4: for the same npros, every horizontal curve lies
        // above the corresponding random curve (npros = 1 is identical
        // by construction, so compare a parallel system).
        let h = horizontal
            .panel("throughput")
            .unwrap()
            .series("npros=30")
            .unwrap()
            .clone();
        let r = random
            .panel("throughput")
            .unwrap()
            .series("npros=30")
            .unwrap()
            .clone();
        for (hp, rp) in h.points.iter().zip(r.points.iter()) {
            assert!(
                hp.mean > rp.mean,
                "ltot={}: horizontal {} !> random {}",
                hp.x,
                hp.mean,
                rp.mean
            );
        }
    }
}
