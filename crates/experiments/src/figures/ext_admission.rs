//! Extension A — transaction-level admission control under heavy load.
//!
//! Not a paper figure: the paper's §3.7 observes that at `ntrans = 200`
//! fine granularity collapses under lock-processing overhead and points
//! to "transaction level scheduling" (their companion papers [3, 4]) as
//! the remedy. This experiment implements that remedy — an admission
//! cap on the number of transactions competing for locks — and repeats
//! the Figure 12 sweep with caps of 20 and 50 against the uncapped
//! system. Expected: the cap restores most of the fine-granularity
//! throughput by cutting denied lock attempts, at the price of pending
//! queueing.

use lockgran_core::ModelConfig;

use super::{figure, sweep_family};
use crate::metric::Metric;
use crate::series::Figure;
use crate::sweep::RunOptions;

/// Run extension experiment A.
pub fn run(opts: &RunOptions) -> Figure {
    let caps: &[Option<u32>] = &[None, Some(50), Some(20)];
    let configs = caps
        .iter()
        .map(|&cap| {
            let label = match cap {
                None => "uncapped".to_string(),
                Some(c) => format!("mpl={c}"),
            };
            (
                label,
                ModelConfig::table1()
                    .with_ntrans(200)
                    .with_npros(20)
                    .with_mpl_limit(cap),
            )
        })
        .collect();
    let swept = sweep_family(configs, opts);
    figure(
        "extA",
        "Extension: admission control (transaction-level scheduling) under heavy load (ntrans = 200, npros = 20)",
        &swept,
        &[Metric::Throughput, Metric::DenialRate, Metric::ResponseTime],
        vec![
            "The paper's §3.7 remedy, implemented: cap the transactions competing for locks."
                .to_string(),
            "Expected: caps recover fine-granularity throughput by slashing denied lock attempts.".to_string(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_control_rescues_fine_granularity() {
        let f = run(&RunOptions::quick());
        let tput = f.panel("throughput").unwrap();
        let uncapped = tput.series("uncapped").unwrap().at(5000.0).unwrap();
        let capped = tput.series("mpl=20").unwrap().at(5000.0).unwrap();
        assert!(
            capped > uncapped,
            "cap did not help at fine granularity: {capped} !> {uncapped}"
        );
    }

    #[test]
    fn admission_control_slashes_denials() {
        let f = run(&RunOptions::quick());
        let denial = f.panel("denial_rate").unwrap();
        let uncapped = denial.series("uncapped").unwrap().at(5000.0).unwrap();
        let capped = denial.series("mpl=20").unwrap().at(5000.0).unwrap();
        assert!(capped < uncapped, "{capped} !< {uncapped}");
    }

    #[test]
    fn caps_never_hurt_throughput() {
        // Even at the coarse end the cap helps: without it, every
        // completion wakes ~199 blocked transactions whose retry each
        // burns a full lock-overhead charge. With it, at most mpl-1
        // retry. So capped throughput dominates everywhere.
        let f = run(&RunOptions::quick());
        let tput = f.panel("throughput").unwrap();
        let uncapped = tput.series("uncapped").unwrap().clone();
        let capped = tput.series("mpl=20").unwrap().clone();
        for (u, c) in uncapped.points.iter().zip(capped.points.iter()) {
            assert!(
                c.mean >= u.mean * 0.95,
                "ltot={}: capped {} < uncapped {}",
                u.x,
                c.mean,
                u.mean
            );
        }
    }
}
