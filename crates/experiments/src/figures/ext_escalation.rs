//! Extension G — lock escalation over the multigranularity hierarchy.
//!
//! The paper resolves the granularity trade-off *statically*: pick one
//! `ltot` for the whole run. The hierarchical conflict model resolves it
//! *per transaction*: leaf granules are locked individually until a
//! transaction declares at least `escalation_threshold` granules under
//! one area, at which point it trades them for a single area lock. This
//! experiment sweeps `ltot` under thresholds 1, 4, 16 and ∞ (never):
//!
//! * threshold 1 collapses every request to a whole-database lock — the
//!   paper's `ltot = 1` extreme at every sweep point;
//! * threshold ∞ is pure multigranularity locking, which admits exactly
//!   the schedules of the flat explicit table (intent locks never
//!   conflict with each other);
//! * intermediate thresholds interpolate, trading lost concurrency
//!   (coarser effective locks) against fewer lock-table entries.

use lockgran_core::{ConflictMode, HierarchySpec, ModelConfig};

use super::{figure, sweep_family};
use crate::metric::Metric;
use crate::series::Figure;
use crate::sweep::RunOptions;

/// Area count for the database → area → granule tree.
const AREAS: u64 = 16;

/// The swept escalation thresholds (`None` = never escalate).
const THRESHOLDS: [Option<u64>; 4] = [Some(1), Some(4), Some(16), None];

fn threshold_label(t: Option<u64>) -> String {
    match t {
        Some(t) => format!("threshold={t}"),
        None => "threshold=inf".to_string(),
    }
}

/// Run extension experiment G.
pub fn run(opts: &RunOptions) -> Figure {
    let configs = THRESHOLDS
        .iter()
        .map(|&t| {
            (
                threshold_label(t),
                ModelConfig::table1()
                    .with_npros(10)
                    .with_conflict(ConflictMode::Hierarchical)
                    .with_hierarchy(Some(
                        HierarchySpec::default()
                            .with_areas(AREAS)
                            .with_escalation_threshold(t),
                    )),
            )
        })
        .collect();
    let swept = sweep_family(configs, opts);
    figure(
        "extG",
        "Extension: lock escalation thresholds over the multigranularity hierarchy (npros = 10, 16 areas)",
        &swept,
        &[
            Metric::Throughput,
            Metric::ResponseTime,
            Metric::Escalations,
            Metric::MeanActive,
        ],
        vec![
            "Hierarchical mode: database -> area -> granule tree, IX intents above X leaf locks.".to_string(),
            "threshold=1 escalates every request to a whole-database lock (the ltot=1 extreme everywhere).".to_string(),
            "threshold=inf never escalates: pure multigranularity, schedules identical to the explicit table.".to_string(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_one_serializes_at_every_granularity() {
        let f = run(&RunOptions::quick());
        let active = f.panel("mean_active").unwrap();
        let s = active.series("threshold=1").unwrap();
        for p in &s.points {
            assert!(
                p.mean <= 1.0 + 1e-9,
                "ltot={}: mean_active {} > 1 under immediate escalation",
                p.x,
                p.mean
            );
        }
    }

    #[test]
    fn never_escalating_reports_zero_escalations() {
        let f = run(&RunOptions::quick());
        let esc = f.panel("escalations").unwrap();
        let inf = esc.series("threshold=inf").unwrap();
        assert!(inf.points.iter().all(|p| p.mean == 0.0));
        // ... and the eager policy escalates constantly.
        let one = esc.series("threshold=1").unwrap();
        assert!(one.points.iter().any(|p| p.mean > 0.0));
    }

    #[test]
    fn lower_thresholds_cost_throughput_at_fine_granularity() {
        // At ltot = 5000 the flat table admits lots of concurrency;
        // escalating at 1 declared granule throws all of it away.
        let f = run(&RunOptions::quick());
        let tput = f.panel("throughput").unwrap();
        let eager = tput.series("threshold=1").unwrap().at(5000.0).unwrap();
        let never = tput.series("threshold=inf").unwrap().at(5000.0).unwrap();
        assert!(
            eager < never,
            "eager escalation ({eager}) should trail never-escalate ({never}) at ltot=5000"
        );
    }
}
