//! Figure 7 — "Effects of number of locks and lock I/O time on throughput
//! (npros = 10)".
//!
//! `liotime ∈ {0.2, 0.1, 0}` — the last models a memory-resident lock
//! table. Expected (paper §3.3): lower lock I/O cost tolerates more locks
//! before overhead dominates; even with `liotime = 0` the curve is flat
//! past ~100 locks — finer granularity stops helping, it just stops
//! hurting.

use lockgran_core::ModelConfig;

use super::{figure, sweep_family};
use crate::metric::Metric;
use crate::series::Figure;
use crate::sweep::RunOptions;

/// The lock-I/O-cost grid.
pub const LIOTIMES: [f64; 3] = [0.2, 0.1, 0.0];

/// Reproduce Figure 7.
pub fn run(opts: &RunOptions) -> Figure {
    let configs = LIOTIMES
        .iter()
        .map(|&lio| {
            (
                format!("liotime={lio}"),
                ModelConfig::table1().with_npros(10).with_liotime(lio),
            )
        })
        .collect();
    let swept = sweep_family(configs, opts);
    figure(
        "fig7",
        "Effects of number of locks and lock I/O time on throughput (npros = 10)",
        &swept,
        &[Metric::Throughput, Metric::LockIo],
        vec![
            "liotime = 0 models a main-memory lock table.".to_string(),
            "Expected: cheaper lock I/O flattens the fine-granularity penalty; plateau past ~100 locks.".to_string(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheaper_lock_io_helps_at_fine_granularity() {
        let f = run(&RunOptions::quick());
        let tput = f.panel("throughput").unwrap();
        let costly = tput.series("liotime=0.2").unwrap();
        let free = tput.series("liotime=0").unwrap();
        // At entity-level locking the memory-resident table wins clearly.
        assert!(
            free.at(5000.0).unwrap() > costly.at(5000.0).unwrap() * 1.2,
            "free {} vs costly {}",
            free.at(5000.0).unwrap(),
            costly.at(5000.0).unwrap()
        );
    }

    #[test]
    fn zero_lock_io_plateaus_instead_of_peaks() {
        // With liotime = 0 the throughput at 5000 locks stays within ~15%
        // of the optimum — fine granularity no longer *hurts* much.
        let f = run(&RunOptions::quick());
        let free = f.panel("throughput").unwrap().series("liotime=0").unwrap();
        let best = free.max_mean().unwrap();
        let fine = free.at(5000.0).unwrap();
        assert!(fine > 0.7 * best, "fine {fine} vs best {best}");
    }

    #[test]
    fn lock_io_metric_tracks_cost_parameter() {
        let f = run(&RunOptions::quick());
        let lockio = f.panel("lock_io").unwrap();
        let free = lockio.series("liotime=0").unwrap();
        assert!(free.points.iter().all(|p| p.mean == 0.0));
        let half = lockio.series("liotime=0.1").unwrap();
        let full = lockio.series("liotime=0.2").unwrap();
        // At the fine end, lock I/O scales with the per-lock cost.
        let ratio = full.at(5000.0).unwrap() / half.at(5000.0).unwrap();
        assert!((1.2..=2.8).contains(&ratio), "ratio {ratio}");
    }
}
