//! Figure 2 — "Effects of number of locks and number of processors on
//! throughput and response time".
//!
//! Table 1 inputs; `npros ∈ {1, 2, 5, 10, 20, 30}`; `ltot` swept 1 …
//! `dbsize`. Expected shape (paper §3.1): throughput convex in `ltot`
//! with the optimum below 200 locks for every processor count, curves
//! steeper (larger penalty away from the optimum) at high `npros`;
//! response time convex, decreasing in `npros` and flattening for large
//! systems.

use lockgran_core::ModelConfig;

use super::{figure, npros_grid, sweep_family};
use crate::metric::Metric;
use crate::series::Figure;
use crate::sweep::RunOptions;

/// Reproduce Figure 2.
pub fn run(opts: &RunOptions) -> Figure {
    let configs = npros_grid(opts)
        .iter()
        .map(|&n| (format!("npros={n}"), ModelConfig::table1().with_npros(n)))
        .collect();
    let swept = sweep_family(configs, opts);
    figure(
        "fig2",
        "Effects of number of locks and number of processors on throughput and response time",
        &swept,
        &[Metric::Throughput, Metric::ResponseTime],
        vec![
            "Table 1 inputs; horizontal partitioning; best placement.".to_string(),
            "Expected: convex throughput, optimum < 200 locks; response time decreasing in npros."
                .to_string(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_increases_with_processors() {
        let f = run(&RunOptions::quick());
        let tput = f.panel("throughput").unwrap();
        // At every ltot, 30 processors beat 1.
        let one = tput.series("npros=1").unwrap();
        let thirty = tput.series("npros=30").unwrap();
        for (a, b) in one.points.iter().zip(thirty.points.iter()) {
            assert!(b.mean > a.mean, "ltot={}: {} !> {}", a.x, b.mean, a.mean);
        }
    }

    #[test]
    fn response_time_decreases_with_processors() {
        let f = run(&RunOptions::quick());
        let resp = f.panel("response_time").unwrap();
        let one = resp.series("npros=1").unwrap();
        let thirty = resp.series("npros=30").unwrap();
        for (a, b) in one.points.iter().zip(thirty.points.iter()) {
            assert!(b.mean < a.mean, "ltot={}: {} !< {}", a.x, b.mean, a.mean);
        }
    }

    #[test]
    fn throughput_optimum_is_interior_and_below_200() {
        let f = run(&RunOptions::quick());
        for s in &f.panel("throughput").unwrap().series {
            let best = s.argmax().unwrap();
            assert!(best < 200.0, "{}: optimum at {best}", s.label);
            // Entity-level locking is strictly worse than the optimum.
            let at_max = s.points.last().unwrap().mean;
            assert!(at_max < s.max_mean().unwrap(), "{}", s.label);
        }
    }
}
