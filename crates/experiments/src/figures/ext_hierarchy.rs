//! Extension H — three-way conflict-model validation overlay.
//!
//! extB validates the paper's probabilistic conflict draw against a flat
//! explicit lock table. This experiment adds the third production rung:
//! the full multigranularity hierarchy with intention locks (escalation
//! off). Under uniform access the hierarchical protocol admits exactly
//! the explicit table's schedules — the overlay makes that visible — and
//! under an 80/20 hot spot the real lock tables separate from the
//! probabilistic draw, whose `L_j / ltot` conflict estimate assumes
//! uniform access and cannot see skew at all.

use lockgran_core::{ConflictMode, HierarchySpec, ModelConfig};
use lockgran_workload::HotSpot;

use super::{figure, sweep_family};
use crate::metric::Metric;
use crate::series::Figure;
use crate::sweep::RunOptions;

fn hierarchical(base: ModelConfig) -> ModelConfig {
    base.with_conflict(ConflictMode::Hierarchical)
        .with_hierarchy(Some(
            HierarchySpec::default()
                .with_areas(16)
                .with_escalation_threshold(None),
        ))
}

/// Run extension experiment H.
pub fn run(opts: &RunOptions) -> Figure {
    let base = ModelConfig::table1().with_npros(10);
    let hot = HotSpot::eighty_twenty();
    let configs = vec![
        (
            "probabilistic/uniform".to_string(),
            base.clone().with_conflict(ConflictMode::Probabilistic),
        ),
        (
            "explicit/uniform".to_string(),
            base.clone().with_conflict(ConflictMode::Explicit),
        ),
        (
            "hierarchical/uniform".to_string(),
            hierarchical(base.clone()),
        ),
        (
            "explicit/hot 80/20".to_string(),
            base.clone()
                .with_conflict(ConflictMode::Explicit)
                .with_hot_spot(Some(hot)),
        ),
        (
            "hierarchical/hot 80/20".to_string(),
            hierarchical(base.with_hot_spot(Some(hot))),
        ),
    ];
    let swept = sweep_family(configs, opts);
    figure(
        "extH",
        "Extension: probabilistic vs explicit vs hierarchical conflict models, uniform and 80/20 access (npros = 10)",
        &swept,
        &[Metric::Throughput, Metric::DenialRate],
        vec![
            "Hierarchical mode runs with escalation off (16 areas), so intent locks never conflict.".to_string(),
            "Expected: hierarchical/uniform coincides with explicit/uniform point for point.".to_string(),
            "The probabilistic L_j/ltot draw assumes uniform access; under the 80/20 hot spot only the lock-table models see the extra contention.".to_string(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_without_escalation_matches_explicit_exactly() {
        // Same access draws, same admitted schedules, same event
        // sequence: the curves must be bit-identical, not just close.
        let f = run(&RunOptions::quick());
        for panel in &f.panels {
            let e = panel.series("explicit/uniform").unwrap();
            let h = panel.series("hierarchical/uniform").unwrap();
            for (pe, ph) in e.points.iter().zip(h.points.iter()) {
                assert_eq!(
                    pe.mean, ph.mean,
                    "{} diverged at ltot={}",
                    panel.metric, pe.x
                );
            }
        }
    }

    #[test]
    fn skew_separates_lock_tables_from_the_probabilistic_draw() {
        let f = run(&RunOptions::quick());
        let denial = f.panel("denial_rate").unwrap();
        let uniform = denial.series("hierarchical/uniform").unwrap();
        let hot = denial.series("hierarchical/hot 80/20").unwrap();
        // At moderate granularity the hot set concentrates conflicts.
        for x in [100.0, 1000.0] {
            assert!(
                hot.at(x).unwrap() > uniform.at(x).unwrap(),
                "ltot={x}: hot spot did not raise hierarchical denials"
            );
        }
    }

    #[test]
    fn probabilistic_stays_in_range_of_the_lock_tables() {
        let f = run(&RunOptions::quick());
        let tput = f.panel("throughput").unwrap();
        let p = tput.series("probabilistic/uniform").unwrap();
        let e = tput.series("explicit/uniform").unwrap();
        for (pp, ee) in p.points.iter().zip(e.points.iter()) {
            let ratio = pp.mean / ee.mean;
            assert!((0.5..=2.0).contains(&ratio), "ltot={}: ratio {ratio}", pp.x);
        }
    }
}
