//! Figure 6 — "Effects of number of locks and transaction size on
//! throughput and response time (npros = 10)".
//!
//! `maxtransize ∈ {50, 100, 500, 2500, 5000}` (mean transaction size 0.5%
//! … 50% of the database), `npros = 10`. Expected (paper §3.2): smaller
//! transactions yield much higher throughput and steeper curves; the
//! optimum shifts right (more locks) as transactions shrink, but stays
//! below 200 locks; response time is flatter for small transactions.

use lockgran_core::ModelConfig;

use super::{figure, sweep_family};
use crate::metric::Metric;
use crate::series::Figure;
use crate::sweep::RunOptions;

/// The transaction-size grid (maxtransize values).
pub fn sizes(opts: &RunOptions) -> &'static [u64] {
    if opts.quick {
        &[50, 500, 5000]
    } else {
        &[50, 100, 500, 2500, 5000]
    }
}

/// Reproduce Figure 6.
pub fn run(opts: &RunOptions) -> Figure {
    let configs = sizes(opts)
        .iter()
        .map(|&m| {
            (
                format!("maxtransize={m}"),
                ModelConfig::table1().with_npros(10).with_maxtransize(m),
            )
        })
        .collect();
    let swept = sweep_family(configs, opts);
    figure(
        "fig6",
        "Effects of number of locks and transaction size on throughput and response time (npros = 10)",
        &swept,
        &[Metric::Throughput, Metric::ResponseTime],
        vec![
            "npros = 10; mean transaction size = maxtransize/2 ≈ 0.5%–50% of dbsize.".to_string(),
            "Expected: smaller transactions → higher throughput, steeper curves, optimum shifts right.".to_string(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smaller_transactions_give_higher_throughput() {
        let f = run(&RunOptions::quick());
        let tput = f.panel("throughput").unwrap();
        let small = tput.series("maxtransize=50").unwrap();
        let large = tput.series("maxtransize=5000").unwrap();
        for (s, l) in small.points.iter().zip(large.points.iter()) {
            assert!(s.mean > l.mean, "ltot={}: {} !> {}", s.x, s.mean, l.mean);
        }
    }

    #[test]
    fn smaller_transactions_give_lower_response_time() {
        let f = run(&RunOptions::quick());
        let resp = f.panel("response_time").unwrap();
        let small = resp.series("maxtransize=50").unwrap();
        let large = resp.series("maxtransize=5000").unwrap();
        for (s, l) in small.points.iter().zip(large.points.iter()) {
            assert!(s.mean < l.mean, "ltot={}", s.x);
        }
    }

    #[test]
    fn optimum_shifts_right_for_smaller_transactions() {
        let f = run(&RunOptions::quick());
        let tput = f.panel("throughput").unwrap();
        let small_opt = tput.series("maxtransize=50").unwrap().argmax().unwrap();
        let large_opt = tput.series("maxtransize=5000").unwrap().argmax().unwrap();
        assert!(
            small_opt >= large_opt,
            "small optimum {small_opt} < large optimum {large_opt}"
        );
    }
}
