//! Table 1 — "Input parameters used in the simulation experiments".
//!
//! The paper's Table 1 fixes the baseline inputs used by §3.1–§3.4. The
//! scan of the table itself is unreadable, but every value appears in the
//! running text (§2 examples and §3 narration); this module records them
//! and — as a sanity anchor — runs the baseline configuration over the
//! lock sweep so the reader can see the outputs every figure is built
//! from.

use lockgran_core::ModelConfig;

use super::{figure, sweep_family};
use crate::metric::Metric;
use crate::series::Figure;
use crate::sweep::RunOptions;

/// Reproduce Table 1 (inputs as notes, baseline outputs as a panel set).
pub fn run(opts: &RunOptions) -> Figure {
    let cfg = ModelConfig::table1();
    let notes = vec![
        format!("dbsize       = {}", cfg.dbsize),
        format!("ntrans       = {}", cfg.ntrans),
        "maxtransize  = 500 (NU_i ~ U(1, 500), mean ≈ 250)".to_string(),
        format!("cputime      = {}", cfg.cputime),
        format!("iotime       = {}", cfg.iotime),
        format!("lcputime     = {}", cfg.lcputime),
        format!("liotime      = {}", cfg.liotime),
        format!(
            "npros        = {} (baseline; figures sweep 1–30)",
            cfg.npros
        ),
        format!("tmax         = {} time units", opts.effective_tmax()),
        "partitioning = horizontal, placement = best, conflicts = probabilistic".to_string(),
    ];
    let swept = sweep_family(vec![("table1 baseline".to_string(), cfg)], opts);
    figure(
        "table1",
        "Input parameters used in the simulation experiments (baseline outputs)",
        &swept,
        &[
            Metric::Throughput,
            Metric::ResponseTime,
            Metric::UsefulCpu,
            Metric::UsefulIo,
            Metric::LockOverhead,
            Metric::DenialRate,
        ],
        notes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_outputs_are_positive() {
        let f = run(&RunOptions::quick());
        assert_eq!(f.id, "table1");
        assert_eq!(f.panels.len(), 6);
        let tput = f.panel("throughput").unwrap();
        assert_eq!(tput.series.len(), 1);
        assert!(tput.series[0].points.iter().all(|p| p.mean > 0.0));
        // Notes must record every paper input.
        for key in [
            "dbsize", "ntrans", "cputime", "iotime", "lcputime", "liotime",
        ] {
            assert!(f.notes.iter().any(|n| n.contains(key)), "{key} missing");
        }
    }
}
