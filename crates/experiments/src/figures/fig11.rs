//! Figure 11 — "Effects of number of locks and granule placement on
//! throughput with mixed transactions: 80% small and 20% large
//! (npros = 30)".
//!
//! Transaction sizes drawn from the paper's §3.6 mixture — 80%
//! `U(1, 50)`, 20% `U(1, 500)`. Expected: every placement curve falls
//! between its Figure 9 (all large) and Figure 10 (all small)
//! counterparts, dragged markedly down by the 20% large transactions
//! (the paper's example: at `ltot = dbsize`, npros = 30, small-only,
//! large-only and mixed throughputs relate roughly 10 : 1 : 2).

use lockgran_core::ModelConfig;
use lockgran_workload::{Placement, SizeDistribution};

use super::{figure, sweep_family};
use crate::metric::Metric;
use crate::series::Figure;
use crate::sweep::RunOptions;

/// Reproduce Figure 11.
pub fn run(opts: &RunOptions) -> Figure {
    let configs = Placement::ALL
        .iter()
        .map(|&p| {
            (
                p.name().to_string(),
                ModelConfig::table1()
                    .with_npros(30)
                    .with_size(SizeDistribution::eighty_twenty())
                    .with_placement(p),
            )
        })
        .collect();
    let swept = sweep_family(configs, opts);
    figure(
        "fig11",
        "Effects of number of locks and granule placement on throughput with mixed transactions: 80% small and 20% large (npros = 30)",
        &swept,
        &[Metric::Throughput],
        vec![
            "Sizes: 80% U(1,50) + 20% U(1,500); npros = 30.".to_string(),
            "Expected: curves between fig9 (all large) and fig10 (all small); large tail dominates.".to_string(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_falls_between_all_small_and_all_large() {
        let opts = RunOptions::quick();
        let mixed = run(&opts);
        let large = crate::figures::fig09::run(&opts);
        let small = crate::figures::fig10::run(&opts);
        for placement in ["worst", "random"] {
            let m = mixed
                .panel("throughput")
                .unwrap()
                .series(placement)
                .unwrap()
                .at(5000.0)
                .unwrap();
            let l = large
                .panel("throughput")
                .unwrap()
                .series(&format!("{placement}/npros=30"))
                .unwrap()
                .at(5000.0)
                .unwrap();
            let s = small
                .panel("throughput")
                .unwrap()
                .series(&format!("{placement}/npros=30"))
                .unwrap()
                .at(5000.0)
                .unwrap();
            assert!(
                l < m && m < s,
                "{placement}: large {l}, mixed {m}, small {s}"
            );
        }
    }

    #[test]
    fn large_tail_drags_mix_well_below_small_only() {
        // Paper: even 20% large transactions substantially affect
        // throughput — the mix reaches well under half of small-only.
        let opts = RunOptions::quick();
        let mixed = run(&opts);
        let small = crate::figures::fig10::run(&opts);
        let m = mixed
            .panel("throughput")
            .unwrap()
            .series("worst")
            .unwrap()
            .at(5000.0)
            .unwrap();
        let s = small
            .panel("throughput")
            .unwrap()
            .series("worst/npros=30")
            .unwrap()
            .at(5000.0)
            .unwrap();
        assert!(m < 0.6 * s, "mixed {m} not well below small-only {s}");
    }
}
