//! Extension F — processor failure and repair.
//!
//! The paper's machine never fails; real shared-nothing lock services
//! lose nodes and with them every transaction whose sub-transactions ran
//! there. This experiment layers an exponential fail/repair process
//! (mean time between failures `mtbf`, mean time to repair `mttr`) on
//! the Table 1 baseline and sweeps `ltot` at several failure rates.
//! A failed processor stalls new work until repair; running transactions
//! with a sub-transaction there abort, release all their locks through
//! the ordinary wake path, and re-execute from the lock request.
//!
//! The question: does fine granularity amplify failure cost (every abort
//! wastes more finished sub-transaction work because transactions
//! actually run concurrently) or dampen it (less blocking means fewer
//! transactions exposed per failure)? The "no failures" series is the
//! Table 1 baseline verbatim — bit-identical, since a config without a
//! `FailureSpec` draws no failure randomness.

use lockgran_core::ModelConfig;
use lockgran_workload::FailureSpec;

use super::{figure, sweep_family};
use crate::metric::Metric;
use crate::series::Figure;
use crate::sweep::RunOptions;

/// Mean time to repair, in time units, shared by every failing series.
const MTTR: f64 = 50.0;

/// Run extension experiment F.
pub fn run(opts: &RunOptions) -> Figure {
    let base = ModelConfig::table1();
    let configs = vec![
        ("no failures".to_string(), base.clone()),
        (
            "mtbf 2000".to_string(),
            base.clone()
                .with_failure(Some(FailureSpec::new(2000.0, MTTR))),
        ),
        (
            "mtbf 500".to_string(),
            base.clone()
                .with_failure(Some(FailureSpec::new(500.0, MTTR))),
        ),
        (
            "mtbf 100".to_string(),
            base.with_failure(Some(FailureSpec::new(100.0, MTTR))),
        ),
    ];
    let swept = sweep_family(configs, opts);
    figure(
        "extF",
        "Extension: processor failure/repair over the Table 1 baseline (exponential MTBF per processor, mttr = 50)",
        &swept,
        &[Metric::Throughput, Metric::ResponseTime, Metric::Aborts],
        vec![
            "Each processor independently fails (exp(mtbf)) and repairs (exp(mttr)); down processors stall new work.".to_string(),
            "A failure aborts every running transaction with a sub-transaction on the failed processor; aborts release all locks and re-execute.".to_string(),
            "The 'no failures' series is the Table 1 baseline, bit-identical to its golden snapshot.".to_string(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::sweep_ltot;

    #[test]
    fn no_failure_series_matches_table1_baseline() {
        // Bit-compare against a direct sweep of the unmodified baseline:
        // the failure extension must not perturb the default model.
        let opts = RunOptions::quick();
        let f = run(&opts);
        let direct = sweep_ltot(&ModelConfig::table1(), &opts);
        let tput = f.panel("throughput").unwrap();
        let series = tput.series("no failures").unwrap();
        for (p, d) in series.points.iter().zip(direct.iter()) {
            assert_eq!(p.x, d.ltot as f64);
            assert_eq!(p.mean, d.estimate(Metric::Throughput).mean);
        }
    }

    #[test]
    fn failures_cause_aborts_and_cost_throughput() {
        let opts = RunOptions::quick();
        let f = run(&opts);
        let aborts = f.panel("aborts").unwrap();
        assert!(
            aborts
                .series("mtbf 100")
                .unwrap()
                .points
                .iter()
                .any(|p| p.mean > 0.0),
            "aggressive failure rate produced no aborts"
        );
        assert!(
            aborts
                .series("no failures")
                .unwrap()
                .points
                .iter()
                .all(|p| p.mean == 0.0),
            "baseline series shows aborts"
        );
        let tput = f.panel("throughput").unwrap();
        let clean = tput.series("no failures").unwrap();
        let failing = tput.series("mtbf 100").unwrap();
        assert!(
            clean
                .points
                .iter()
                .zip(failing.points.iter())
                .any(|(c, h)| h.mean < c.mean),
            "frequent failures never cost throughput at any granularity"
        );
    }

    #[test]
    fn failure_rates_are_ordered_in_abort_volume() {
        let opts = RunOptions::quick();
        let f = run(&opts);
        let aborts = f.panel("aborts").unwrap();
        let total = |label: &str| -> f64 {
            aborts
                .series(label)
                .unwrap()
                .points
                .iter()
                .map(|p| p.mean)
                .sum()
        };
        let rare = total("mtbf 2000");
        let frequent = total("mtbf 100");
        assert!(
            frequent > rare,
            "mtbf 100 ({frequent} aborts) not above mtbf 2000 ({rare})"
        );
    }
}
