//! Extension I — incremental two-phase locking vs the conservative
//! protocols.
//!
//! Every protocol the paper studies predeclares its full granule set and
//! blocks until all locks are granted at once, so deadlock is impossible
//! by construction (Ries & Stonebraker's setup). Production systems lock
//! incrementally instead: claim each granule as it is touched, accept
//! deadlocks, detect them in the waits-for graph, and abort a victim.
//! This experiment puts the two families side by side under contention —
//! an 80/20 hot spot, a high multiprogramming level, and the usual
//! granularity sweep — where the trade becomes visible: incremental 2PL
//! holds each lock for less of the transaction's lifetime (locks are
//! acquired late, not at admission), but pays for it in deadlock aborts
//! and replayed work as the granularity coarsens and cycles get likely.
//!
//! Four panels: throughput and 95th-percentile response for the headline
//! comparison, deadlock and abort counts for the price the incremental
//! protocol pays (both are identically zero for the conservative
//! protocols — each broken cycle aborts exactly one victim, so the two
//! panels coincide for twophase unless a failure extension also runs).

use lockgran_core::{ConflictMode, ModelConfig};
use lockgran_workload::{HotSpot, Placement};

use super::{figure, sweep_family};
use crate::metric::Metric;
use crate::series::Figure;
use crate::sweep::RunOptions;

/// Run extension experiment I.
pub fn run(opts: &RunOptions) -> Figure {
    // Contention-heavy regime: random placement, small transactions, an
    // 80/20 hot spot and 5× the paper's multiprogramming level. The
    // granularity sweep still covers ltot = 1 … dbsize; the interesting
    // region is the small-ltot end where the hot set is a handful of
    // coarse locks.
    let base = ModelConfig::table1()
        .with_npros(10)
        .with_ntrans(50)
        .with_maxtransize(50)
        .with_placement(Placement::Random)
        .with_hot_spot(Some(HotSpot::eighty_twenty()));
    let configs = vec![
        (
            "explicit (conservative)".to_string(),
            base.clone().with_conflict(ConflictMode::Explicit),
        ),
        (
            "twophase (incremental)".to_string(),
            base.with_conflict(ConflictMode::Twophase),
        ),
    ];
    let swept = sweep_family(configs, opts);
    figure(
        "extI",
        "Extension: incremental 2PL (deadlock detection, youngest-victim abort) vs conservative predeclaration (hot 80/20, ntrans = 50, npros = 10)",
        &swept,
        &[
            Metric::Throughput,
            Metric::ResponseP95,
            Metric::Deadlocks,
            Metric::Aborts,
        ],
        vec![
            "Conservative predeclaration cannot deadlock; its deadlock/abort panels are identically zero.".to_string(),
            "Incremental 2PL acquires locks one at a time; waits-for cycles abort the youngest victim, which replays without losing its admission slot.".to_string(),
            "Expected: deadlocks concentrate at coarse granularity where the hot set collapses onto a few locks.".to_string(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservative_protocol_never_deadlocks() {
        let f = run(&RunOptions::quick());
        for panel in ["deadlocks", "aborts"] {
            let s = f
                .panel(panel)
                .unwrap()
                .series("explicit (conservative)")
                .unwrap();
            assert!(
                s.points.iter().all(|p| p.mean == 0.0),
                "conservative {panel} nonzero"
            );
        }
    }

    #[test]
    fn twophase_aborts_are_exactly_its_deadlock_victims() {
        // No failure extension runs here, so every abort is a deadlock
        // victim and every broken cycle aborts exactly one victim: the
        // two panels must coincide point for point.
        let f = run(&RunOptions::quick());
        let dl = f
            .panel("deadlocks")
            .unwrap()
            .series("twophase (incremental)")
            .unwrap()
            .clone();
        let ab = f
            .panel("aborts")
            .unwrap()
            .series("twophase (incremental)")
            .unwrap()
            .clone();
        for (d, a) in dl.points.iter().zip(ab.points.iter()) {
            assert_eq!(d.mean, a.mean, "ltot={}", d.x);
        }
    }

    #[test]
    fn contention_produces_deadlocks_at_coarse_granularity() {
        let f = run(&RunOptions::quick());
        let dl = f
            .panel("deadlocks")
            .unwrap()
            .series("twophase (incremental)")
            .unwrap();
        assert!(
            dl.points.iter().any(|p| p.mean > 0.0),
            "no deadlocks anywhere in the sweep — the regime is not contended enough"
        );
        // A single database lock cannot form a cycle: transactions hold
        // at most one lock, and a cycle needs two holders each waiting
        // for the other.
        assert_eq!(dl.at(1.0).unwrap(), 0.0, "deadlock with ltot = 1");
    }

    #[test]
    fn both_protocols_complete_work_everywhere() {
        let f = run(&RunOptions::quick());
        for s in &f.panel("throughput").unwrap().series {
            assert!(
                s.points.iter().all(|p| p.mean > 0.0),
                "{}: zero throughput somewhere",
                s.label
            );
        }
    }
}
