//! Figure 4 — "Effect of number of processors and number of locks on lock
//! overhead with large transactions (maxtransize = 500)".
//!
//! Table 1 inputs (maxtransize = 500 *is* the baseline); the output is
//! total lock-operation time (`lockcpus + lockios`). Expected shape
//! (paper §3.1): concave dip at few locks (high failure/retry rate at
//! ltot = 1 drives repeated lock charges), then a substantial climb once
//! `ltot` passes ~200 because each transaction requests `LU_i ∝ ltot`
//! locks.

use lockgran_core::ModelConfig;

use super::{figure, npros_grid, sweep_family};
use crate::metric::Metric;
use crate::series::Figure;
use crate::sweep::RunOptions;

/// Reproduce Figure 4.
pub fn run(opts: &RunOptions) -> Figure {
    let configs = npros_grid(opts)
        .iter()
        .map(|&n| (format!("npros={n}"), ModelConfig::table1().with_npros(n)))
        .collect();
    let swept = sweep_family(configs, opts);
    figure(
        "fig4",
        "Effect of number of processors and number of locks on lock overhead with large transactions (maxtransize = 500)",
        &swept,
        &[Metric::LockOverhead, Metric::LockCpu, Metric::LockIo],
        vec![
            "Lock overhead = lockcpus + lockios (summed over processors).".to_string(),
            "Expected: rises sharply past ~200 locks; retry-driven bump at very few locks."
                .to_string(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_explodes_at_fine_granularity() {
        let f = run(&RunOptions::quick());
        for s in &f.panel("lock_overhead").unwrap().series {
            let at_100 = s.at(100.0).unwrap();
            let at_5000 = s.at(5000.0).unwrap();
            assert!(
                at_5000 > 3.0 * at_100,
                "{}: overhead at 5000 locks ({at_5000}) not >> at 100 ({at_100})",
                s.label
            );
        }
    }

    #[test]
    fn overhead_components_sum() {
        let f = run(&RunOptions::quick());
        let total = f.panel("lock_overhead").unwrap();
        let cpu = f.panel("lock_cpu").unwrap();
        let io = f.panel("lock_io").unwrap();
        for ((st, sc), si) in total
            .series
            .iter()
            .zip(cpu.series.iter())
            .zip(io.series.iter())
        {
            for ((pt, pc), pi) in st.points.iter().zip(sc.points.iter()).zip(si.points.iter()) {
                assert!((pt.mean - (pc.mean + pi.mean)).abs() < 1e-6);
            }
        }
    }
}
