//! Figure 10 — "Effects of number of locks and granule placement on
//! throughput with small transactions (maxtransize = 50)".
//!
//! As Figure 9 with `maxtransize = 50` (mean 25 entities). Expected
//! (paper §3.5 and the conclusion): the dip bottoms out near the mean
//! transaction size (≈ 25 locks); past it throughput climbs all the way
//! to `ltot = dbsize` — for small transactions that access the database
//! randomly, *fine* granularity (one lock per entity) is the right
//! choice, the paper's headline exception to "coarse is good enough".

use super::{fig09::placement_sweep, figure};
use crate::metric::Metric;
use crate::series::Figure;
use crate::sweep::RunOptions;

/// Reproduce Figure 10.
pub fn run(opts: &RunOptions) -> Figure {
    let npros_set: &[u32] = if opts.quick { &[30] } else { &[1, 30] };
    let swept = placement_sweep(opts, npros_set, 50, 10);
    figure(
        "fig10",
        "Effects of number of locks and granule placement on throughput with small transactions (maxtransize = 50)",
        &swept,
        &[Metric::Throughput],
        vec![
            "maxtransize = 50 (mean ≈ 25 entities).".to_string(),
            "Expected: under random/worst placement, throughput climbs toward ltot = dbsize — fine granularity wins for small random transactions.".to_string(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fine_granularity_wins_for_small_random_transactions() {
        let f = run(&RunOptions::quick());
        let panel = f.panel("throughput").unwrap();
        for label in ["random/npros=30", "worst/npros=30"] {
            let s = panel.series(label).unwrap();
            let fine = s.at(5000.0).unwrap();
            let mid = s.at(100.0).unwrap();
            assert!(fine > mid, "{label}: {fine} !> {mid}");
        }
    }

    #[test]
    fn small_transactions_beat_large_under_worst_placement() {
        let opts = RunOptions::quick();
        let small = run(&opts);
        let large = crate::figures::fig09::run(&opts);
        let s = small
            .panel("throughput")
            .unwrap()
            .series("worst/npros=30")
            .unwrap()
            .clone();
        let l = large
            .panel("throughput")
            .unwrap()
            .series("worst/npros=30")
            .unwrap()
            .clone();
        for (sp, lp) in s.points.iter().zip(l.points.iter()) {
            assert!(sp.mean > lp.mean, "ltot={}", sp.x);
        }
    }
}
