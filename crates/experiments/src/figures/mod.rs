//! One module per paper artifact (Table 1, Figures 2–12).
//!
//! Every module exposes `run(&RunOptions) -> Figure` performing exactly
//! the sweep the paper describes for that artifact. Shared machinery
//! lives here: sweep a family of labelled configurations once, then slice
//! the same runs into one panel per metric.

pub mod ext_admission;
pub mod ext_conflict;
pub mod ext_discipline;
pub mod ext_escalation;
pub mod ext_failure;
pub mod ext_hierarchy;
pub mod ext_hotspot;
pub mod ext_resource_balance;
pub mod ext_twophase;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod table1;

use lockgran_core::ModelConfig;

use crate::metric::Metric;
use crate::series::{Figure, Panel, Series};
use crate::sweep::{sweep_ltot, RunOptions, SweepPoint};

/// A labelled configuration and its sweep results.
pub(crate) struct Swept {
    label: String,
    points: Vec<SweepPoint>,
}

/// Sweep each labelled configuration over the lock-count grid.
pub(crate) fn sweep_family(configs: Vec<(String, ModelConfig)>, opts: &RunOptions) -> Vec<Swept> {
    configs
        .into_iter()
        .map(|(label, cfg)| Swept {
            label,
            points: sweep_ltot(&cfg, opts),
        })
        .collect()
}

/// Slice a swept family into one panel per metric.
pub(crate) fn panels(swept: &[Swept], metrics: &[Metric]) -> Vec<Panel> {
    metrics
        .iter()
        .map(|&metric| Panel {
            metric: metric.name().to_string(),
            x_label: "ltot".to_string(),
            series: swept
                .iter()
                .map(|s| Series {
                    label: s.label.clone(),
                    points: s.points.iter().map(|p| p.estimate(metric)).collect(),
                })
                .collect(),
        })
        .collect()
}

/// Assemble a figure.
pub(crate) fn figure(
    id: &str,
    title: &str,
    swept: &[Swept],
    metrics: &[Metric],
    notes: Vec<String>,
) -> Figure {
    Figure {
        id: id.to_string(),
        title: title.to_string(),
        panels: panels(swept, metrics),
        notes,
    }
}

/// The paper's processor-count grid (§3.1), reduced in quick mode.
pub(crate) fn npros_grid(opts: &RunOptions) -> &'static [u32] {
    if opts.quick {
        &[1, 10, 30]
    } else {
        &[1, 2, 5, 10, 20, 30]
    }
}

/// Run a figure by id (`"table1"`, `"fig2"` … `"fig12"`).
pub fn run_by_id(id: &str, opts: &RunOptions) -> Option<Figure> {
    Some(match id {
        "table1" => table1::run(opts),
        "fig2" => fig02::run(opts),
        "fig3" => fig03::run(opts),
        "fig4" => fig04::run(opts),
        "fig5" => fig05::run(opts),
        "fig6" => fig06::run(opts),
        "fig7" => fig07::run(opts),
        "fig8" => fig08::run(opts),
        "fig9" => fig09::run(opts),
        "fig10" => fig10::run(opts),
        "fig11" => fig11::run(opts),
        "fig12" => fig12::run(opts),
        "extA" => ext_admission::run(opts),
        "extB" => ext_conflict::run(opts),
        "extC" => ext_discipline::run(opts),
        "extD" => ext_hotspot::run(opts),
        "extE" => ext_resource_balance::run(opts),
        "extF" => ext_failure::run(opts),
        "extG" => ext_escalation::run(opts),
        "extH" => ext_hierarchy::run(opts),
        "extI" => ext_twophase::run(opts),
        _ => return None,
    })
}

/// All paper artifact ids, in paper order.
pub const ALL_IDS: [&str; 12] = [
    "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12",
];

/// Extension experiments beyond the paper.
pub const EXT_IDS: [&str; 9] = [
    "extA", "extB", "extC", "extD", "extE", "extF", "extG", "extH", "extI",
];
