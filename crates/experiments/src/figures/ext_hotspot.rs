//! Extension D — hot-spot access skew.
//!
//! The paper assumes uniform access to the database; real reference
//! strings concentrate on hot data (the 80/20 rule). Only the explicit
//! lock-table model can represent *which* granules are hot, so this
//! experiment runs it with and without an 80/20 hot spot, for small
//! random transactions (the regime where fine granularity wins under
//! uniform access). Expected: skew depresses throughput at every
//! granularity — hot granules serialize their sharers — and increases
//! the *relative* value of finer granularity (more hot granules = the
//! hot set spreads thinner).

use lockgran_core::{ConflictMode, ModelConfig};
use lockgran_workload::{HotSpot, Placement};

use super::{figure, sweep_family};
use crate::metric::Metric;
use crate::series::Figure;
use crate::sweep::RunOptions;

/// Run extension experiment D.
pub fn run(opts: &RunOptions) -> Figure {
    let base = ModelConfig::table1()
        .with_npros(10)
        .with_maxtransize(50)
        .with_placement(Placement::Random)
        .with_conflict(ConflictMode::Explicit);
    let configs = vec![
        ("uniform".to_string(), base.clone()),
        (
            "hot 80/20".to_string(),
            base.clone().with_hot_spot(Some(HotSpot::eighty_twenty())),
        ),
        (
            "hot 95/5".to_string(),
            base.with_hot_spot(Some(HotSpot {
                fraction: 0.05,
                weight: 0.95,
            })),
        ),
    ];
    let swept = sweep_family(configs, opts);
    figure(
        "extD",
        "Extension: hot-spot access skew under the explicit lock table (small random transactions, npros = 10)",
        &swept,
        &[Metric::Throughput, Metric::DenialRate],
        vec![
            "80/20: 80% of accesses hit 20% of the granules; 95/5 is more extreme.".to_string(),
            "Expected: skew costs throughput everywhere and raises denial rates; finer granularity claws some back.".to_string(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_increases_contention() {
        let f = run(&RunOptions::quick());
        let denial = f.panel("denial_rate").unwrap();
        let uniform = denial.series("uniform").unwrap();
        let hot = denial.series("hot 95/5").unwrap();
        // At moderate granularity the hot set is small and contended.
        for x in [100.0, 1000.0] {
            assert!(
                hot.at(x).unwrap() > uniform.at(x).unwrap(),
                "ltot={x}: skew did not raise denials"
            );
        }
    }

    #[test]
    fn skew_costs_throughput_at_moderate_granularity() {
        let f = run(&RunOptions::quick());
        let tput = f.panel("throughput").unwrap();
        let uniform = tput.series("uniform").unwrap();
        let hot = tput.series("hot 95/5").unwrap();
        for x in [100.0, 1000.0] {
            assert!(
                hot.at(x).unwrap() < uniform.at(x).unwrap(),
                "ltot={x}: skew did not cost throughput"
            );
        }
    }

    #[test]
    fn single_lock_is_skew_insensitive() {
        // With one database lock everything serializes regardless of
        // which entities are touched: uniform and skewed coincide.
        let f = run(&RunOptions::quick());
        let tput = f.panel("throughput").unwrap();
        let u = tput.series("uniform").unwrap().at(1.0).unwrap();
        let h = tput.series("hot 80/20").unwrap().at(1.0).unwrap();
        assert!((u - h).abs() / u < 0.05, "uniform {u} vs hot {h} at ltot=1");
    }
}
