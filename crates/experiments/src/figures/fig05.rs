//! Figure 5 — "Effect of number of processors and number of locks on lock
//! overhead with small transactions (maxtransize = 50)".
//!
//! As Figure 4 but with `maxtransize = 50` (mean 25 entities). Expected
//! (paper §3.1): the concave shape is more pronounced; at few locks the
//! overhead exceeds Figure 4's because small transactions complete
//! faster, raising the lock *request rate*; the late climb starts at the
//! same ~200-lock point but is shallower because `LU_i` is smaller.

use lockgran_core::ModelConfig;

use super::{figure, npros_grid, sweep_family};
use crate::metric::Metric;
use crate::series::Figure;
use crate::sweep::RunOptions;

/// Reproduce Figure 5.
pub fn run(opts: &RunOptions) -> Figure {
    let configs = npros_grid(opts)
        .iter()
        .map(|&n| {
            (
                format!("npros={n}"),
                ModelConfig::table1().with_npros(n).with_maxtransize(50),
            )
        })
        .collect();
    let swept = sweep_family(configs, opts);
    figure(
        "fig5",
        "Effect of number of processors and number of locks on lock overhead with small transactions (maxtransize = 50)",
        &swept,
        &[Metric::LockOverhead, Metric::DenialRate],
        vec![
            "maxtransize = 50 (mean transaction ≈ 25 entities); other inputs per Table 1."
                .to_string(),
            "Expected: higher early overhead than fig4 (more lock requests/unit time)."
                .to_string(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::fig04;

    #[test]
    fn small_transactions_issue_more_lock_requests_at_coarse_granularity() {
        let opts = RunOptions::quick();
        let small = run(&opts);
        let large = fig04::run(&opts);
        // At ltot = 10 (coarse side), the small-transaction system has
        // completed many more transactions, so lock overhead is higher.
        let s = small
            .panel("lock_overhead")
            .unwrap()
            .series("npros=10")
            .unwrap();
        let l = large
            .panel("lock_overhead")
            .unwrap()
            .series("npros=10")
            .unwrap();
        assert!(
            s.at(10.0).unwrap() > l.at(10.0).unwrap(),
            "small {} !> large {}",
            s.at(10.0).unwrap(),
            l.at(10.0).unwrap()
        );
    }

    #[test]
    fn denial_rate_falls_as_locks_increase() {
        let f = run(&RunOptions::quick());
        for s in &f.panel("denial_rate").unwrap().series {
            let coarse = s.at(1.0).unwrap();
            let fine = s.at(5000.0).unwrap();
            assert!(coarse > fine, "{}: denial {coarse} !> {fine}", s.label);
        }
    }
}
