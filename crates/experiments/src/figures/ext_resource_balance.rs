//! Extension E — resource balance (I/O-bound vs CPU-bound systems).
//!
//! The paper's machine is strongly I/O-bound (`iotime = 0.2` vs
//! `cputime = 0.05` per entity), which is why the conclusion singles out
//! "an I/O bound application". This experiment rebalances the per-entity
//! costs at constant total work (`cputime + iotime = 0.25`) and asks
//! whether the granularity story survives when the CPU is the
//! bottleneck. Expected: the convex shape and the small optimum are
//! robust; absolute throughput tracks the bottleneck resource; lock I/O
//! hurts relatively more in the I/O-bound system.

use lockgran_core::ModelConfig;

use super::{figure, sweep_family};
use crate::metric::Metric;
use crate::series::Figure;
use crate::sweep::RunOptions;

/// `(label, cputime, iotime)` — total per-entity work constant at 0.25.
pub const BALANCES: [(&str, f64, f64); 3] = [
    ("io-bound (paper)", 0.05, 0.20),
    ("balanced", 0.125, 0.125),
    ("cpu-bound", 0.20, 0.05),
];

/// Run extension experiment E.
pub fn run(opts: &RunOptions) -> Figure {
    let configs = BALANCES
        .iter()
        .map(|&(label, cputime, iotime)| {
            let mut cfg = ModelConfig::table1().with_npros(10);
            cfg.cputime = cputime;
            cfg.iotime = iotime;
            (label.to_string(), cfg)
        })
        .collect();
    let swept = sweep_family(configs, opts);
    figure(
        "extE",
        "Extension: resource balance — I/O-bound vs CPU-bound per-entity costs (npros = 10)",
        &swept,
        &[
            Metric::Throughput,
            Metric::CpuUtilization,
            Metric::IoUtilization,
        ],
        vec![
            "Per-entity work held at cputime + iotime = 0.25; lock costs per Table 1.".to_string(),
            "Expected: the convex optimum below 200 locks is robust to the bottleneck resource."
                .to_string(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_is_robust_to_resource_balance() {
        let f = run(&RunOptions::quick());
        for s in &f.panel("throughput").unwrap().series {
            let opt = s.argmax().unwrap();
            assert!(opt > 1.0 && opt < 200.0, "{}: optimum at {opt}", s.label);
            let peak = s.max_mean().unwrap();
            assert!(s.at(5000.0).unwrap() < peak, "{}", s.label);
        }
    }

    #[test]
    fn bottleneck_follows_the_cost_balance() {
        let f = run(&RunOptions::quick());
        let cpu = f.panel("cpu_utilization").unwrap();
        let io = f.panel("io_utilization").unwrap();
        // At the optimum, the I/O-bound system saturates its disks and
        // the CPU-bound system saturates its CPUs.
        let at = |panel: &crate::series::Panel, label: &str| {
            panel.series(label).unwrap().at(100.0).unwrap()
        };
        assert!(at(io, "io-bound (paper)") > at(cpu, "io-bound (paper)"));
        assert!(at(cpu, "cpu-bound") > at(io, "cpu-bound"));
    }

    #[test]
    fn lock_io_penalty_is_worst_for_the_io_bound_system() {
        // The fine-granularity collapse (lock I/O on the critical
        // resource) is deepest when I/O is already the bottleneck.
        let f = run(&RunOptions::quick());
        let tput = f.panel("throughput").unwrap();
        let drop = |label: &str| {
            let s = tput.series(label).unwrap();
            1.0 - s.at(5000.0).unwrap() / s.max_mean().unwrap()
        };
        assert!(
            drop("io-bound (paper)") > drop("cpu-bound"),
            "io-bound drop {} !> cpu-bound drop {}",
            drop("io-bound (paper)"),
            drop("cpu-bound")
        );
    }
}
