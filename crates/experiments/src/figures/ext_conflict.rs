//! Extension B — validating the probabilistic conflict approximation.
//!
//! Not a paper figure: the paper computes lock conflicts with the
//! Ries–Stonebraker probabilistic draw and never checks it against a real
//! lock table. This experiment runs the Table 1 sweep under both conflict
//! models so the approximation error is visible as the gap between the
//! curve pairs.

use lockgran_core::{ConflictMode, ModelConfig};

use super::{figure, sweep_family};
use crate::metric::Metric;
use crate::series::Figure;
use crate::sweep::RunOptions;

/// Run extension experiment B.
pub fn run(opts: &RunOptions) -> Figure {
    let mut configs = Vec::new();
    for npros in [10u32, 30] {
        // The two models the paper's approximation question is about; the
        // hierarchical model gets its own three-way overlay in extH.
        for mode in [ConflictMode::Probabilistic, ConflictMode::Explicit] {
            configs.push((
                format!("{}/npros={npros}", mode.name()),
                ModelConfig::table1().with_npros(npros).with_conflict(mode),
            ));
        }
    }
    let swept = sweep_family(configs, opts);
    figure(
        "extB",
        "Extension: probabilistic conflict computation vs a real lock table",
        &swept,
        &[Metric::Throughput, Metric::DenialRate, Metric::MeanActive],
        vec![
            "Explicit mode materializes granule sets and runs conservative locking.".to_string(),
            "Expected: curves pair up — the paper's approximation preserves every conclusion."
                .to_string(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_models_pair_up() {
        let f = run(&RunOptions::quick());
        let tput = f.panel("throughput").unwrap();
        let p = tput.series("probabilistic/npros=10").unwrap();
        let e = tput.series("explicit/npros=10").unwrap();
        for (pp, ee) in p.points.iter().zip(e.points.iter()) {
            let ratio = pp.mean / ee.mean;
            assert!((0.5..=2.0).contains(&ratio), "ltot={}: ratio {ratio}", pp.x);
        }
    }

    #[test]
    fn both_models_show_the_convex_optimum() {
        let f = run(&RunOptions::quick());
        for s in &f.panel("throughput").unwrap().series {
            let peak = s.max_mean().unwrap();
            assert!(s.at(1.0).unwrap() < peak, "{}", s.label);
            assert!(s.at(5000.0).unwrap() < peak, "{}", s.label);
        }
    }
}
