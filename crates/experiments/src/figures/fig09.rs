//! Figure 9 — "Effects of number of locks and granule placement on
//! throughput with large transactions (maxtransize = 500)".
//!
//! Placement ∈ {best, random, worst} × npros ∈ {1, 30}. Expected (paper
//! §3.5): under worst/random placement throughput *falls* as `ltot` rises
//! from 1 toward the mean transaction size (≈ 250) — each transaction
//! locks essentially the whole database while paying for ever more locks —
//! then recovers as `ltot → dbsize`; best placement keeps the Figure 2
//! shape. Worst and random behave similarly for large transactions.

use lockgran_core::ModelConfig;
use lockgran_workload::Placement;

use super::{figure, sweep_family, Swept};
use crate::metric::Metric;
use crate::series::Figure;
use crate::sweep::RunOptions;

/// Sweep all placements for the given processor counts and maxtransize.
pub(crate) fn placement_sweep(
    opts: &RunOptions,
    npros_set: &[u32],
    maxtransize: u64,
    ntrans: u32,
) -> Vec<Swept> {
    let mut configs = Vec::new();
    for &n in npros_set {
        for p in Placement::ALL {
            configs.push((
                format!("{}/npros={n}", p.name()),
                ModelConfig::table1()
                    .with_npros(n)
                    .with_maxtransize(maxtransize)
                    .with_ntrans(ntrans)
                    .with_placement(p),
            ));
        }
    }
    sweep_family(configs, opts)
}

/// Reproduce Figure 9.
pub fn run(opts: &RunOptions) -> Figure {
    let npros_set: &[u32] = if opts.quick { &[30] } else { &[1, 30] };
    let swept = placement_sweep(opts, npros_set, 500, 10);
    figure(
        "fig9",
        "Effects of number of locks and granule placement on throughput with large transactions (maxtransize = 500)",
        &swept,
        &[Metric::Throughput],
        vec![
            "Placements: best (sequential), random (Yao), worst (min(NU, ltot)).".to_string(),
            "Expected: worst/random dip until ltot ≈ mean transaction size, then recover."
                .to_string(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_placement_dips_then_recovers() {
        let f = run(&RunOptions::quick());
        let s = f
            .panel("throughput")
            .unwrap()
            .series("worst/npros=30")
            .unwrap();
        let at_1 = s.at(1.0).unwrap();
        let at_100 = s.at(100.0).unwrap();
        let at_5000 = s.at(5000.0).unwrap();
        // Dip: 100 locks is worse than a single lock (overhead without
        // concurrency, since each txn locks all granules).
        assert!(at_100 < at_1, "no dip: {at_100} !< {at_1}");
        // Recovery: entity-level locking beats the dip.
        assert!(at_5000 > at_100, "no recovery: {at_5000} !> {at_100}");
    }

    #[test]
    fn best_placement_dominates_at_moderate_granularity() {
        let f = run(&RunOptions::quick());
        let panel = f.panel("throughput").unwrap();
        let best = panel.series("best/npros=30").unwrap();
        let worst = panel.series("worst/npros=30").unwrap();
        let random = panel.series("random/npros=30").unwrap();
        for x in [10.0, 100.0] {
            assert!(best.at(x).unwrap() > worst.at(x).unwrap(), "ltot={x}");
            assert!(best.at(x).unwrap() > random.at(x).unwrap(), "ltot={x}");
        }
    }

    #[test]
    fn random_tracks_worst_for_large_transactions() {
        // Paper: with maxtransize = 500, random and worst placement
        // "exhibit similar behaviour" — mean 250 entities over ≤ 250
        // granules touches nearly all of them.
        let f = run(&RunOptions::quick());
        let panel = f.panel("throughput").unwrap();
        let worst = panel.series("worst/npros=30").unwrap();
        let random = panel.series("random/npros=30").unwrap();
        for x in [10.0, 100.0] {
            let w = worst.at(x).unwrap();
            let r = random.at(x).unwrap();
            assert!(
                (r - w).abs() / w < 0.35,
                "ltot={x}: random {r} vs worst {w}"
            );
        }
    }
}
