//! Figure 3 — "Effects of number of locks and number of processors on
//! useful I/O time and useful CPU time".
//!
//! Same sweep as Figure 2; the outputs are `usefulios` and `usefulcpus`
//! (per-processor busy time spent on transaction work, lock overhead
//! excluded). Expected shape (paper §3.1): convex in `ltot`; decreasing
//! in `npros` (each sub-transaction shrinks); past the optimum the gap
//! between processor counts narrows because small systems burn more time
//! on lock operations.

use lockgran_core::ModelConfig;

use super::{figure, npros_grid, sweep_family};
use crate::metric::Metric;
use crate::series::Figure;
use crate::sweep::RunOptions;

/// Reproduce Figure 3.
pub fn run(opts: &RunOptions) -> Figure {
    let configs = npros_grid(opts)
        .iter()
        .map(|&n| (format!("npros={n}"), ModelConfig::table1().with_npros(n)))
        .collect();
    let swept = sweep_family(configs, opts);
    figure(
        "fig3",
        "Effects of number of locks and number of processors on useful I/O time and useful CPU time",
        &swept,
        &[Metric::UsefulIo, Metric::UsefulCpu],
        vec![
            "usefulios = (totios - lockios)/npros; usefulcpus = (totcpus - lockcpus)/npros."
                .to_string(),
            "Expected: decreasing in npros; convex in ltot.".to_string(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn useful_time_decreases_with_processors_where_unsaturated() {
        // The paper reports useful time decreasing in npros. In this
        // model the effect appears wherever the system is *not*
        // I/O-saturated: the serial regime (ltot = 1, where lock-op
        // stragglers stall the join) and the fine-granularity regime
        // (ltot = dbsize for npros = 1, drowned in lock work). In the
        // saturated middle the work-conserving servers pin useful time at
        // ~100% busy for every npros — a known deviation recorded in
        // EXPERIMENTS.md.
        let f = run(&RunOptions::quick());
        for metric in ["useful_io", "useful_cpu"] {
            let panel = f.panel(metric).unwrap();
            let one = panel.series("npros=1").unwrap();
            let thirty = panel.series("npros=30").unwrap();
            assert!(
                thirty.at(1.0).unwrap() < one.at(1.0).unwrap(),
                "{metric} at ltot=1"
            );
        }
    }

    #[test]
    fn useful_time_is_convex_in_lock_count() {
        // Rises from ltot = 1 to the optimum, falls toward ltot = dbsize.
        let f = run(&RunOptions::quick());
        for s in &f.panel("useful_io").unwrap().series {
            let at_1 = s.at(1.0).unwrap();
            let mid = s.at(10.0).unwrap().max(s.at(100.0).unwrap());
            let fine = s.at(5000.0).unwrap();
            assert!(mid > at_1, "{}: no rise ({mid} !> {at_1})", s.label);
            assert!(mid > fine, "{}: no fall ({mid} !> {fine})", s.label);
        }
    }

    #[test]
    fn small_systems_lose_more_useful_time_past_the_optimum() {
        // Paper §3.1: past the optimum the gap between processor counts
        // narrows because small systems spend proportionally more time on
        // lock operations; at entity-level locking npros = 1 drops below.
        let f = run(&RunOptions::quick());
        let panel = f.panel("useful_io").unwrap();
        let one = panel.series("npros=1").unwrap();
        let thirty = panel.series("npros=30").unwrap();
        assert!(one.at(5000.0).unwrap() < thirty.at(5000.0).unwrap());
    }

    #[test]
    fn io_dominates_cpu_with_table1_costs() {
        // iotime = 0.2 vs cputime = 0.05: useful I/O per processor must
        // exceed useful CPU per processor everywhere.
        let f = run(&RunOptions::quick());
        let io = f.panel("useful_io").unwrap();
        let cpu = f.panel("useful_cpu").unwrap();
        for (si, sc) in io.series.iter().zip(cpu.series.iter()) {
            for (pi, pc) in si.points.iter().zip(sc.points.iter()) {
                assert!(pi.mean > pc.mean, "{} ltot={}", si.label, pi.x);
            }
        }
    }
}
