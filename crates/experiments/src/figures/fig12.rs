//! Figure 12 — "Effects of number of locks and granule placement on
//! throughput with large number of transactions (ntrans = 200)".
//!
//! Multiprogramming level raised from 10 to 200, `npros = 20`,
//! `maxtransize = 500`. Expected (paper §3.7): with many resident
//! transactions, entity-level granularity (`ltot = dbsize`) *loses* to
//! coarse granularity — lock processing overhead scales with
//! `ntrans × ltot` while most of the extra lock requests are denied, so
//! concurrency does not improve.

use super::{fig09::placement_sweep, figure};
use crate::metric::Metric;
use crate::series::Figure;
use crate::sweep::RunOptions;

/// Reproduce Figure 12.
pub fn run(opts: &RunOptions) -> Figure {
    let swept = placement_sweep(opts, &[20], 500, 200);
    figure(
        "fig12",
        "Effects of number of locks and granule placement on throughput with large number of transactions (ntrans = 200)",
        &swept,
        &[Metric::Throughput, Metric::DenialRate],
        vec![
            "ntrans = 200, npros = 20, maxtransize = 500.".to_string(),
            "Expected: fine granularity (ltot = dbsize) underperforms coarse under heavy load."
                .to_string(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fine_granularity_loses_under_heavy_load() {
        let f = run(&RunOptions::quick());
        for s in &f.panel("throughput").unwrap().series {
            let coarse = s.at(10.0).unwrap();
            let fine = s.at(5000.0).unwrap();
            assert!(fine < coarse, "{}: fine {fine} !< coarse {coarse}", s.label);
        }
    }

    #[test]
    fn denials_dominate_at_fine_granularity_and_heavy_load() {
        let f = run(&RunOptions::quick());
        let best = f
            .panel("denial_rate")
            .unwrap()
            .series("best/npros=20")
            .unwrap();
        // With 200 resident transactions, most lock attempts are denied
        // even at fine granularity (the paper's §3.7 mechanism).
        assert!(
            best.at(5000.0).unwrap() > 0.5,
            "denial rate {}",
            best.at(5000.0).unwrap()
        );
    }
}
