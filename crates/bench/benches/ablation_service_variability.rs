//! Ablation: deterministic vs exponential sub-transaction service times.
//!
//! Deterministic per-entity costs (the paper's model) keep all
//! sub-transactions of a transaction in lockstep; exponential service
//! with the same mean makes the fork/join barrier wait for the slowest
//! of `PU_i` stages. The printed table quantifies that straggler
//! penalty by fan-out.

use lockgran_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lockgran_core::{sim, ModelConfig, ServiceVariability};

fn bench(c: &mut Criterion) {
    println!("\n== ablation: service-time variability (throughput) ==");
    println!(
        "{:>6} {:>14} {:>14} {:>9}",
        "npros", "deterministic", "exponential", "penalty"
    );
    for npros in [1u32, 5, 10, 30] {
        let base = ModelConfig::table1().with_npros(npros).with_tmax(1_000.0);
        let det = sim::run(
            &base.clone().with_service(ServiceVariability::Deterministic),
            42,
        );
        let exp = sim::run(&base.with_service(ServiceVariability::Exponential), 42);
        println!(
            "{npros:>6} {:>14.4} {:>14.4} {:>8.1}%",
            det.throughput,
            exp.throughput,
            (1.0 - exp.throughput / det.throughput) * 100.0
        );
    }

    let mut group = c.benchmark_group("ablation_service_variability");
    for v in ServiceVariability::ALL {
        let cfg = ModelConfig::table1().with_service(v).with_tmax(300.0);
        group.bench_function(v.name(), |b| b.iter(|| sim::run(black_box(&cfg), 42)));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
