//! Ablation: preemptive vs non-preemptive lock priority.
//!
//! The paper assumes "the locking mechanism has preemptive power over
//! running transactions for I/O and CPU resources". This ablation demotes
//! lock work to non-preemptive head-of-line priority and compares — the
//! effect concentrates at fine granularity, where lock jobs are frequent
//! and would otherwise wait behind long sub-transaction stages.

use lockgran_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lockgran_core::{sim, ModelConfig};

fn bench(c: &mut Criterion) {
    println!("\n== ablation: preemptive vs non-preemptive lock work ==");
    println!(
        "{:>6} {:>14} {:>16} {:>14} {:>16}",
        "ltot", "tput(preempt)", "tput(no-preempt)", "resp(preempt)", "resp(no-preempt)"
    );
    for ltot in [1u64, 100, 1000, 5000] {
        let base = ModelConfig::table1().with_ltot(ltot).with_tmax(1_000.0);
        let p = sim::run(&base.clone().with_lock_preemption(true), 42);
        let n = sim::run(&base.with_lock_preemption(false), 42);
        println!(
            "{ltot:>6} {:>14.4} {:>16.4} {:>14.1} {:>16.1}",
            p.throughput, n.throughput, p.response_time, n.response_time
        );
    }

    let mut group = c.benchmark_group("ablation_preemption");
    for (name, preempt) in [("preemptive", true), ("non_preemptive", false)] {
        let cfg = ModelConfig::table1()
            .with_lock_preemption(preempt)
            .with_tmax(300.0);
        group.bench_function(name, |b| b.iter(|| sim::run(black_box(&cfg), 42)));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
