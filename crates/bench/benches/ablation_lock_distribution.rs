//! Ablation: how lock work is spread over processors.
//!
//! `per-op` (indivisible lock operations round-robin over the granule
//! owners — the default), `even-split` (idealized divisible lock work),
//! and `single` (a centralized lock manager). The paper asserts the work
//! is "shared by all processors"; this ablation shows what each reading
//! costs.

use lockgran_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lockgran_core::config::LockDistribution;
use lockgran_core::{sim, ModelConfig};

fn bench(c: &mut Criterion) {
    println!("\n== ablation: lock-work distribution across processors ==");
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "ltot", "per-op", "even-split", "single"
    );
    for ltot in [1u64, 100, 5000] {
        let mut row = format!("{ltot:>6}");
        for d in LockDistribution::ALL {
            let cfg = ModelConfig::table1()
                .with_npros(30)
                .with_ltot(ltot)
                .with_lock_distribution(d)
                .with_tmax(1_000.0);
            let m = sim::run(&cfg, 42);
            row.push_str(&format!(" {:>12.4}", m.throughput));
        }
        println!("{row}");
    }

    let mut group = c.benchmark_group("ablation_lock_distribution");
    for d in LockDistribution::ALL {
        let cfg = ModelConfig::table1()
            .with_lock_distribution(d)
            .with_tmax(300.0);
        group.bench_function(d.name(), |b| b.iter(|| sim::run(black_box(&cfg), 42)));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
