//! Micro-bench: the incremental 2PL scheduler's hot paths.
//!
//! Every transaction in twophase mode claims its granules one
//! `acquire` call at a time, so the per-lock grant is the inner loop of
//! the extI sweeps; the contended paths — block/wake on a release, and
//! waits-for cycle detection with a victim abort — price the protocol's
//! deadlock machinery.

use lockgran_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lockgran_lockmgr::{
    AcquireOutcome, GranuleId, LockMode, RetryOutcome, TwoPhaseScheduler, TxnId,
};

const LTOT: u64 = 5000;

/// Disjoint granule runs, one per transaction, so every claim is granted.
fn granule_run(txn: u64, locks: u64) -> Vec<u64> {
    let start = (txn * locks) % (LTOT - locks);
    (start..start + locks).collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("twophase");

    for &locks in &[4u64, 32] {
        group.bench_with_input(
            BenchmarkId::new("incremental_cycle", locks),
            &locks,
            |b, &locks| {
                // Uncontended claim-as-needed lifecycle: `locks` grants
                // one at a time, then one release.
                let mut s = TwoPhaseScheduler::new();
                let mut serial = 0u64;
                b.iter(|| {
                    let txn = TxnId(serial);
                    serial += 1;
                    for g in granule_run(serial, locks) {
                        black_box(s.acquire(txn, GranuleId(g), LockMode::X));
                    }
                    black_box(s.release(txn).len());
                });
            },
        );
    }

    group.bench_function("blocked_wake", |b| {
        // A holder pins a granule; a waiter queues behind it and is
        // granted at release — the block/wake path of the protocol.
        let mut serial = 0u64;
        b.iter(|| {
            let mut s = TwoPhaseScheduler::new();
            let holder = TxnId(serial);
            let waiter = TxnId(serial + 1);
            serial += 2;
            let g = GranuleId(7);
            black_box(s.acquire(holder, g, LockMode::X));
            black_box(s.acquire(waiter, g, LockMode::X));
            let woken = s.release(holder);
            debug_assert_eq!(woken, vec![waiter]);
            black_box(s.release(waiter).len());
        });
    });

    group.bench_function("deadlock_detect_abort", |b| {
        // Two transactions claim the same pair in opposite orders: the
        // second claim of the younger closes a cycle, it self-aborts and
        // the survivor is granted. Prices edge insertion, cycle search
        // and the victim teardown.
        let mut serial = 0u64;
        b.iter(|| {
            let mut s = TwoPhaseScheduler::new();
            let old = TxnId(serial);
            let young = TxnId(serial + 1);
            serial += 2;
            let (ga, gb) = (GranuleId(0), GranuleId(1));
            black_box(s.acquire(old, ga, LockMode::X));
            black_box(s.acquire(young, gb, LockMode::X));
            black_box(s.acquire(old, gb, LockMode::X)); // old waits on young
            let out = s.acquire(young, ga, LockMode::X); // closes the cycle
            debug_assert!(matches!(
                out,
                AcquireOutcome::Deadlock {
                    retry: RetryOutcome::SelfAborted,
                    ..
                }
            ));
            black_box(out);
            black_box(s.release(old).len());
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
