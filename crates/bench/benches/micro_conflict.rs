//! Micro-bench: the probabilistic conflict model's hot paths.
//!
//! `try_acquire` scans the active set's cached cumulative fractions once
//! per lock request — at high multiprogramming levels that scan is the
//! simulator's per-event inner loop. `release` rebuilds the prefix tail
//! and wakes waiters. Both are measured at a high steady-state MPL.

use lockgran_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lockgran_core::conflict::{ConcurrencyControl, ConflictDecision, ProbabilisticConflict};
use lockgran_sim::SimRng;

const LTOT: u64 = 5000;
const LOCKS_PER_TXN: u64 = 4;

/// A model at steady state with `mpl` active lock holders. Admission is
/// probabilistic, so blocked attempts are simply retried with the next
/// serial until the target MPL is reached (the stragglers stay parked as
/// waiters, as they would mid-run).
fn populated(mpl: u64) -> ProbabilisticConflict {
    let mut m = ProbabilisticConflict::new(LTOT);
    let mut rng = SimRng::new(0xC0F);
    let mut txn = 0u64;
    while (m.active_count() as u64) < mpl {
        txn += 1;
        let _ = m.try_acquire(txn, LOCKS_PER_TXN, &[], &mut rng);
    }
    m
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("conflict");
    for &mpl in &[64u64, 256] {
        let base = populated(mpl);
        group.bench_with_input(BenchmarkId::new("try_acquire", mpl), &mpl, |b, &_mpl| {
            b.iter_with_setup(
                || (base.clone(), SimRng::new(0xACE)),
                |(mut m, mut rng)| {
                    // A burst of fresh arrivals against the standing MPL;
                    // grants and blocks both exercise the prefix scan.
                    for txn in 0..128u64 {
                        let d = m.try_acquire(1_000_000 + txn, LOCKS_PER_TXN, &[], &mut rng);
                        black_box(d);
                    }
                    m
                },
            );
        });
        group.bench_with_input(BenchmarkId::new("release_rewake", mpl), &mpl, |b, &mpl| {
            // One blocked waiter per releasing holder, so every release
            // pays the prefix-tail rebuild plus a wake.
            let mut seeded = base.clone();
            let mut rng = SimRng::new(0xACE);
            let mut waiters = Vec::new();
            for txn in 0..4 * mpl {
                if let ConflictDecision::BlockedBy(holder) =
                    seeded.try_acquire(2_000_000 + txn, LOCKS_PER_TXN, &[], &mut rng)
                {
                    // Each holder released once; skip double-blocks.
                    if !waiters.contains(&holder) {
                        waiters.push(holder);
                    }
                    if waiters.len() >= 8 {
                        break;
                    }
                }
            }
            assert!(!waiters.is_empty(), "no blocks at mpl={mpl}");
            b.iter_with_setup(
                || (seeded.clone(), Vec::new()),
                |(mut m, mut woken)| {
                    for &holder in &waiters {
                        woken.clear();
                        m.release(holder, &mut woken);
                        black_box(woken.len());
                    }
                    m
                },
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
