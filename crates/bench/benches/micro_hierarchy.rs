//! Micro-bench: the hierarchical conflict model's hot paths.
//!
//! Every admitted transaction in hierarchical mode pays an intent chain —
//! escalation pass over the declared leaves, then IX intents on the
//! database and the covering areas, then the X leaf locks — and its
//! release wakes waiters through the same tree. These cycles are the
//! per-transaction inner loop of the extG/extH sweeps.

use lockgran_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lockgran_core::conflict::{AccessSampler, ConcurrencyControl};
use lockgran_core::{HierarchicalConflict, HierarchySpec};
use lockgran_sim::SimRng;
use lockgran_workload::Placement;

const LTOT: u64 = 5000;
const AREAS: u64 = 16;

fn model(threshold: Option<u64>) -> HierarchicalConflict {
    HierarchicalConflict::new(
        AccessSampler {
            placement: Placement::Best,
            ltot: LTOT,
            dbsize: 5000,
            hot_spot: None,
        },
        HierarchySpec::default()
            .with_areas(AREAS)
            .with_escalation_threshold(threshold),
    )
}

/// Disjoint leaf runs, one per transaction, so every cycle is granted.
fn granule_run(txn: u64, locks: u64) -> Vec<u64> {
    let start = (txn * locks) % (LTOT - locks);
    (start..start + locks).collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy");

    for &locks in &[4u64, 32] {
        group.bench_with_input(
            BenchmarkId::new("intent_chain_cycle", locks),
            &locks,
            |b, &locks| {
                // Never escalate: the full intent chain is paid each time.
                let mut m = model(None);
                let mut rng = SimRng::new(0xBEEF);
                let mut woken = Vec::new();
                let mut serial = 0u64;
                b.iter(|| {
                    let txn = serial;
                    serial += 1;
                    let set = granule_run(txn, locks);
                    black_box(m.try_acquire(txn, locks, &set, &mut rng));
                    woken.clear();
                    m.release(txn, &mut woken);
                    black_box(woken.len());
                });
            },
        );
    }

    group.bench_function("escalated_cycle_32", |b| {
        // Threshold 4 with 32 contiguous leaves: the declared set
        // collapses to area locks, so the escalation pass dominates.
        let mut m = model(Some(4));
        let mut rng = SimRng::new(0xBEEF);
        let mut woken = Vec::new();
        let mut serial = 0u64;
        b.iter(|| {
            let txn = serial;
            serial += 1;
            let set = granule_run(txn, 32);
            black_box(m.try_acquire(txn, 32, &set, &mut rng));
            woken.clear();
            m.release(txn, &mut woken);
            black_box(woken.len());
        });
    });

    group.bench_function("blocked_retry_wake", |b| {
        // A holder pins an area; a waiter blocks on it, is woken at
        // release, and retries — the contended path of the model.
        let mut serial = 0u64;
        b.iter(|| {
            let mut m = model(None);
            let mut rng = SimRng::new(0xBEEF);
            let holder = serial;
            let waiter = serial + 1;
            serial += 2;
            let set: Vec<u64> = (0..8).collect();
            black_box(m.try_acquire(holder, 8, &set, &mut rng));
            black_box(m.try_acquire(waiter, 8, &set, &mut rng));
            let mut woken = Vec::new();
            m.release(holder, &mut woken);
            black_box(m.try_acquire(waiter, 8, &[], &mut rng));
            woken.clear();
            m.release(waiter, &mut woken);
            black_box(woken.len());
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
