//! Micro-bench: the sharded try-lock table across shard counts.
//!
//! Single-threaded request cost of the all-or-nothing protocol — shard
//! routing, per-shard locking, and grant/rollback bookkeeping — at 1, 4,
//! and 16 shards, so the fixed overhead a shard adds to each request is
//! visible independently of cross-thread contention.

use lockgran_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lockgran_lockmgr::{GranuleId, LockMode, ShardedLockTable, TxnId};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_sharded");

    for &shards in &[1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("try_lock_all_50", shards),
            &shards,
            |b, &n| {
                let table = ShardedLockTable::new(n);
                let locks: Vec<(GranuleId, LockMode)> = (0..50u64)
                    .map(|g| (GranuleId(g * 7), LockMode::X))
                    .collect();
                let granules: Vec<GranuleId> = locks.iter().map(|&(g, _)| g).collect();
                let mut serial = 0u64;
                b.iter(|| {
                    let txn = TxnId(serial);
                    serial += 1;
                    black_box(table.try_lock_all(txn, &locks));
                    table.unlock_all(txn, &granules);
                });
            },
        );
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
