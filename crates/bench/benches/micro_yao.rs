//! Micro-bench: Yao's formula, direct vs memoized.
//!
//! `Placement::Random` evaluates Yao's running product in `O(nu)`
//! multiplications per call; the workload generator asks once per
//! spawned transaction over at most `maxtransize` distinct sizes, so
//! [`LocksMemo`] answers repeats with an array load. This bench pins the
//! gap between the two on a generator-like request stream.

use lockgran_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lockgran_sim::SimRng;
use lockgran_workload::{LocksMemo, Placement};

const DBSIZE: u64 = 5000;
const LTOT: u64 = 200;
const MAXTRANSIZE: u64 = 500;

/// The sizes a run would draw: uniform over `[1, maxtransize]`.
fn request_stream(n: usize) -> Vec<u64> {
    let mut rng = SimRng::new(0x1A0);
    (0..n)
        .map(|_| rng.uniform_inclusive(1, MAXTRANSIZE))
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("yao");
    for &n in &[256usize, 4096] {
        let sizes = request_stream(n);
        group.bench_with_input(BenchmarkId::new("direct", n), &sizes, |b, sizes| {
            b.iter(|| {
                let mut acc = 0u64;
                for &nu in sizes {
                    acc = acc.wrapping_add(Placement::Random.locks_required(nu, LTOT, DBSIZE));
                }
                black_box(acc)
            });
        });
        group.bench_with_input(BenchmarkId::new("memoized", n), &sizes, |b, sizes| {
            // The memo is reused across iterations, as it is across one
            // run's transactions — steady-state is all table hits.
            let mut memo = LocksMemo::new(Placement::Random, LTOT, DBSIZE, MAXTRANSIZE);
            b.iter(|| {
                let mut acc = 0u64;
                for &nu in sizes {
                    acc = acc.wrapping_add(memo.locks_required(nu));
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
