//! Micro-bench: the lock table.
//!
//! Grant/release cycles at paper-scale granule counts, with and without
//! contention, plus the conservative all-at-once protocol.

use lockgran_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lockgran_lockmgr::{ConservativeScheduler, GranuleId, LockMode, LockTable, TxnId};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("lock_table");

    for &locks_per_txn in &[5usize, 50, 250] {
        group.bench_with_input(
            BenchmarkId::new("uncontended_x_cycle", locks_per_txn),
            &locks_per_txn,
            |b, &k| {
                let mut lt = LockTable::new();
                let mut serial = 0u64;
                b.iter(|| {
                    let txn = TxnId(serial);
                    serial += 1;
                    for g in 0..k as u64 {
                        black_box(lt.lock(txn, GranuleId(g), LockMode::X));
                    }
                    black_box(lt.release_all(txn));
                });
            },
        );
    }

    group.bench_function("contended_queue_churn", |b| {
        // One holder, a convoy of waiters, continuous release/grant.
        let mut lt = LockTable::new();
        let g = GranuleId(0);
        for t in 0..32u64 {
            let _ = lt.lock(TxnId(t), g, LockMode::X);
        }
        let mut head = 0u64;
        let mut tail = 32u64;
        b.iter(|| {
            black_box(lt.unlock(TxnId(head), g));
            head += 1;
            let _ = lt.lock(TxnId(tail), g, LockMode::X);
            tail += 1;
        });
    });

    group.bench_function("conservative_request_all_50", |b| {
        let mut s = ConservativeScheduler::new();
        let locks: Vec<(GranuleId, LockMode)> =
            (0..50).map(|g| (GranuleId(g), LockMode::X)).collect();
        let mut serial = 0u64;
        b.iter(|| {
            let txn = TxnId(serial);
            serial += 1;
            black_box(s.request_all(txn, &locks));
            black_box(s.release(txn));
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
