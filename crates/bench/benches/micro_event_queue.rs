//! Micro-bench: the future-event list.
//!
//! Push/pop throughput at the queue sizes the model actually reaches
//! (tens to a few thousands of pending events) — the simulator's hottest
//! data structure.

use lockgran_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lockgran_sim::{CalendarQueue, EventQueue, Time};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &n in &[64usize, 1024, 16384] {
        group.bench_with_input(BenchmarkId::new("push_pop_cycle", n), &n, |b, &n| {
            // Pre-fill to steady-state size, then measure a push+pop churn.
            let mut q = EventQueue::new();
            for i in 0..n {
                q.push(Time::from_ticks((i as u64) * 7 % 10_000), i as u64);
            }
            let mut t = 10_000u64;
            b.iter(|| {
                let (at, v) = q.pop().expect("non-empty");
                t += 13;
                q.push(Time::from_ticks(t), v);
                black_box(at);
            });
        });
    }
    for &n in &[64usize, 1024, 16384] {
        group.bench_with_input(
            BenchmarkId::new("calendar_push_pop_cycle", n),
            &n,
            |b, &n| {
                let mut q = CalendarQueue::new();
                for i in 0..n {
                    q.push(Time::from_ticks((i as u64) * 7 % 10_000), i as u64);
                }
                let mut t = 10_000u64;
                b.iter(|| {
                    let (at, v) = q.pop().expect("non-empty");
                    t += 13;
                    q.push(Time::from_ticks(t), v);
                    black_box(at);
                });
            },
        );
    }
    group.bench_function("drain_4096", |b| {
        b.iter_with_setup(
            || {
                let mut q = EventQueue::new();
                for i in 0..4096u64 {
                    q.push(Time::from_ticks(i.wrapping_mul(2_654_435_761) % 100_000), i);
                }
                q
            },
            |mut q| {
                while let Some(e) = q.pop() {
                    black_box(e);
                }
            },
        );
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
