//! Macro capacity bench: 10⁷-entity databases, 10⁵ resident transactions.
//!
//! The paper's own experiments stop at `dbsize = 5000`; this bench pins
//! the engine at production scale — `dbsize = 10_000_000`, `ntrans =
//! 100_000` (a 10⁵-slot slab and a pending queue to match, with
//! admission control at MPL 64), `maxtransize = 100_000` (the Yao
//! evaluation runs in its closed-form ln-gamma regime) — on both the
//! probabilistic and the hierarchical conflict models. Each iteration
//! streams a fresh `(seed)` run through one reused [`RunArena`], which is
//! how the sweep harness executes at this scale: the slab, the
//! future-event list, the lock tables and the Yao memo all carry across
//! runs.
//!
//! Under `LOCKGRAN_BENCH_QUICK` the configuration shrinks (10⁵ entities,
//! 2·10³ transactions) so CI can smoke the same code path in seconds.

use lockgran_bench::{criterion_group, criterion_main, Criterion};
use lockgran_core::{ConflictMode, HierarchySpec, ModelConfig, RunArena};
use lockgran_workload::{Placement, SizeDistribution};
use std::hint::black_box;

struct Scale {
    dbsize: u64,
    ntrans: u32,
    ltot: u64,
    maxtransize_prob: u64,
    maxtransize_hier: u64,
    tmax: f64,
}

fn scale() -> Scale {
    if std::env::var_os("LOCKGRAN_BENCH_QUICK").is_some() {
        // CI smoke: same code paths (slab reuse, ln-gamma Yao is still
        // exercised via the large maxtransize-to-dbsize ratio), small
        // enough for seconds-scale runs.
        Scale {
            dbsize: 100_000,
            ntrans: 2_000,
            ltot: 1_000,
            maxtransize_prob: 10_000,
            maxtransize_hier: 500,
            tmax: 2_500.0,
        }
    } else {
        Scale {
            dbsize: 10_000_000,
            ntrans: 100_000,
            ltot: 10_000,
            // The probabilistic point stresses the Yao/memo layer with
            // transaction sizes up to 10⁵ entities; the hierarchical
            // point keeps granule sets materializable (LU ≈ hundreds)
            // while the slab still holds 10⁵ residents.
            maxtransize_prob: 100_000,
            maxtransize_hier: 2_000,
            tmax: 110_000.0,
        }
    }
}

fn capacity_base(s: &Scale) -> ModelConfig {
    ModelConfig::table1()
        .with_ltot(s.ltot)
        .with_ntrans(s.ntrans)
        .with_mpl_limit(Some(64))
        .with_tmax(s.tmax)
}

fn bench(c: &mut Criterion) {
    let s = scale();
    // Random placement routes every spawn through Yao's formula — the
    // paper's §3.5 model for unclustered access — so each of the 10⁵
    // arrivals evaluates `E[LU]` at `d = 10⁷`. That is the layer the
    // capacity work targets: the closed-form ln-gamma evaluation plus the
    // cross-run memo carried by the arena.
    let prob = capacity_base(&s)
        .with_placement(Placement::Random)
        .with_size(SizeDistribution::Uniform {
            max: s.maxtransize_prob,
        });
    // `with_size` does not touch dbsize; set it last so validation sees
    // the full pair.
    let prob = ModelConfig {
        dbsize: s.dbsize,
        ..prob
    };
    let hier = ModelConfig {
        dbsize: s.dbsize,
        ..capacity_base(&s)
            .with_size(SizeDistribution::Uniform {
                max: s.maxtransize_hier,
            })
            .with_conflict(ConflictMode::Hierarchical)
            .with_hierarchy(Some(
                HierarchySpec::default()
                    .with_areas(100)
                    .with_escalation_threshold(Some(64)),
            ))
    };

    let mut group = c.benchmark_group("capacity");
    let mut arena = RunArena::new();
    let mut seed = 0u64;
    group.bench_function("probabilistic", |b| {
        b.iter(|| {
            seed += 1;
            black_box(arena.run(black_box(&prob), seed).totcom)
        })
    });
    let mut arena = RunArena::new();
    let mut seed = 0u64;
    group.bench_function("hierarchical", |b| {
        b.iter(|| {
            seed += 1;
            black_box(arena.run(black_box(&hier), seed).totcom)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(10)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
