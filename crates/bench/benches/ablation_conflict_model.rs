//! Ablation: the paper's probabilistic conflict draw vs a real lock
//! table (explicit granule sets + conservative locking).
//!
//! Prints a side-by-side throughput comparison over the lock sweep, then
//! times both modes so the cost of materializing lock sets is visible.

use lockgran_bench::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lockgran_core::{sim, ConflictMode, ModelConfig};

fn bench(c: &mut Criterion) {
    println!("\n== ablation: probabilistic vs explicit conflict model ==");
    println!(
        "{:>6} {:>14} {:>14} {:>7}",
        "ltot", "probabilistic", "explicit", "ratio"
    );
    for ltot in [1u64, 10, 100, 1000, 5000] {
        let base = ModelConfig::table1().with_ltot(ltot).with_tmax(1_000.0);
        let p = sim::run(&base.clone().with_conflict(ConflictMode::Probabilistic), 42);
        let e = sim::run(&base.with_conflict(ConflictMode::Explicit), 42);
        println!(
            "{ltot:>6} {:>14.4} {:>14.4} {:>7.2}",
            p.throughput,
            e.throughput,
            p.throughput / e.throughput
        );
    }

    let mut group = c.benchmark_group("ablation_conflict_model");
    // The hierarchical model's hot path is excluded: it has its own
    // micro-bench (`micro_hierarchy`).
    for mode in [
        ConflictMode::Probabilistic,
        ConflictMode::Explicit,
        ConflictMode::Twophase,
    ] {
        let cfg = ModelConfig::table1().with_conflict(mode).with_tmax(300.0);
        group.bench_function(mode.name(), |b| b.iter(|| sim::run(black_box(&cfg), 42)));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
