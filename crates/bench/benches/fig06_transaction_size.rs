//! Bench for paper artifact `fig6`: regenerates the rows in quick mode,
//! then times a representative simulation point.

use lockgran_bench::{criterion_group, criterion_main, Criterion};
use lockgran_core::{sim, ModelConfig};
#[allow(unused_imports)]
use lockgran_workload::{Partitioning, Placement, SizeDistribution};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    lockgran_bench::regenerate("fig6");
    let cfg = ModelConfig::table1()
        .with_maxtransize(2500)
        .with_tmax(300.0);
    c.bench_function("fig6/maxtransize2500", |b| {
        b.iter(|| sim::run(black_box(&cfg), 42))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
