//! Micro-bench: the preemptive-resume server and a whole-simulation
//! events-per-second figure.

use lockgran_bench::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use lockgran_core::{sim, ModelConfig};
use lockgran_sim::{Class, CompletionOutcome, Dur, Job, JobId, Server, Time};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("server");

    group.bench_function("submit_complete_cycle", |b| {
        let mut s = Server::new();
        let mut now = Time::ZERO;
        b.iter(|| {
            let c = s
                .submit(
                    now,
                    Job {
                        id: JobId(1),
                        demand: Dur::from_ticks(10),
                        class: Class::Transaction,
                    },
                )
                .expect("idle server starts immediately");
            now = c.at;
            match s.on_completion(now, c.token) {
                CompletionOutcome::Finished { job, .. } => black_box(job),
                CompletionOutcome::Stale => unreachable!(),
            };
        });
    });

    group.bench_function("preemption_cycle", |b| {
        let mut s = Server::new();
        let mut now = Time::ZERO;
        b.iter(|| {
            // Long transaction job, preempted by a lock job, both drained.
            let c1 = s
                .submit(
                    now,
                    Job {
                        id: JobId(1),
                        demand: Dur::from_ticks(100),
                        class: Class::Transaction,
                    },
                )
                .unwrap();
            let c2 = s
                .submit(
                    now + Dur::from_ticks(10),
                    Job {
                        id: JobId(2),
                        demand: Dur::from_ticks(5),
                        class: Class::Lock,
                    },
                )
                .unwrap();
            let _ = black_box(s.on_completion(c1.at, c1.token)); // stale
            if let CompletionOutcome::Finished { next: Some(c3), .. } =
                s.on_completion(c2.at, c2.token)
            {
                let _ = black_box(s.on_completion(c3.at, c3.token));
                now = c3.at;
            } else {
                unreachable!("transaction job must resume");
            }
        });
    });

    group.finish();

    // End-to-end simulator speed, reported as simulated-time-units/sec.
    let mut e2e = c.benchmark_group("simulator");
    let cfg = ModelConfig::table1().with_tmax(300.0);
    e2e.throughput(Throughput::Elements(300));
    e2e.bench_function("table1_units_per_sec", |b| {
        b.iter(|| sim::run(black_box(&cfg), 42))
    });
    e2e.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
