//! Micro-bench: lock-table request cost vs resident granule count.
//!
//! The paper's granularity sweeps keep up to `ltot` granule entries live
//! in the table at once. This bench pins per-request cost at ltot ∈
//! {10^2, 10^4, 10^6} so the container's scaling — the hash-indexed slab
//! is O(1) per probe where an ordered map pays O(log n) pointer-chasing —
//! is visible in isolation from the rest of the simulator.

use lockgran_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lockgran_lockmgr::{GranuleId, LockMode, LockTable, TxnId};

/// Resident holder transactions the populated table is spread across.
const HOLDERS: u64 = 16;
/// Granules the probe transaction touches per iteration.
const PROBE: u64 = 64;

/// A table with `ltot` granule entries resident, S-held by persistent
/// holder transactions that never release.
fn resident_table(ltot: u64) -> LockTable {
    let mut lt = LockTable::new();
    for g in 0..ltot {
        let _ = lt.lock(TxnId(g % HOLDERS), GranuleId(g), LockMode::S);
    }
    lt
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_locktable");

    for &ltot in &[100u64, 10_000, 1_000_000] {
        // Acquire/release cycle strided across the resident set: pure
        // index probe + compatible grant + release at table size ltot.
        group.bench_with_input(
            BenchmarkId::new("grant_release", ltot),
            &ltot,
            |b, &ltot| {
                let mut lt = resident_table(ltot);
                let step = (ltot / PROBE).max(1);
                let probes = PROBE.min(ltot);
                let mut serial = HOLDERS;
                let mut offset = 0u64;
                b.iter(|| {
                    let txn = TxnId(serial);
                    serial += 1;
                    offset = (offset + 1) % step;
                    for i in 0..probes {
                        let g = (i * step + offset) % ltot;
                        black_box(lt.lock(txn, GranuleId(g), LockMode::S));
                    }
                    black_box(lt.release_all(txn));
                });
            },
        );

        // Conflict-queue churn on one hot granule while ltot entries stay
        // resident: block + wake + promote cost at table size ltot.
        group.bench_with_input(BenchmarkId::new("queue_churn", ltot), &ltot, |b, &ltot| {
            let mut lt = resident_table(ltot);
            let hot = GranuleId(ltot); // fresh granule: pure X convoy
            let mut head = HOLDERS;
            let mut tail = HOLDERS;
            for _ in 0..32 {
                let _ = lt.lock(TxnId(tail), hot, LockMode::X);
                tail += 1;
            }
            b.iter(|| {
                black_box(lt.unlock(TxnId(head), hot));
                head += 1;
                let _ = lt.lock(TxnId(tail), hot, LockMode::X);
                tail += 1;
            });
        });
    }

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
