//! `bench_diff` — compare a fresh bench run against the committed
//! baseline.
//!
//! ```text
//! bench_diff --baseline results/bench --current /tmp/bench.XXXX \
//!     [--threshold 25] [--summary BENCH_5.json]
//! ```
//!
//! Both directories hold the per-binary JSON reports the harness writes
//! (`{"harness": ..., "benches": [{"id", "median_ns", ...}]}`). Every
//! benchmark present in both is compared on `median_ns`; a slowdown
//! beyond the threshold (percent) is a regression and the process exits
//! nonzero, naming each offender and its delta on stderr. Benchmarks
//! present on only one side are listed but never fail the run — new
//! benches land before their baseline does.
//!
//! `--summary PATH` additionally writes a machine-readable snapshot of
//! the comparison (per-benchmark baseline/current median ns/iter and the
//! percentage delta) so each PR can commit a `BENCH_<n>.json` at the repo
//! root and the perf trajectory stays on the record.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lockgran_sim::json::Json;

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(offenders) if offenders.is_empty() => ExitCode::SUCCESS,
        Ok(offenders) => {
            eprintln!(
                "bench_diff: {} regression(s) beyond threshold:",
                offenders.len()
            );
            for (id, delta) in &offenders {
                eprintln!("  {id}  {delta:+.1}%");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_diff: error: {e}");
            eprintln!();
            eprintln!(
                "usage: bench_diff --baseline DIR --current DIR [--threshold PCT] \
                 [--summary FILE]"
            );
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<Vec<(String, f64)>, String> {
    let mut baseline: Option<PathBuf> = None;
    let mut current: Option<PathBuf> = None;
    let mut summary: Option<PathBuf> = None;
    let mut threshold = 25.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match a.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(val("--baseline")?)),
            "--current" => current = Some(PathBuf::from(val("--current")?)),
            "--summary" => summary = Some(PathBuf::from(val("--summary")?)),
            "--threshold" => {
                let s = val("--threshold")?;
                threshold = s
                    .parse()
                    .map_err(|_| format!("--threshold: cannot parse '{s}'"))?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let baseline = baseline.ok_or("missing --baseline")?;
    let current = current.ok_or("missing --current")?;

    let base = load_dir(&baseline)?;
    let cur = load_dir(&current)?;
    if cur.is_empty() {
        return Err(format!("no bench reports found in {}", current.display()));
    }

    let mut offenders: Vec<(String, f64)> = Vec::new();
    println!(
        "{:<48} {:>14} {:>14} {:>9}",
        "benchmark", "baseline", "current", "delta"
    );
    for (id, &cur_ns) in &cur {
        match base.get(id) {
            Some(&base_ns) if base_ns > 0.0 => {
                let delta = (cur_ns - base_ns) / base_ns * 100.0;
                let verdict = if delta > threshold {
                    offenders.push((id.clone(), delta));
                    "  REGRESSION"
                } else if delta < -threshold {
                    "  improved"
                } else {
                    ""
                };
                println!(
                    "{id:<48} {:>11.1} ns {:>11.1} ns {delta:>+8.1}%{verdict}",
                    base_ns, cur_ns
                );
            }
            _ => println!("{id:<48} {:>14} {:>11.1} ns      new", "-", cur_ns),
        }
    }
    for id in base.keys().filter(|id| !cur.contains_key(*id)) {
        println!("{id:<48} missing from current run");
    }
    println!(
        "\n{} benchmark(s) compared, threshold ±{threshold}%, {} regression(s)",
        cur.len(),
        offenders.len()
    );
    if let Some(path) = summary {
        write_summary(&path, &base, &cur, threshold)?;
        println!("summary written to {}", path.display());
    }
    Ok(offenders)
}

/// Serialize the comparison to `path`: one record per current benchmark
/// with baseline/current median ns/iter and the percent delta (`null`
/// where the baseline has no entry).
fn write_summary(
    path: &Path,
    base: &BTreeMap<String, f64>,
    cur: &BTreeMap<String, f64>,
    threshold: f64,
) -> Result<(), String> {
    let benches: Vec<Json> = cur
        .iter()
        .map(|(id, &cur_ns)| {
            let base_ns = base.get(id).copied();
            let delta = base_ns
                .filter(|&b| b > 0.0)
                .map(|b| (cur_ns - b) / b * 100.0);
            let num = |v: Option<f64>| v.map_or(Json::Null, Json::Float);
            Json::object(vec![
                ("id", Json::Str(id.clone())),
                ("baseline_median_ns", num(base_ns)),
                ("current_median_ns", Json::Float(cur_ns)),
                ("delta_pct", num(delta)),
            ])
        })
        .collect();
    let doc = Json::object(vec![
        ("schema", Json::Str("lockgran-bench-summary/v1".to_string())),
        ("threshold_pct", Json::Float(threshold)),
        ("benches", Json::Array(benches)),
    ]);
    std::fs::write(path, format!("{}\n", doc.pretty()))
        .map_err(|e| format!("writing {}: {e}", path.display()))
}

/// Map of `harness/bench_id` → median ns/iter over every report in `dir`.
fn load_dir(dir: &Path) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let report = lockgran_sim::json::parse(&text)
            .map_err(|e| format!("parsing {}: {e}", path.display()))?;
        let harness = report["harness"]
            .as_str()
            .ok_or_else(|| format!("{}: missing \"harness\"", path.display()))?
            .to_string();
        let benches = report["benches"]
            .as_array()
            .ok_or_else(|| format!("{}: missing \"benches\"", path.display()))?;
        for b in benches {
            let id = b["id"]
                .as_str()
                .ok_or_else(|| format!("{}: bench without \"id\"", path.display()))?;
            let median = b["median_ns"]
                .as_f64()
                .ok_or_else(|| format!("{}: {id}: missing \"median_ns\"", path.display()))?;
            out.insert(format!("{harness}/{id}"), median);
        }
    }
    Ok(out)
}
