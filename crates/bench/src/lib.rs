//! Shared helpers for the Criterion benchmark suite.
//!
//! Every per-figure bench does two things:
//!
//! 1. **Regenerate** the paper artifact in quick mode and print the rows
//!    the paper's plot would be drawn from (once, at bench start-up).
//! 2. **Time** a representative simulation point so regressions in the
//!    simulator's hot path show up in Criterion history.

use lockgran_core::ModelConfig;
use lockgran_experiments::figures::run_by_id;
use lockgran_experiments::{render_table, RunOptions};

/// Regenerate a figure in quick mode and print its rows.
pub fn regenerate(id: &str) {
    let opts = RunOptions::quick();
    let fig = run_by_id(id, &opts).unwrap_or_else(|| panic!("unknown figure {id}"));
    println!("\n{}", render_table(&fig));
}

/// A short, representative configuration for timing (not measuring model
/// outputs): Table 1 at a reduced horizon.
pub fn timing_config() -> ModelConfig {
    ModelConfig::table1().with_tmax(300.0)
}
