//! Dependency-free benchmark harness plus shared helpers for the suite.
//!
//! The harness reproduces the slice of the Criterion API the benches use
//! (`criterion_group!`/`criterion_main!`, benchmark groups, per-input
//! benches, element throughput), so a bench file reads exactly like its
//! Criterion counterpart — but everything below is in-tree:
//!
//! * each benchmark is warmed up, then timed over `sample_size` samples
//!   of a calibrated iteration count;
//! * per-sample nanoseconds-per-iteration feed min / mean / median / p95
//!   statistics, printed to stdout;
//! * every bench binary writes its results as JSON (parseable by
//!   [`lockgran_sim::json`]) into `results/bench/<bench_name>.json`.
//!
//! Environment knobs:
//!
//! * `LOCKGRAN_BENCH_QUICK=1` — shrink warm-up/measurement budgets to a
//!   smoke-test scale (used by CI and `scripts/verify.sh`);
//! * `LOCKGRAN_BENCH_OUT=<dir>` — redirect the JSON report directory.
//!
//! Every per-figure bench does two things:
//!
//! 1. **Regenerate** the paper artifact in quick mode and print the rows
//!    the paper's plot would be drawn from (once, at bench start-up).
//! 2. **Time** a representative simulation point so regressions in the
//!    simulator's hot path show up in the recorded history.

use std::time::{Duration, Instant};

use lockgran_core::ModelConfig;
use lockgran_experiments::figures::run_by_id;
use lockgran_experiments::{render_table, RunOptions};
use lockgran_sim::{Json, ToJson};

/// Regenerate a figure in quick mode and print its rows.
pub fn regenerate(id: &str) {
    let opts = RunOptions::quick();
    let fig = run_by_id(id, &opts).unwrap_or_else(|| panic!("unknown figure {id}"));
    println!("\n{}", render_table(&fig));
}

/// A short, representative configuration for timing (not measuring model
/// outputs): Table 1 at a reduced horizon.
pub fn timing_config() -> ModelConfig {
    ModelConfig::table1().with_tmax(300.0)
}

// ---------------------------------------------------------------------------
// Timing statistics
// ---------------------------------------------------------------------------

/// The recorded outcome of one benchmark: per-sample ns/iteration
/// statistics plus optional element throughput.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full benchmark id, e.g. `event_queue/push_pop_cycle/64`.
    pub id: String,
    /// Iterations per sample (after calibration).
    pub iterations: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Mean over samples, ns per iteration.
    pub mean_ns: f64,
    /// Median over samples, ns per iteration.
    pub median_ns: f64,
    /// 95th-percentile sample, ns per iteration.
    pub p95_ns: f64,
    /// Elements processed per iteration (set via [`Throughput::Elements`]).
    pub elements: Option<u64>,
}

impl BenchResult {
    /// Median elements/second, if an element throughput was declared.
    pub fn elements_per_sec(&self) -> Option<f64> {
        self.elements
            .filter(|_| self.median_ns > 0.0)
            .map(|e| e as f64 * 1e9 / self.median_ns)
    }
}

impl ToJson for BenchResult {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id", self.id.to_json()),
            ("iterations", self.iterations.to_json()),
            ("samples", self.samples.to_json()),
            ("min_ns", self.min_ns.to_json()),
            ("mean_ns", self.mean_ns.to_json()),
            ("median_ns", self.median_ns.to_json()),
            ("p95_ns", self.p95_ns.to_json()),
        ];
        if let Some(eps) = self.elements_per_sec() {
            fields.push(("elements_per_sec", eps.to_json()));
        }
        Json::object(fields)
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

// ---------------------------------------------------------------------------
// Bencher: the timed inner loop
// ---------------------------------------------------------------------------

/// Handed to each benchmark closure; [`Bencher::iter`] runs the routine
/// for the harness-chosen iteration count and records the elapsed time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over the harness-chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Like [`Bencher::iter`], but re-runs `setup` (untimed) before every
    /// timed invocation of `routine`.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

// ---------------------------------------------------------------------------
// Criterion-shaped driver
// ---------------------------------------------------------------------------

/// Element-count declaration for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
}

/// A parameterized benchmark id, rendered as `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("push_pop_cycle", 64)` → `push_pop_cycle/64`.
    pub fn new(function: &str, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// The benchmark driver: configuration plus accumulated results.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// `cargo test --benches` passes `--test`: run every routine once to
    /// prove it works, skip timing and reporting.
    test_mode: bool,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var_os("LOCKGRAN_BENCH_QUICK").is_some();
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: if quick { 5 } else { 20 },
            measurement_time: if quick {
                Duration::from_millis(200)
            } else {
                Duration::from_secs(3)
            },
            warm_up_time: if quick {
                Duration::from_millis(50)
            } else {
                Duration::from_millis(500)
            },
            test_mode,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two samples");
        if std::env::var_os("LOCKGRAN_BENCH_QUICK").is_none() {
            self.sample_size = n;
        }
        self
    }

    /// Total measurement budget per benchmark (split over the samples).
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        if std::env::var_os("LOCKGRAN_BENCH_QUICK").is_none() {
            self.measurement_time = t;
        }
        self
    }

    /// Warm-up budget per benchmark (also used for calibration).
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        if std::env::var_os("LOCKGRAN_BENCH_QUICK").is_none() {
            self.warm_up_time = t;
        }
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id.to_string(), None, f);
        self
    }

    /// Open a named group; contained benchmark ids are prefixed with
    /// `name/`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_string(),
            throughput: None,
        }
    }

    /// Results recorded so far (consumed by `criterion_main!`).
    pub fn into_results(self) -> Vec<BenchResult> {
        self.results
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, elements: Option<u64>, mut f: F) {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        if self.test_mode {
            f(&mut b);
            return;
        }

        // Warm-up doubles the iteration count until the budget is spent,
        // which also calibrates the per-iteration cost.
        let warm_start = Instant::now();
        let mut per_iter = loop {
            f(&mut b);
            let cost = b.elapsed.max(Duration::from_nanos(1)) / b.iters as u32;
            if warm_start.elapsed() >= self.warm_up_time {
                break cost;
            }
            b.iters = (b.iters * 2).min(1 << 40);
        };
        if per_iter.is_zero() {
            per_iter = Duration::from_nanos(1);
        }

        let per_sample = self.measurement_time / self.sample_size as u32;
        let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 40) as u64;

        let mut samples_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(f64::total_cmp);

        let result = BenchResult {
            id,
            iterations: iters,
            samples: samples_ns.len(),
            min_ns: samples_ns[0],
            mean_ns: samples_ns.iter().sum::<f64>() / samples_ns.len() as f64,
            median_ns: percentile(&samples_ns, 0.5),
            p95_ns: percentile(&samples_ns, 0.95),
            elements,
        };
        let mut line = format!(
            "{:<44} median {:>12}  (min {}, p95 {}, {} iters x {} samples)",
            result.id,
            format_ns(result.median_ns),
            format_ns(result.min_ns),
            format_ns(result.p95_ns),
            result.iterations,
            result.samples,
        );
        if let Some(eps) = result.elements_per_sec() {
            line.push_str(&format!("  [{eps:.0} elem/s]"));
        }
        println!("{line}");
        self.results.push(result);
    }
}

/// A group of related benchmarks sharing an id prefix and, optionally, an
/// element-throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
    throughput: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Declare element throughput for subsequent benches in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        let Throughput::Elements(n) = t;
        self.throughput = Some(n);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{id}", self.prefix);
        self.criterion.run_one(full, self.throughput, f);
        self
    }

    /// Run one parameterized benchmark; the closure receives the input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.prefix, id.id);
        self.criterion
            .run_one(full, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (kept for Criterion API parity; recording is eager).
    pub fn finish(&mut self) {}
}

/// Write the per-binary JSON report to `results/bench/<name>.json` (or
/// `$LOCKGRAN_BENCH_OUT/<name>.json`). Called by `criterion_main!`; does
/// nothing in `--test` mode or when there are no results.
pub fn write_report(name: &str, results: &[BenchResult]) {
    if results.is_empty() {
        return;
    }
    let dir = std::env::var_os("LOCKGRAN_BENCH_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/bench")
        });
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let report = Json::object(vec![
        ("harness", name.to_json()),
        ("benches", results.to_vec().to_json()),
    ]);
    let path = dir.join(format!("{name}.json"));
    match std::fs::write(&path, report.pretty() + "\n") {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Define a benchmark group function, mirroring Criterion's macro of the
/// same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() -> Vec<$crate::BenchResult> {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
            criterion.into_results()
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main`: run every group, then write the JSON report, mirroring
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut all: Vec<$crate::BenchResult> = Vec::new();
            $( all.extend($group()); )+
            $crate::write_report(env!("CARGO_CRATE_NAME"), &all);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_criterion() -> Criterion {
        Criterion {
            sample_size: 3,
            measurement_time: Duration::from_millis(3),
            warm_up_time: Duration::from_millis(1),
            test_mode: false,
            results: Vec::new(),
        }
    }

    #[test]
    fn records_sane_statistics() {
        let mut c = quick_criterion();
        c.bench_function("sum_1000", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        let results = c.into_results();
        assert_eq!(results.len(), 1);
        let r = &results[0];
        assert_eq!(r.id, "sum_1000");
        assert!(r.iterations >= 1);
        assert_eq!(r.samples, 3);
        assert!(r.min_ns > 0.0);
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.p95_ns);
    }

    #[test]
    fn groups_prefix_and_report_throughput() {
        let mut c = quick_criterion();
        {
            let mut g = c.benchmark_group("grp");
            g.throughput(Throughput::Elements(100));
            g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
                b.iter(|| n * 2)
            });
            g.finish();
        }
        let results = c.into_results();
        assert_eq!(results[0].id, "grp/param/7");
        assert_eq!(results[0].elements, Some(100));
        assert!(results[0].elements_per_sec().unwrap() > 0.0);
    }

    #[test]
    fn iter_with_setup_excludes_setup_time() {
        let mut c = quick_criterion();
        c.bench_function("setup", |b| {
            b.iter_with_setup(|| vec![1u64; 512], |v| v.iter().sum::<u64>())
        });
        let r = c.into_results();
        assert_eq!(r.len(), 1);
        assert!(r[0].min_ns > 0.0);
    }

    #[test]
    fn result_json_shape() {
        let r = BenchResult {
            id: "x/y".into(),
            iterations: 10,
            samples: 3,
            min_ns: 1.0,
            mean_ns: 2.0,
            median_ns: 2.0,
            p95_ns: 3.0,
            elements: Some(4),
        };
        let j = r.to_json();
        assert_eq!(j["id"], "x/y");
        assert_eq!(j["iterations"].as_u64(), Some(10));
        assert!(j["elements_per_sec"].as_f64().unwrap() > 0.0);
        // The report round-trips through the in-tree parser.
        let parsed = lockgran_sim::json::parse(&j.pretty()).unwrap();
        assert_eq!(parsed["median_ns"].as_f64(), Some(2.0));
    }
}
