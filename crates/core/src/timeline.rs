//! Windowed time series of system state.
//!
//! A [`TimelineCollector`] samples the running system at a fixed interval,
//! producing per-window throughput, utilizations and population levels.
//! Two uses:
//!
//! * `lockgran timeline` — watch a configuration approach steady state;
//! * Welch warm-up analysis (`lockgran warmup`) — feed per-replication
//!   window series into [`lockgran_sim::stats::welch`] to pick a
//!   defensible truncation point.

use lockgran_sim::{Dur, Json, Time, ToJson};

/// One sampling window's measurements.
#[derive(Clone, Copy, Debug)]
pub struct TimelinePoint {
    /// Window end, in model time units.
    pub t: f64,
    /// Completions within the window.
    pub completions: u64,
    /// Throughput within the window (completions / interval).
    pub throughput: f64,
    /// Active (lock-holding) transactions at the window end.
    pub active: u32,
    /// Blocked transactions at the window end.
    pub blocked: u32,
    /// Mean CPU utilization within the window.
    pub cpu_utilization: f64,
    /// Mean I/O utilization within the window.
    pub io_utilization: f64,
}

impl ToJson for TimelinePoint {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("t", self.t.to_json()),
            ("completions", self.completions.to_json()),
            ("throughput", self.throughput.to_json()),
            ("active", self.active.to_json()),
            ("blocked", self.blocked.to_json()),
            ("cpu_utilization", self.cpu_utilization.to_json()),
            ("io_utilization", self.io_utilization.to_json()),
        ])
    }
}

/// Accumulates timeline points (driven by the system's sample ticks).
#[derive(Debug)]
pub struct TimelineCollector {
    /// Sampling interval.
    pub interval: Dur,
    pub(crate) last_totcom: u64,
    pub(crate) last_cpu_busy: Dur,
    pub(crate) last_io_busy: Dur,
    /// Collected points, in time order.
    pub points: Vec<TimelinePoint>,
}

impl TimelineCollector {
    /// A collector sampling every `interval`.
    pub fn new(interval: Dur) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        TimelineCollector {
            interval,
            last_totcom: 0,
            last_cpu_busy: Dur::ZERO,
            last_io_busy: Dur::ZERO,
            points: Vec::new(),
        }
    }

    /// Record one window (called by the system at each sample tick).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record(
        &mut self,
        now: Time,
        totcom: u64,
        cpu_busy: Dur,
        io_busy: Dur,
        npros: u32,
        active: u32,
        blocked: u32,
    ) {
        let span = self.interval.units() * f64::from(npros);
        let completions = totcom - self.last_totcom;
        self.points.push(TimelinePoint {
            t: now.units(),
            completions,
            throughput: completions as f64 / self.interval.units(),
            active,
            blocked,
            cpu_utilization: (cpu_busy - self.last_cpu_busy).units() / span,
            io_utilization: (io_busy - self.last_io_busy).units() / span,
        });
        self.last_totcom = totcom;
        self.last_cpu_busy = cpu_busy;
        self.last_io_busy = io_busy;
    }

    /// The per-window throughput series (Welch input).
    pub fn throughput_series(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.throughput).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_computes_window_deltas() {
        let mut c = TimelineCollector::new(Dur::from_units(10.0));
        c.record(
            Time::from_units(10.0),
            5,
            Dur::from_units(40.0),
            Dur::from_units(80.0),
            10,
            3,
            2,
        );
        c.record(
            Time::from_units(20.0),
            12,
            Dur::from_units(90.0),
            Dur::from_units(180.0),
            10,
            4,
            1,
        );
        assert_eq!(c.points.len(), 2);
        let p = &c.points[1];
        assert_eq!(p.completions, 7);
        assert!((p.throughput - 0.7).abs() < 1e-12);
        assert!((p.cpu_utilization - 0.5).abs() < 1e-12);
        assert!((p.io_utilization - 1.0).abs() < 1e-12);
        assert_eq!(p.active, 4);
        assert_eq!(p.blocked, 1);
        assert_eq!(c.throughput_series(), vec![0.5, 0.7]);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let _ = TimelineCollector::new(Dur::ZERO);
    }
}
