//! Model configuration — the paper's input parameters.
//!
//! [`ModelConfig`] carries every §2 input parameter plus the §3 sweep
//! dimensions. [`ModelConfig::table1`] reproduces the paper's Table 1
//! baseline (reconstructed from the running text of §2–§3: `dbsize =
//! 5000`, `ntrans = 10`, `maxtransize = 500`, `cputime = 0.05`, `iotime =
//! 0.2`, `lcputime = 0.01`, `liotime = 0.2`; `tmax = 10 000` time units,
//! long enough for the closed system to reach steady state).

use lockgran_sim::{FromJson, Json, ToJson};
use lockgran_workload::{
    FailureSpec, HotSpot, Partitioning, Placement, SizeDistribution, WorkloadParams,
};

/// Service order for queued sub-transaction work at the resources
/// (JSON-friendly mirror of [`lockgran_sim::Discipline`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum QueueDiscipline {
    /// First come, first served — the paper's model.
    #[default]
    Fcfs,
    /// Shortest job first (non-preemptive) among queued sub-transactions.
    /// Extension: checks the paper's §4 remark (citing Dandamudi & Chow)
    /// that sub-transaction-level scheduling has "only marginal effect"
    /// on locking granularity.
    Sjf,
}

impl QueueDiscipline {
    /// Both disciplines.
    pub const ALL: [QueueDiscipline; 2] = [QueueDiscipline::Fcfs, QueueDiscipline::Sjf];

    /// Short lowercase name used in reports and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            QueueDiscipline::Fcfs => "fcfs",
            QueueDiscipline::Sjf => "sjf",
        }
    }

    /// The simulation-kernel equivalent.
    pub fn to_sim(self) -> lockgran_sim::Discipline {
        match self {
            QueueDiscipline::Fcfs => lockgran_sim::Discipline::Fcfs,
            QueueDiscipline::Sjf => lockgran_sim::Discipline::Sjf,
        }
    }
}

impl ToJson for QueueDiscipline {
    /// Variant-name string, like the previous serde derive: `"Fcfs"`.
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                QueueDiscipline::Fcfs => "Fcfs",
                QueueDiscipline::Sjf => "Sjf",
            }
            .to_string(),
        )
    }
}

impl FromJson for QueueDiscipline {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v.as_str() {
            Some("Fcfs") => Ok(QueueDiscipline::Fcfs),
            Some("Sjf") => Ok(QueueDiscipline::Sjf),
            _ => Err(format!("expected queue discipline (Fcfs|Sjf), got {v}")),
        }
    }
}

impl std::str::FromStr for QueueDiscipline {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "fcfs" => Ok(QueueDiscipline::Fcfs),
            "sjf" => Ok(QueueDiscipline::Sjf),
            other => Err(format!("unknown discipline '{other}' (fcfs|sjf)")),
        }
    }
}

/// Which lock-conflict computation drives blocking decisions.
// lint:exhaustive(ConflictMode): matches must name variants, not hide them
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConflictMode {
    /// The paper's probabilistic Ries–Stonebraker partition draw.
    Probabilistic,
    /// A real lock table with explicit granule sets (validation mode).
    Explicit,
    /// Multigranularity locking over a database → area → granule
    /// hierarchy: IS/IX intention locks above S/X leaf locks, with
    /// optional lock escalation (see [`HierarchySpec`]).
    Hierarchical,
    /// Incremental two-phase locking: locks are claimed one at a time as
    /// the lock phase progresses, conflicting requests queue in a real
    /// lock table, and a waits-for graph detects deadlock cycles — the
    /// youngest transaction on each cycle aborts and replays its lock
    /// phase. The non-conservative counterpart of the paper's predeclared
    /// protocol (extension).
    Twophase,
}

impl ConflictMode {
    /// All modes.
    pub const ALL: [ConflictMode; 4] = [
        ConflictMode::Probabilistic,
        ConflictMode::Explicit,
        ConflictMode::Hierarchical,
        ConflictMode::Twophase,
    ];

    /// Short lowercase name used in reports and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            ConflictMode::Probabilistic => "probabilistic",
            ConflictMode::Explicit => "explicit",
            ConflictMode::Hierarchical => "hierarchical",
            ConflictMode::Twophase => "twophase",
        }
    }
}

impl ToJson for ConflictMode {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                ConflictMode::Probabilistic => "Probabilistic",
                ConflictMode::Explicit => "Explicit",
                ConflictMode::Hierarchical => "Hierarchical",
                ConflictMode::Twophase => "Twophase",
            }
            .to_string(),
        )
    }
}

// lint:covers(ConflictMode): the string match below mirrors the enum
impl FromJson for ConflictMode {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v.as_str() {
            Some("Probabilistic") => Ok(ConflictMode::Probabilistic),
            Some("Explicit") => Ok(ConflictMode::Explicit),
            Some("Hierarchical") => Ok(ConflictMode::Hierarchical),
            Some("Twophase") => Ok(ConflictMode::Twophase),
            _ => Err(format!(
                "expected conflict mode (Probabilistic|Explicit|Hierarchical|Twophase), got {v}"
            )),
        }
    }
}

// lint:covers(ConflictMode): CLI names must track the enum
impl std::str::FromStr for ConflictMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "probabilistic" | "prob" => Ok(ConflictMode::Probabilistic),
            "explicit" | "table" => Ok(ConflictMode::Explicit),
            "hierarchical" | "hier" => Ok(ConflictMode::Hierarchical),
            "twophase" | "2pl" => Ok(ConflictMode::Twophase),
            other => Err(format!(
                "unknown conflict mode '{other}' (probabilistic|explicit|hierarchical|twophase)"
            )),
        }
    }
}

/// Parameters of the [`ConflictMode::Hierarchical`] protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchySpec {
    /// Number of areas the granule space is partitioned into (the middle
    /// level of the database → area → granule tree). Clamped to `ltot`
    /// when larger — every area must hold at least one granule.
    pub areas: u64,
    /// Per-transaction escalation threshold: once a transaction declares
    /// at least this many granules under one area, it locks the whole
    /// area instead (cascading up to the database when the area locks
    /// themselves cluster). `None` never escalates — pure
    /// multigranularity locking; `Some(1)` degenerates to whole-database
    /// locking.
    pub escalation_threshold: Option<u64>,
}

impl Default for HierarchySpec {
    fn default() -> Self {
        HierarchySpec {
            areas: 16,
            escalation_threshold: None,
        }
    }
}

impl HierarchySpec {
    /// Set the area count.
    #[must_use]
    pub fn with_areas(mut self, areas: u64) -> Self {
        self.areas = areas;
        self
    }

    /// Set (or clear) the escalation threshold.
    #[must_use]
    pub fn with_escalation_threshold(mut self, threshold: Option<u64>) -> Self {
        self.escalation_threshold = threshold;
        self
    }

    /// Validate the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.areas == 0 {
            return Err("hierarchy areas must be positive".into());
        }
        if self.escalation_threshold == Some(0) {
            return Err(
                "escalation threshold of 0 is meaningless (use 1 for immediate escalation, \
                 None for never)"
                    .into(),
            );
        }
        Ok(())
    }
}

impl ToJson for HierarchySpec {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("areas", self.areas.to_json()),
            ("escalation_threshold", self.escalation_threshold.to_json()),
        ])
    }
}

impl FromJson for HierarchySpec {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(HierarchySpec {
            areas: v.field("areas")?,
            escalation_threshold: v.opt_field("escalation_threshold")?,
        })
    }
}

/// How the `LU_i` lock operations of one request are distributed over the
/// processors ("we assume that processors share the work for locking
/// mechanism … because relations are equally distributed among the system
/// resources", paper §2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum LockDistribution {
    /// Each of the `LU_i` lock operations is indivisible and lands on one
    /// processor; operations are spread round-robin (granules are
    /// declustered with the data). The default — it reproduces the
    /// paper's observation that per-processor useful time *decreases*
    /// with `npros` (lock operations create stragglers that the fork/join
    /// barrier amplifies).
    #[default]
    PerOperation,
    /// The total lock time is split into `npros` exactly equal shares —
    /// an idealized infinitely divisible lock manager (ablation).
    EvenSplit,
    /// The entire request is processed by a single (rotating) processor —
    /// a centralized lock manager (ablation).
    SingleProcessor,
}

impl LockDistribution {
    /// All distribution policies.
    pub const ALL: [LockDistribution; 3] = [
        LockDistribution::PerOperation,
        LockDistribution::EvenSplit,
        LockDistribution::SingleProcessor,
    ];

    /// Short lowercase name used in reports and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            LockDistribution::PerOperation => "per-op",
            LockDistribution::EvenSplit => "even-split",
            LockDistribution::SingleProcessor => "single",
        }
    }
}

impl ToJson for LockDistribution {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                LockDistribution::PerOperation => "PerOperation",
                LockDistribution::EvenSplit => "EvenSplit",
                LockDistribution::SingleProcessor => "SingleProcessor",
            }
            .to_string(),
        )
    }
}

impl FromJson for LockDistribution {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v.as_str() {
            Some("PerOperation") => Ok(LockDistribution::PerOperation),
            Some("EvenSplit") => Ok(LockDistribution::EvenSplit),
            Some("SingleProcessor") => Ok(LockDistribution::SingleProcessor),
            _ => Err(format!(
                "expected lock distribution (PerOperation|EvenSplit|SingleProcessor), got {v}"
            )),
        }
    }
}

impl std::str::FromStr for LockDistribution {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "per-op" | "perop" | "per-operation" => Ok(LockDistribution::PerOperation),
            "even-split" | "even" => Ok(LockDistribution::EvenSplit),
            "single" | "single-processor" => Ok(LockDistribution::SingleProcessor),
            other => Err(format!(
                "unknown lock distribution '{other}' (per-op|even-split|single)"
            )),
        }
    }
}

/// Distribution of sub-transaction stage service times around their
/// mean (`entities × per-entity cost`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum ServiceVariability {
    /// Exactly the mean — the paper's deterministic per-entity costs.
    #[default]
    Deterministic,
    /// Exponentially distributed with the same mean (disk-seek/CPU-burst
    /// variance). Extension: with random stage times the fork/join
    /// barrier waits for the slowest of `PU_i` sub-transactions, which
    /// reproduces the sublinear speedup (and the Fig 3 useful-time
    /// ordering) that deterministic symmetric service hides.
    Exponential,
}

impl ServiceVariability {
    /// Both options.
    pub const ALL: [ServiceVariability; 2] = [
        ServiceVariability::Deterministic,
        ServiceVariability::Exponential,
    ];

    /// Short lowercase name used in reports and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            ServiceVariability::Deterministic => "deterministic",
            ServiceVariability::Exponential => "exponential",
        }
    }
}

impl ToJson for ServiceVariability {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                ServiceVariability::Deterministic => "Deterministic",
                ServiceVariability::Exponential => "Exponential",
            }
            .to_string(),
        )
    }
}

impl FromJson for ServiceVariability {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v.as_str() {
            Some("Deterministic") => Ok(ServiceVariability::Deterministic),
            Some("Exponential") => Ok(ServiceVariability::Exponential),
            _ => Err(format!(
                "expected service variability (Deterministic|Exponential), got {v}"
            )),
        }
    }
}

impl std::str::FromStr for ServiceVariability {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "deterministic" | "det" => Ok(ServiceVariability::Deterministic),
            "exponential" | "exp" => Ok(ServiceVariability::Exponential),
            other => Err(format!(
                "unknown service variability '{other}' (deterministic|exponential)"
            )),
        }
    }
}

/// Complete description of one simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct ModelConfig {
    /// `dbsize`: accessible entities in the database.
    pub dbsize: u64,
    /// `ltot`: number of granule locks (1 = whole-database lock,
    /// `dbsize` = entity-level locks).
    pub ltot: u64,
    /// `ntrans`: multiprogramming level (simulated terminals).
    pub ntrans: u32,
    /// Distribution of transaction sizes (`NU_i`); the paper's default is
    /// `U(1, maxtransize)`.
    pub size: SizeDistribution,
    /// `cputime`: CPU time units per entity processed.
    pub cputime: f64,
    /// `iotime`: I/O time units per entity processed (read + write).
    pub iotime: f64,
    /// `lcputime`: CPU time units per lock (request + set + release).
    pub lcputime: f64,
    /// `liotime`: I/O time units per lock (0 = lock table in memory).
    pub liotime: f64,
    /// `npros`: number of processors (each with private CPU + disk).
    pub npros: u32,
    /// `tmax`: simulated time units to run.
    pub tmax: f64,
    /// Granule placement model (determines `LU_i`).
    pub placement: Placement,
    /// Declustering strategy (determines `PU_i`).
    pub partitioning: Partitioning,
    /// Conflict computation.
    pub conflict: ConflictMode,
    /// How lock operations are spread over processors. Optional in JSON
    /// (defaults to [`LockDistribution::PerOperation`]).
    pub lock_distribution: LockDistribution,
    /// Sub-transaction stage service-time variability. Optional in JSON
    /// (defaults to [`ServiceVariability::Deterministic`]).
    pub service: ServiceVariability,
    /// Service order for queued sub-transaction work. Optional in JSON
    /// (defaults to [`QueueDiscipline::Fcfs`]).
    pub discipline: QueueDiscipline,
    /// Optional hot-spot access skew. Only the explicit conflict model
    /// can honour it (the probabilistic draw assumes uniform access);
    /// validation rejects the combination with `Probabilistic`.
    pub hot_spot: Option<HotSpot>,
    /// Whether lock work preempts transaction work at the resources
    /// (the paper gives the locking mechanism "preemptive power"); false
    /// demotes it to non-preemptive head-of-line priority (ablation).
    /// Optional in JSON (defaults to `true`).
    pub lock_preemption: bool,
    /// Transaction-level admission control: at most this many
    /// transactions may compete for locks at once; the rest wait in the
    /// pending queue. `None` (the paper's model) admits everyone
    /// immediately. The paper's §3.7 points to exactly this mechanism
    /// ("transaction level scheduling can be used to effectively handle
    /// this problem") as the remedy for heavy-load lock thrashing.
    pub mpl_limit: Option<u32>,
    /// Measurement warm-up, in time units: statistics collected before
    /// this instant are discarded. The paper uses none (0.0). Optional in
    /// JSON (defaults to `0.0`).
    pub warmup: f64,
    /// Optional processor failure/repair process (exponential MTBF/MTTR
    /// per processor). `None` — the paper's model — is bit-identical to
    /// the pre-extension behavior. Optional in JSON (defaults to `None`).
    pub failure: Option<FailureSpec>,
    /// Parameters for the hierarchical conflict mode. `None` with
    /// [`ConflictMode::Hierarchical`] uses [`HierarchySpec::default`];
    /// setting it with any other mode fails validation. Optional in JSON
    /// (defaults to `None`).
    pub hierarchy: Option<HierarchySpec>,
}

impl ToJson for ModelConfig {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("dbsize", self.dbsize.to_json()),
            ("ltot", self.ltot.to_json()),
            ("ntrans", self.ntrans.to_json()),
            ("size", self.size.to_json()),
            ("cputime", self.cputime.to_json()),
            ("iotime", self.iotime.to_json()),
            ("lcputime", self.lcputime.to_json()),
            ("liotime", self.liotime.to_json()),
            ("npros", self.npros.to_json()),
            ("tmax", self.tmax.to_json()),
            ("placement", self.placement.to_json()),
            ("partitioning", self.partitioning.to_json()),
            ("conflict", self.conflict.to_json()),
            ("lock_distribution", self.lock_distribution.to_json()),
            ("service", self.service.to_json()),
            ("discipline", self.discipline.to_json()),
            ("hot_spot", self.hot_spot.to_json()),
            ("lock_preemption", self.lock_preemption.to_json()),
            ("mpl_limit", self.mpl_limit.to_json()),
            ("warmup", self.warmup.to_json()),
            ("failure", self.failure.to_json()),
            ("hierarchy", self.hierarchy.to_json()),
        ])
    }
}

impl FromJson for ModelConfig {
    /// Mirrors the old serde semantics: the fields added after the first
    /// release (`lock_distribution` onwards) are optional and fall back to
    /// their documented defaults, so configs written for earlier versions
    /// keep parsing.
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(ModelConfig {
            dbsize: v.field("dbsize")?,
            ltot: v.field("ltot")?,
            ntrans: v.field("ntrans")?,
            size: v.field("size")?,
            cputime: v.field("cputime")?,
            iotime: v.field("iotime")?,
            lcputime: v.field("lcputime")?,
            liotime: v.field("liotime")?,
            npros: v.field("npros")?,
            tmax: v.field("tmax")?,
            placement: v.field("placement")?,
            partitioning: v.field("partitioning")?,
            conflict: v.field("conflict")?,
            lock_distribution: v.field_or("lock_distribution", LockDistribution::default())?,
            service: v.field_or("service", ServiceVariability::default())?,
            discipline: v.field_or("discipline", QueueDiscipline::default())?,
            hot_spot: v.opt_field("hot_spot")?,
            lock_preemption: v.field_or("lock_preemption", true)?,
            mpl_limit: v.opt_field("mpl_limit")?,
            warmup: v.field_or("warmup", 0.0)?,
            failure: v.opt_field("failure")?,
            hierarchy: v.opt_field("hierarchy")?,
        })
    }
}

impl ModelConfig {
    /// The paper's Table 1 baseline configuration (horizontal
    /// partitioning, best placement, probabilistic conflicts — §3.1–3.4
    /// defaults).
    pub fn table1() -> Self {
        ModelConfig {
            dbsize: 5000,
            ltot: 100,
            ntrans: 10,
            size: SizeDistribution::Uniform { max: 500 },
            cputime: 0.05,
            iotime: 0.2,
            lcputime: 0.01,
            liotime: 0.2,
            npros: 10,
            tmax: 10_000.0,
            placement: Placement::Best,
            partitioning: Partitioning::Horizontal,
            conflict: ConflictMode::Probabilistic,
            lock_distribution: LockDistribution::PerOperation,
            service: ServiceVariability::Deterministic,
            discipline: QueueDiscipline::Fcfs,
            hot_spot: None,
            lock_preemption: true,
            mpl_limit: None,
            warmup: 0.0,
            failure: None,
            hierarchy: None,
        }
    }

    /// Builder-style setters for the common sweep dimensions.
    #[must_use]
    pub fn with_ltot(mut self, ltot: u64) -> Self {
        self.ltot = ltot;
        self
    }
    /// Set the processor count.
    #[must_use]
    pub fn with_npros(mut self, npros: u32) -> Self {
        self.npros = npros;
        self
    }
    /// Set the multiprogramming level.
    #[must_use]
    pub fn with_ntrans(mut self, ntrans: u32) -> Self {
        self.ntrans = ntrans;
        self
    }
    /// Set a uniform transaction-size distribution with this maximum.
    #[must_use]
    pub fn with_maxtransize(mut self, max: u64) -> Self {
        self.size = SizeDistribution::Uniform { max };
        self
    }
    /// Set an arbitrary size distribution.
    #[must_use]
    pub fn with_size(mut self, size: SizeDistribution) -> Self {
        self.size = size;
        self
    }
    /// Set the per-lock I/O cost.
    #[must_use]
    pub fn with_liotime(mut self, liotime: f64) -> Self {
        self.liotime = liotime;
        self
    }
    /// Set the placement model.
    #[must_use]
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }
    /// Set the partitioning strategy.
    #[must_use]
    pub fn with_partitioning(mut self, partitioning: Partitioning) -> Self {
        self.partitioning = partitioning;
        self
    }
    /// Set the conflict computation.
    #[must_use]
    pub fn with_conflict(mut self, conflict: ConflictMode) -> Self {
        self.conflict = conflict;
        self
    }
    /// Set the lock-work distribution policy.
    #[must_use]
    pub fn with_lock_distribution(mut self, d: LockDistribution) -> Self {
        self.lock_distribution = d;
        self
    }
    /// Set the service-time variability.
    #[must_use]
    pub fn with_service(mut self, service: ServiceVariability) -> Self {
        self.service = service;
        self
    }
    /// Set a hot-spot access skew (explicit conflict mode only).
    #[must_use]
    pub fn with_hot_spot(mut self, hot_spot: Option<HotSpot>) -> Self {
        self.hot_spot = hot_spot;
        self
    }
    /// Set the sub-transaction queue discipline.
    #[must_use]
    pub fn with_discipline(mut self, discipline: QueueDiscipline) -> Self {
        self.discipline = discipline;
        self
    }
    /// Enable or disable preemptive lock priority.
    #[must_use]
    pub fn with_lock_preemption(mut self, preemptive: bool) -> Self {
        self.lock_preemption = preemptive;
        self
    }
    /// Cap the number of transactions concurrently competing for locks.
    #[must_use]
    pub fn with_mpl_limit(mut self, limit: Option<u32>) -> Self {
        self.mpl_limit = limit;
        self
    }
    /// Set the simulation horizon (time units).
    #[must_use]
    pub fn with_tmax(mut self, tmax: f64) -> Self {
        self.tmax = tmax;
        self
    }
    /// Set the measurement warm-up (time units).
    #[must_use]
    pub fn with_warmup(mut self, warmup: f64) -> Self {
        self.warmup = warmup;
        self
    }
    /// Enable (or disable with `None`) the processor failure process.
    #[must_use]
    pub fn with_failure(mut self, failure: Option<FailureSpec>) -> Self {
        self.failure = failure;
        self
    }
    /// Set the hierarchical-mode parameters (hierarchical conflict mode
    /// only).
    #[must_use]
    pub fn with_hierarchy(mut self, hierarchy: Option<HierarchySpec>) -> Self {
        self.hierarchy = hierarchy;
        self
    }

    /// The hierarchical-mode parameters in effect: the configured spec, or
    /// the defaults when the configuration leaves them unset.
    pub fn hierarchy_spec(&self) -> HierarchySpec {
        self.hierarchy.unwrap_or_default()
    }

    /// The workload-generation view of this configuration.
    pub fn workload_params(&self) -> WorkloadParams {
        WorkloadParams {
            dbsize: self.dbsize,
            ltot: self.ltot,
            size: self.size.clone(),
            placement: self.placement,
            partitioning: self.partitioning,
            npros: self.npros,
        }
    }

    /// Validate the whole configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.workload_params().validate()?;
        if self.ntrans == 0 {
            return Err("ntrans must be positive (closed model)".into());
        }
        for (name, v) in [
            ("cputime", self.cputime),
            ("iotime", self.iotime),
            ("lcputime", self.lcputime),
            ("liotime", self.liotime),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} must be a finite non-negative number"));
            }
        }
        // lint:allow(D003): exact-zero test on user-supplied parameters —
        // both operands were validated finite and non-negative above
        if self.cputime + self.iotime == 0.0 {
            return Err(
                "cputime and iotime cannot both be zero: transactions would be instantaneous"
                    .into(),
            );
        }
        if !(self.tmax.is_finite() && self.tmax > 0.0) {
            return Err("tmax must be a positive, finite number of time units".into());
        }
        if !(self.warmup.is_finite() && self.warmup >= 0.0) {
            return Err("warmup must be a finite non-negative number".into());
        }
        if let Some(h) = &self.hot_spot {
            h.validate()?;
            if self.conflict == ConflictMode::Probabilistic {
                return Err(
                    "hot-spot skew requires a lock-table conflict model (explicit, \
                     hierarchical, or twophase): the probabilistic partition draw assumes \
                     uniform access"
                        .into(),
                );
            }
        }
        if let Some(h) = &self.hierarchy {
            h.validate()?;
            if self.conflict != ConflictMode::Hierarchical {
                return Err("hierarchy parameters require the hierarchical conflict mode".into());
            }
        }
        if self.mpl_limit == Some(0) {
            return Err("mpl_limit of 0 would admit no transactions".into());
        }
        if self.warmup >= self.tmax {
            return Err(format!(
                "warmup ({}) must be smaller than tmax ({})",
                self.warmup, self.tmax
            ));
        }
        if let Some(f) = &self.failure {
            f.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_text() {
        let c = ModelConfig::table1();
        assert_eq!(c.dbsize, 5000);
        assert_eq!(c.ntrans, 10);
        assert_eq!(c.size, SizeDistribution::Uniform { max: 500 });
        assert_eq!(c.cputime, 0.05);
        assert_eq!(c.iotime, 0.2);
        assert_eq!(c.lcputime, 0.01);
        assert_eq!(c.liotime, 0.2);
        assert_eq!(c.placement, Placement::Best);
        assert_eq!(c.partitioning, Partitioning::Horizontal);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders_compose() {
        let c = ModelConfig::table1()
            .with_npros(30)
            .with_ltot(200)
            .with_maxtransize(50)
            .with_liotime(0.0)
            .with_placement(Placement::Worst)
            .with_partitioning(Partitioning::Random)
            .with_conflict(ConflictMode::Explicit)
            .with_ntrans(200)
            .with_tmax(500.0)
            .with_warmup(100.0);
        assert_eq!(c.npros, 30);
        assert_eq!(c.ltot, 200);
        assert_eq!(c.size, SizeDistribution::Uniform { max: 50 });
        assert_eq!(c.liotime, 0.0);
        assert_eq!(c.placement, Placement::Worst);
        assert_eq!(c.partitioning, Partitioning::Random);
        assert_eq!(c.conflict, ConflictMode::Explicit);
        assert_eq!(c.ntrans, 200);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(ModelConfig::table1().with_ltot(0).validate().is_err());
        assert!(ModelConfig::table1().with_ltot(10_000).validate().is_err());
        assert!(ModelConfig::table1().with_ntrans(0).validate().is_err());
        assert!(ModelConfig::table1().with_tmax(0.0).validate().is_err());
        assert!(ModelConfig::table1()
            .with_tmax(f64::NAN)
            .validate()
            .is_err());
        assert!(ModelConfig::table1()
            .with_warmup(10_000.0)
            .validate()
            .is_err());
        let mut c = ModelConfig::table1();
        c.lcputime = -1.0;
        assert!(c.validate().is_err());
        let mut c = ModelConfig::table1();
        c.cputime = 0.0;
        c.iotime = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn json_round_trip() {
        let c = ModelConfig::table1().with_npros(20);
        let text = c.to_json().to_string_compact();
        let back = ModelConfig::from_json(&lockgran_sim::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, c);

        // With the optional extras populated.
        let c = ModelConfig::table1()
            .with_conflict(ConflictMode::Explicit)
            .with_hot_spot(Some(HotSpot::eighty_twenty()))
            .with_mpl_limit(Some(5))
            .with_lock_preemption(false)
            .with_failure(Some(FailureSpec::new(2000.0, 50.0)))
            .with_warmup(100.0);
        let text = c.to_json().pretty();
        let back = ModelConfig::from_json(&lockgran_sim::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn json_optional_fields_default_like_serde() {
        // A config written before the extension fields existed must still
        // parse, with the documented defaults filled in.
        let text = r#"{
            "dbsize": 5000, "ltot": 100, "ntrans": 10,
            "size": {"Uniform": {"max": 500}},
            "cputime": 0.05, "iotime": 0.2, "lcputime": 0.01, "liotime": 0.2,
            "npros": 10, "tmax": 10000.0,
            "placement": "Best", "partitioning": "Horizontal",
            "conflict": "Probabilistic"
        }"#;
        let c = ModelConfig::from_json(&lockgran_sim::json::parse(text).unwrap()).unwrap();
        assert_eq!(c, ModelConfig::table1());
        assert_eq!(c.lock_distribution, LockDistribution::PerOperation);
        assert_eq!(c.service, ServiceVariability::Deterministic);
        assert_eq!(c.discipline, QueueDiscipline::Fcfs);
        assert_eq!(c.hot_spot, None);
        assert!(c.lock_preemption);
        assert_eq!(c.mpl_limit, None);
        assert_eq!(c.warmup, 0.0);
        assert_eq!(c.failure, None);
    }

    #[test]
    fn validation_rejects_bad_failure_spec() {
        assert!(ModelConfig::table1()
            .with_failure(Some(FailureSpec::new(0.0, 50.0)))
            .validate()
            .is_err());
        assert!(ModelConfig::table1()
            .with_failure(Some(FailureSpec::new(2000.0, 50.0)))
            .validate()
            .is_ok());
    }

    #[test]
    fn conflict_mode_parsing() {
        assert_eq!(
            "prob".parse::<ConflictMode>().unwrap(),
            ConflictMode::Probabilistic
        );
        assert_eq!(
            "explicit".parse::<ConflictMode>().unwrap(),
            ConflictMode::Explicit
        );
        assert_eq!(
            "hier".parse::<ConflictMode>().unwrap(),
            ConflictMode::Hierarchical
        );
        assert_eq!(
            "hierarchical".parse::<ConflictMode>().unwrap(),
            ConflictMode::Hierarchical
        );
        assert_eq!(
            "twophase".parse::<ConflictMode>().unwrap(),
            ConflictMode::Twophase
        );
        assert_eq!(
            "2pl".parse::<ConflictMode>().unwrap(),
            ConflictMode::Twophase
        );
        assert!("fuzzy".parse::<ConflictMode>().is_err());
    }

    #[test]
    fn twophase_json_round_trip_and_hot_spot() {
        let c = ModelConfig::table1()
            .with_conflict(ConflictMode::Twophase)
            .with_hot_spot(Some(HotSpot::eighty_twenty()));
        assert!(c.validate().is_ok());
        let text = c.to_json().to_string_compact();
        let back = ModelConfig::from_json(&lockgran_sim::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, c);
        // Hierarchy parameters still belong to the hierarchical mode only.
        assert!(ModelConfig::table1()
            .with_conflict(ConflictMode::Twophase)
            .with_hierarchy(Some(HierarchySpec::default()))
            .validate()
            .is_err());
    }

    #[test]
    fn hierarchy_json_round_trip() {
        let c = ModelConfig::table1()
            .with_conflict(ConflictMode::Hierarchical)
            .with_hierarchy(Some(HierarchySpec {
                areas: 8,
                escalation_threshold: Some(4),
            }));
        let text = c.to_json().to_string_compact();
        let back = ModelConfig::from_json(&lockgran_sim::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, c);

        // Threshold None (never escalate) survives the round trip too.
        let c = c.with_hierarchy(Some(HierarchySpec::default()));
        let text = c.to_json().pretty();
        let back = ModelConfig::from_json(&lockgran_sim::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn hierarchy_validation() {
        // Defaults apply when the spec is unset.
        let c = ModelConfig::table1().with_conflict(ConflictMode::Hierarchical);
        assert!(c.validate().is_ok());
        assert_eq!(c.hierarchy_spec(), HierarchySpec::default());

        // Explicit spec must accompany the hierarchical mode.
        assert!(ModelConfig::table1()
            .with_hierarchy(Some(HierarchySpec::default()))
            .validate()
            .is_err());
        // Degenerate parameters are rejected.
        let bad_areas = HierarchySpec::default().with_areas(0);
        assert!(ModelConfig::table1()
            .with_conflict(ConflictMode::Hierarchical)
            .with_hierarchy(Some(bad_areas))
            .validate()
            .is_err());
        let bad_threshold = HierarchySpec::default().with_escalation_threshold(Some(0));
        assert!(ModelConfig::table1()
            .with_conflict(ConflictMode::Hierarchical)
            .with_hierarchy(Some(bad_threshold))
            .validate()
            .is_err());
        // Hot-spot skew is allowed with the hierarchical table.
        assert!(ModelConfig::table1()
            .with_conflict(ConflictMode::Hierarchical)
            .with_hot_spot(Some(HotSpot::eighty_twenty()))
            .validate()
            .is_ok());
    }
}
