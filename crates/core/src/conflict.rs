//! Lock-conflict models.
//!
//! The paper (§2, "The computation of lock conflicts") never materializes
//! lock sets. Instead, with active transactions `T_1 … T_k` holding
//! `L_1 … L_k` locks out of `ltot`, the unit interval is partitioned as
//!
//! ```text
//! P_1 = (0, L_1/ltot],  P_2 = (L_1/ltot, (L_1+L_2)/ltot],  …,
//! P_{k+1} = (Σ L_j / ltot, 1]
//! ```
//!
//! and a uniform draw `p` decides: landing in `P_j` (`j ≤ k`) blocks the
//! requester **on `T_j`**, who will wake it at completion; landing in the
//! remainder admits it. [`ProbabilisticConflict`] implements exactly this.
//!
//! The [`ConcurrencyControl`] trait abstracts the whole protocol seam —
//! declared-access registration, admission, release/wake lists, protocol
//! statistics — so the same system model can also run against a real lock
//! table ([`crate::explicit::ExplicitConflict`]) or a multigranularity
//! hierarchy with intention locks and escalation
//! ([`crate::hierarchical::HierarchicalConflict`]), quantifying the
//! quality of the approximation.
//!
//! ## Hot-path notes
//!
//! `try_acquire` runs once per lock attempt — the single hottest call in
//! the simulator. The naive implementation recomputes the partition
//! (`k` divisions and `k` additions) on **every** attempt even though the
//! active set only changes at admissions and completions. This module
//! instead caches, per active transaction, the fraction `L_j/ltot`
//! (one division at admission) and the running left-to-right prefix sums,
//! so an attempt is a pure read-only scan.
//!
//! The cache is maintained so that every stored float is produced by the
//! *identical sequence of operations* the naive loop would have executed:
//! fractions are computed by the same `L_j as f64 / ltot as f64` division
//! (never a reciprocal multiplication, whose rounding differs), and after
//! a removal the prefix is recomputed from the removal point onward by
//! the same left-to-right additions. Outputs are therefore bit-identical
//! to the pre-cache implementation — the Table 1 golden snapshot does not
//! move.
//!
//! Waiter lists are embedded directly in the active entries (the blocker's
//! index is already in hand when the partition draw lands on it), so
//! blocking a transaction is an O(1) push into a recycled `Vec` — no
//! keyed map, no per-block node allocation in steady state.

use lockgran_sim::SimRng;
use lockgran_workload::{access, HotSpot, Placement};

use crate::config::{ConflictMode, ModelConfig};

/// Identifies a transaction instance within a run (monotone serial).
pub type TxnSerial = u64;

/// Outcome of an admission attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictDecision {
    /// All locks granted; the transaction becomes active.
    Granted,
    /// Blocked; the named active transaction will wake it on completion.
    BlockedBy(TxnSerial),
    /// The requester itself was aborted as a deadlock victim during this
    /// attempt (incremental 2PL only): its partial locks were released
    /// and it must replay its lock phase from scratch. Conservative
    /// protocols never return this — predeclared locking cannot
    /// deadlock.
    Aborted,
}

/// Protocol statistics a [`ConcurrencyControl`] implementation
/// accumulates over a run. Flat protocols (probabilistic, explicit)
/// report zeros.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CcStats {
    /// Lock escalations performed: a coarse (area or database) lock was
    /// substituted for a group of fine granule locks.
    pub escalations: u64,
    /// Intention locks (IS/IX) granted on non-leaf hierarchy nodes.
    pub intent_locks: u64,
    /// Deadlock victims aborted (incremental 2PL only; each broken
    /// waits-for cycle aborts exactly one victim, so this is also the
    /// number of cycles broken).
    pub deadlocks: u64,
}

/// How a protocol materializes a transaction's declared granule set
/// (everything [`ConcurrencyControl::register_access`] needs from the
/// configuration).
#[derive(Clone, Copy, Debug)]
pub struct AccessSampler {
    /// Placement model (determines set size and shape).
    pub placement: Placement,
    /// Number of granule locks in the system.
    pub ltot: u64,
    /// Database size in entities.
    pub dbsize: u64,
    /// Optional hot-spot access skew.
    pub hot_spot: Option<HotSpot>,
}

impl AccessSampler {
    /// The sampler a configuration implies.
    pub fn from_config(cfg: &ModelConfig) -> Self {
        AccessSampler {
            placement: cfg.placement,
            ltot: cfg.ltot,
            dbsize: cfg.dbsize,
            hot_spot: cfg.hot_spot,
        }
    }

    /// Sample the declared granule set of a transaction touching
    /// `entities` entities into `out` (replacing its contents). Identical
    /// draw sequence to the pre-trait system model: plain or hot-spot
    /// sampling, from the caller's access stream only.
    pub fn sample_into(&self, rng: &mut SimRng, entities: u64, out: &mut Vec<u64>) {
        match self.hot_spot {
            None => access::sample_granules_into(
                rng,
                self.placement,
                entities,
                self.ltot,
                self.dbsize,
                out,
            ),
            Some(skew) => access::sample_granules_hot_into(
                rng,
                self.placement,
                entities,
                self.ltot,
                self.dbsize,
                skew,
                out,
            ),
        }
    }
}

/// A pluggable concurrency-control protocol.
///
/// The contract mirrors the paper's protocol:
/// * `register_access` is called exactly once per transaction, at spawn:
///   the protocol materializes whatever declared-access state it needs
///   (a concrete granule set for lock-table protocols; nothing for the
///   probabilistic draw). It may draw only from the passed access stream.
/// * `try_acquire` is called once per **attempt** (first request and every
///   retry after a wake-up); it either admits the transaction or records
///   it as blocked on a specific active transaction.
/// * `release` is called exactly once when an *active* transaction
///   completes; it appends every transaction blocked on it, in wake
///   order, to a caller-provided buffer (reused across completions so the
///   per-release allocation disappears from the hot loop).
/// * `stats` reports cumulative protocol counters (escalations,
///   intention locks) for the run metrics.
pub trait ConcurrencyControl {
    /// Materialize the declared access set of a freshly spawned
    /// transaction touching `entities` entities into `granules`
    /// (replacing its contents). The default clears the set — the
    /// protocol needs no concrete granules.
    fn register_access(&mut self, rng: &mut SimRng, entities: u64, granules: &mut Vec<u64>) {
        let _ = (rng, entities);
        granules.clear();
    }

    /// Attempt to admit `txn`, which needs `locks` locks over the granule
    /// set `granules` (lock-table models use the set; the probabilistic
    /// model uses only the count).
    fn try_acquire(
        &mut self,
        txn: TxnSerial,
        locks: u64,
        granules: &[u64],
        rng: &mut SimRng,
    ) -> ConflictDecision;

    /// Release `txn`'s locks; appends the transactions it was blocking,
    /// in wake order, to `woken` (which the caller clears and reuses).
    fn release(&mut self, txn: TxnSerial, woken: &mut Vec<TxnSerial>);

    /// Drain the side effects of deadlock resolution performed inside the
    /// most recent `try_acquire` call(s): transactions aborted as victims
    /// (they must replay their lock phase) are appended to `aborted`, and
    /// queued transactions granted by the victims' lock releases are
    /// appended to `woken`. Every transaction named here was blocked from
    /// the caller's point of view. The default is a no-op — conservative
    /// protocols never deadlock, so they have no effects to report.
    fn drain_deadlock_effects(&mut self, aborted: &mut Vec<TxnSerial>, woken: &mut Vec<TxnSerial>) {
        let _ = (aborted, woken);
    }

    /// Number of currently active (lock-holding) transactions.
    fn active_count(&self) -> usize;

    /// Total locks currently held across active transactions.
    fn locks_held(&self) -> u64;

    /// Cumulative protocol statistics. The default reports zeros.
    fn stats(&self) -> CcStats {
        CcStats::default()
    }

    /// Re-initialize this protocol in place for a fresh run under `cfg`,
    /// retaining grown storage (waiter pools, lock-table node maps) where
    /// the implementation can prove the reuse is invisible to the run.
    /// Returns `false` when the instance cannot serve `cfg` (most simply:
    /// `cfg` selects a different protocol) — the caller then rebuilds via
    /// [`build_concurrency_control`]. The contract is reset-equals-fresh:
    /// after a `true` return the instance must be observationally
    /// indistinguishable, draw for draw, from a newly built protocol. The
    /// default declines, forcing a rebuild.
    fn reset(&mut self, cfg: &ModelConfig) -> bool {
        let _ = cfg;
        false
    }
}

/// Build the concurrency-control protocol a configuration selects.
///
/// # Panics
/// Panics if `cfg.ltot == 0` (validated configurations never are).
pub fn build_concurrency_control(cfg: &ModelConfig) -> Box<dyn ConcurrencyControl> {
    match cfg.conflict {
        ConflictMode::Probabilistic => Box::new(ProbabilisticConflict::new(cfg.ltot)),
        ConflictMode::Explicit => Box::new(
            crate::explicit::ExplicitConflict::new().with_sampler(AccessSampler::from_config(cfg)),
        ),
        ConflictMode::Hierarchical => Box::new(crate::hierarchical::HierarchicalConflict::new(
            AccessSampler::from_config(cfg),
            cfg.hierarchy_spec(),
        )),
        ConflictMode::Twophase => {
            let mut cc = crate::twophase::TwoPhaseConflict::new(AccessSampler::from_config(cfg));
            // Closed system: `ntrans` terminals bound the concurrent
            // transactions, so every per-transaction structure can be
            // provisioned up front (steady state then allocates nothing).
            cc.prewarm(cfg);
            Box::new(cc)
        }
    }
}

/// One lock-holding transaction: its key, lock count, and the FIFO list
/// of transactions blocked on it.
#[derive(Clone, Debug)]
struct Holder {
    txn: TxnSerial,
    locks: u64,
    /// Transactions blocked on this holder, in block order. The backing
    /// `Vec` is recycled through the spare pool when the holder releases.
    waiters: Vec<TxnSerial>,
}

/// The paper's probabilistic Ries–Stonebraker conflict computation.
#[derive(Clone, Debug)]
pub struct ProbabilisticConflict {
    ltot: u64,
    /// Active transactions in admission order.
    active: Vec<Holder>,
    /// `fracs[i] = active[i].locks as f64 / ltot as f64`, computed once at
    /// admission (see module docs on bit-identity).
    fracs: Vec<f64>,
    /// `prefix[i]` = left-to-right sum of `fracs[0..=i]`, exactly the
    /// value the naive per-attempt loop reaches after holder `i`.
    prefix: Vec<f64>,
    /// Retired waiter vectors, recycled so blocking never allocates in
    /// steady state.
    spare: Vec<Vec<TxnSerial>>,
    locks_held: u64,
}

impl ProbabilisticConflict {
    /// Create for a system with `ltot` locks.
    ///
    /// # Panics
    /// Panics if `ltot == 0`.
    pub fn new(ltot: u64) -> Self {
        assert!(ltot > 0, "ltot must be positive");
        ProbabilisticConflict {
            ltot,
            active: Vec::new(),
            fracs: Vec::new(),
            prefix: Vec::new(),
            spare: Vec::new(),
            locks_held: 0,
        }
    }
}

impl ConcurrencyControl for ProbabilisticConflict {
    // `register_access` keeps the default: the partition draw never
    // materializes granule sets (and draws nothing from the access
    // stream, preserving bit-identical goldens).

    fn try_acquire(
        &mut self,
        txn: TxnSerial,
        locks: u64,
        _granules: &[u64],
        rng: &mut SimRng,
    ) -> ConflictDecision {
        debug_assert!(
            !self.active.iter().any(|h| h.txn == txn),
            "transaction {txn} acquired twice"
        );
        // Draw p ~ U(0,1); the cached prefix IS the partition
        // (0, L1/ltot], (L1/ltot, (L1+L2)/ltot], … — no arithmetic here.
        let p = rng.uniform01();
        for (i, &cum) in self.prefix.iter().enumerate() {
            if p < cum {
                // The blocker's index is in hand: attach the waiter right
                // here, O(1), into the holder's own (recycled) list.
                let holder = &mut self.active[i];
                if holder.waiters.capacity() == 0 {
                    if let Some(recycled) = self.spare.pop() {
                        holder.waiters = recycled;
                    }
                }
                holder.waiters.push(txn);
                return ConflictDecision::BlockedBy(holder.txn);
            }
        }
        // Admitted: extend the partition. One division per admission —
        // the same `held / ltot` the naive loop performed per attempt.
        let frac = locks as f64 / self.ltot as f64;
        let cum = self.prefix.last().copied().unwrap_or(0.0) + frac;
        self.active.push(Holder {
            txn,
            locks,
            waiters: self.spare.pop().unwrap_or_default(),
        });
        self.fracs.push(frac);
        self.prefix.push(cum);
        self.locks_held += locks;
        ConflictDecision::Granted
    }

    fn release(&mut self, txn: TxnSerial, woken: &mut Vec<TxnSerial>) {
        let pos = self
            .active
            .iter()
            .position(|h| h.txn == txn)
            .unwrap_or_else(|| panic!("release of inactive transaction {txn}"));
        let mut holder = self.active.remove(pos);
        self.fracs.remove(pos);
        self.locks_held -= holder.locks;
        // Rebuild the prefix from the removal point with the same
        // left-to-right additions the naive loop would now perform.
        self.prefix.truncate(pos);
        let mut cum = if pos == 0 { 0.0 } else { self.prefix[pos - 1] };
        for &f in &self.fracs[pos..] {
            cum += f;
            self.prefix.push(cum);
        }
        woken.append(&mut holder.waiters);
        self.spare.push(holder.waiters);
    }

    fn active_count(&self) -> usize {
        self.active.len()
    }

    fn locks_held(&self) -> u64 {
        self.locks_held
    }

    fn reset(&mut self, cfg: &ModelConfig) -> bool {
        if cfg.conflict != ConflictMode::Probabilistic {
            return false;
        }
        self.ltot = cfg.ltot;
        // Park every in-flight holder's waiter list back in the spare
        // pool; an empty recycled Vec behaves identically to a fresh one,
        // so the retained capacity is invisible to the next run.
        for mut holder in self.active.drain(..) {
            holder.waiters.clear();
            self.spare.push(holder.waiters);
        }
        self.fracs.clear();
        self.prefix.clear();
        self.locks_held = 0;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0xC0FFEE)
    }

    /// Collect a release's wake list (test convenience).
    fn release_vec(m: &mut impl ConcurrencyControl, txn: TxnSerial) -> Vec<TxnSerial> {
        let mut woken = Vec::new();
        m.release(txn, &mut woken);
        woken
    }

    #[test]
    fn empty_system_always_admits() {
        let mut m = ProbabilisticConflict::new(100);
        let mut r = rng();
        assert_eq!(m.try_acquire(1, 10, &[], &mut r), ConflictDecision::Granted);
        assert_eq!(m.active_count(), 1);
        assert_eq!(m.locks_held(), 10);
    }

    #[test]
    fn default_register_access_clears_and_stats_are_zero() {
        let mut m = ProbabilisticConflict::new(100);
        let mut r = rng();
        let mut granules = vec![1, 2, 3];
        m.register_access(&mut r, 10, &mut granules);
        assert!(granules.is_empty(), "probabilistic mode holds no sets");
        assert_eq!(m.stats(), CcStats::default());
    }

    #[test]
    fn factory_builds_every_mode() {
        use crate::config::ModelConfig;
        for mode in ConflictMode::ALL {
            let cfg = ModelConfig::table1().with_conflict(mode);
            let cc = build_concurrency_control(&cfg);
            assert_eq!(cc.active_count(), 0);
            assert_eq!(cc.locks_held(), 0);
        }
    }

    #[test]
    fn whole_database_lock_serializes() {
        // ltot = 1: the single active holder owns the full interval, so
        // every other attempt blocks on it.
        let mut m = ProbabilisticConflict::new(1);
        let mut r = rng();
        assert_eq!(m.try_acquire(1, 1, &[], &mut r), ConflictDecision::Granted);
        for t in 2..20 {
            assert_eq!(
                m.try_acquire(t, 1, &[], &mut r),
                ConflictDecision::BlockedBy(1)
            );
        }
        let woken = release_vec(&mut m, 1);
        assert_eq!(woken, (2..20).collect::<Vec<_>>());
        assert_eq!(m.active_count(), 0);
        assert_eq!(m.locks_held(), 0);
    }

    #[test]
    fn blocking_probability_matches_lock_fraction() {
        // One active holder with L = 25 of ltot = 100: a requester blocks
        // with probability 0.25.
        let mut r = rng();
        let n = 50_000;
        let mut blocked = 0;
        for i in 0..n {
            let mut m = ProbabilisticConflict::new(100);
            let _ = m.try_acquire(0, 25, &[], &mut r);
            if let ConflictDecision::BlockedBy(_) = m.try_acquire(i + 1, 10, &[], &mut r) {
                blocked += 1;
            }
        }
        let frac = blocked as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "blocking fraction {frac}");
    }

    #[test]
    fn blocker_chosen_proportional_to_locks() {
        // Holders with 10 and 40 locks of 100: conditional on blocking,
        // the second blocker is chosen 4x as often.
        let mut r = rng();
        let mut by_first = 0u32;
        let mut by_second = 0u32;
        for i in 0..100_000u64 {
            let mut m = ProbabilisticConflict::new(100);
            let _ = m.try_acquire(1, 10, &[], &mut r);
            let _ = m.try_acquire(2, 40, &[], &mut r); // may block; force state
            if m.active_count() < 2 {
                continue; // txn 2 happened to block; skip this trial
            }
            match m.try_acquire(100 + i, 5, &[], &mut r) {
                ConflictDecision::BlockedBy(1) => by_first += 1,
                ConflictDecision::BlockedBy(2) => by_second += 1,
                _ => {}
            }
        }
        let ratio = by_second as f64 / by_first as f64;
        assert!((ratio - 4.0).abs() < 0.4, "blocker ratio {ratio}");
    }

    #[test]
    fn oversubscribed_interval_always_blocks() {
        // Active lock fractions can exceed 1 (the last admit slipped in
        // under the wire); then every attempt must block. Built purely
        // through the public API: fresh serials retry until one draw
        // lands in the remainder (p > 0.6 happens quickly), exactly how
        // the system model retries after a wake-up. The blocked attempts
        // occupy no interval, so they cannot influence later draws.
        let mut r = rng();
        let mut m = ProbabilisticConflict::new(10);
        assert_eq!(m.try_acquire(1, 6, &[], &mut r), ConflictDecision::Granted);
        let second = (2..1000)
            .find(|&t| m.try_acquire(t, 6, &[], &mut r) == ConflictDecision::Granted)
            .expect("no admission in 1000 draws with p(admit) = 0.4");
        assert_eq!(m.active_count(), 2);
        assert_eq!(m.locks_held(), 12); // > ltot: oversubscribed
        for t in 1000..1200 {
            assert!(matches!(
                m.try_acquire(t, 1, &[], &mut r),
                ConflictDecision::BlockedBy(b) if b == 1 || b == second
            ));
        }
    }

    #[test]
    fn draining_all_holders_returns_to_empty() {
        // Admit a batch (retrying blocked serials as the system would),
        // then release every holder: the model must return exactly to the
        // empty state — zero locks held, zero active, every waiter woken.
        let mut r = rng();
        let mut m = ProbabilisticConflict::new(50);
        let mut serial = 0u64;
        let mut holders = Vec::new();
        while holders.len() < 8 {
            serial += 1;
            if m.try_acquire(serial, 5, &[], &mut r) == ConflictDecision::Granted {
                holders.push(serial);
            }
        }
        assert_eq!(m.locks_held(), 40);
        let blocked_count = serial - 8;
        let mut woken = Vec::new();
        for h in holders {
            m.release(h, &mut woken);
        }
        assert_eq!(m.active_count(), 0);
        assert_eq!(m.locks_held(), 0);
        assert_eq!(woken.len() as u64, blocked_count, "some waiters never woke");
    }

    #[test]
    fn release_returns_waiters_in_fifo_order() {
        let mut r = rng();
        let mut m = ProbabilisticConflict::new(1);
        let _ = m.try_acquire(7, 1, &[], &mut r);
        for t in [3, 9, 4] {
            let _ = m.try_acquire(t, 1, &[], &mut r);
        }
        assert_eq!(release_vec(&mut m, 7), vec![3, 9, 4]);
    }

    #[test]
    fn release_appends_without_clearing() {
        // The caller owns the buffer; release must append, not replace.
        let mut r = rng();
        let mut m = ProbabilisticConflict::new(1);
        let _ = m.try_acquire(1, 1, &[], &mut r);
        let _ = m.try_acquire(2, 1, &[], &mut r);
        let mut woken = vec![99];
        m.release(1, &mut woken);
        assert_eq!(woken, vec![99, 2]);
    }

    #[test]
    #[should_panic(expected = "release of inactive")]
    fn release_of_unknown_txn_panics() {
        let mut m = ProbabilisticConflict::new(10);
        m.release(42, &mut Vec::new());
    }

    #[test]
    fn zero_lock_transaction_never_blocks_others() {
        // A degenerate transaction holding 0 locks occupies no interval.
        let mut r = rng();
        let mut m = ProbabilisticConflict::new(100);
        assert_eq!(m.try_acquire(1, 0, &[], &mut r), ConflictDecision::Granted);
        for t in 2..100 {
            assert_eq!(m.try_acquire(t, 0, &[], &mut r), ConflictDecision::Granted);
        }
        assert_eq!(m.active_count(), 99);
    }

    #[test]
    fn prefix_cache_matches_naive_partition_bitwise() {
        // Drive a random admit/release history and check, at every step,
        // that the cached prefix equals the naive left-to-right
        // recomputation bit for bit (the golden-snapshot guarantee).
        let mut r = rng();
        let mut m = ProbabilisticConflict::new(137);
        let mut serial = 0u64;
        let mut woken = Vec::new();
        for step in 0..2_000u32 {
            serial += 1;
            let locks = u64::from(step % 9) + 1;
            let _ = m.try_acquire(serial, locks, &[], &mut r);
            if step % 5 == 4 && m.active_count() > 1 {
                // Remove from the middle to exercise the rebuild path.
                let victim = m.active[m.active.len() / 2].txn;
                woken.clear();
                m.release(victim, &mut woken);
                // Woken transactions vanish from this toy history.
            }
            let mut cum = 0.0f64;
            for (i, h) in m.active.iter().enumerate() {
                cum += h.locks as f64 / 137.0;
                assert_eq!(
                    cum.to_bits(),
                    m.prefix[i].to_bits(),
                    "prefix diverged at step {step}, holder {i}"
                );
            }
        }
    }
}
