//! Lock-conflict models.
//!
//! The paper (§2, "The computation of lock conflicts") never materializes
//! lock sets. Instead, with active transactions `T_1 … T_k` holding
//! `L_1 … L_k` locks out of `ltot`, the unit interval is partitioned as
//!
//! ```text
//! P_1 = (0, L_1/ltot],  P_2 = (L_1/ltot, (L_1+L_2)/ltot],  …,
//! P_{k+1} = (Σ L_j / ltot, 1]
//! ```
//!
//! and a uniform draw `p` decides: landing in `P_j` (`j ≤ k`) blocks the
//! requester **on `T_j`**, who will wake it at completion; landing in the
//! remainder admits it. [`ProbabilisticConflict`] implements exactly this.
//!
//! The [`ConflictModel`] trait abstracts the decision so the same system
//! model can also run against a real lock table
//! ([`crate::explicit::ExplicitConflict`]), quantifying the quality of the
//! approximation.

use std::collections::BTreeMap;

use lockgran_sim::SimRng;

/// Identifies a transaction instance within a run (monotone serial).
pub type TxnSerial = u64;

/// Outcome of an admission attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictDecision {
    /// All locks granted; the transaction becomes active.
    Granted,
    /// Blocked; the named active transaction will wake it on completion.
    BlockedBy(TxnSerial),
}

/// A pluggable lock-conflict computation.
///
/// The contract mirrors the paper's protocol:
/// * `try_acquire` is called once per **attempt** (first request and every
///   retry after a wake-up); it either admits the transaction or records
///   it as blocked on a specific active transaction.
/// * `release` is called exactly once when an *active* transaction
///   completes; it returns every transaction blocked on it, which the
///   system re-enters into the lock phase (paying lock overhead again).
pub trait ConflictModel {
    /// Attempt to admit `txn`, which needs `locks` locks over the granule
    /// set `granules` (explicit models use the set; the probabilistic
    /// model uses only the count).
    fn try_acquire(
        &mut self,
        txn: TxnSerial,
        locks: u64,
        granules: &[u64],
        rng: &mut SimRng,
    ) -> ConflictDecision;

    /// Release `txn`'s locks; returns the transactions it was blocking,
    /// in wake order.
    fn release(&mut self, txn: TxnSerial) -> Vec<TxnSerial>;

    /// Number of currently active (lock-holding) transactions.
    fn active_count(&self) -> usize;

    /// Total locks currently held across active transactions.
    fn locks_held(&self) -> u64;
}

/// The paper's probabilistic Ries–Stonebraker conflict computation.
pub struct ProbabilisticConflict {
    ltot: u64,
    /// Active transactions in admission order, with their lock counts.
    active: Vec<(TxnSerial, u64)>,
    /// blocker → transactions blocked on it (FIFO).
    blocked: BTreeMap<TxnSerial, Vec<TxnSerial>>,
    locks_held: u64,
}

impl ProbabilisticConflict {
    /// Create for a system with `ltot` locks.
    ///
    /// # Panics
    /// Panics if `ltot == 0`.
    pub fn new(ltot: u64) -> Self {
        assert!(ltot > 0, "ltot must be positive");
        ProbabilisticConflict {
            ltot,
            active: Vec::new(),
            blocked: BTreeMap::new(),
            locks_held: 0,
        }
    }
}

impl ConflictModel for ProbabilisticConflict {
    fn try_acquire(
        &mut self,
        txn: TxnSerial,
        locks: u64,
        _granules: &[u64],
        rng: &mut SimRng,
    ) -> ConflictDecision {
        debug_assert!(
            !self.active.iter().any(|(t, _)| *t == txn),
            "transaction {txn} acquired twice"
        );
        // Draw p ~ U(0,1); walk the partition (0, L1/ltot], ….
        let p = rng.uniform01();
        let mut cum = 0.0;
        for &(holder, held) in &self.active {
            cum += held as f64 / self.ltot as f64;
            if p < cum {
                self.blocked.entry(holder).or_default().push(txn);
                return ConflictDecision::BlockedBy(holder);
            }
        }
        self.active.push((txn, locks));
        self.locks_held += locks;
        ConflictDecision::Granted
    }

    fn release(&mut self, txn: TxnSerial) -> Vec<TxnSerial> {
        let pos = self
            .active
            .iter()
            .position(|(t, _)| *t == txn)
            .unwrap_or_else(|| panic!("release of inactive transaction {txn}"));
        let (_, locks) = self.active.remove(pos);
        self.locks_held -= locks;
        self.blocked.remove(&txn).unwrap_or_default()
    }

    fn active_count(&self) -> usize {
        self.active.len()
    }

    fn locks_held(&self) -> u64 {
        self.locks_held
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(0xC0FFEE)
    }

    #[test]
    fn empty_system_always_admits() {
        let mut m = ProbabilisticConflict::new(100);
        let mut r = rng();
        assert_eq!(m.try_acquire(1, 10, &[], &mut r), ConflictDecision::Granted);
        assert_eq!(m.active_count(), 1);
        assert_eq!(m.locks_held(), 10);
    }

    #[test]
    fn whole_database_lock_serializes() {
        // ltot = 1: the single active holder owns the full interval, so
        // every other attempt blocks on it.
        let mut m = ProbabilisticConflict::new(1);
        let mut r = rng();
        assert_eq!(m.try_acquire(1, 1, &[], &mut r), ConflictDecision::Granted);
        for t in 2..20 {
            assert_eq!(
                m.try_acquire(t, 1, &[], &mut r),
                ConflictDecision::BlockedBy(1)
            );
        }
        let woken = m.release(1);
        assert_eq!(woken, (2..20).collect::<Vec<_>>());
        assert_eq!(m.active_count(), 0);
        assert_eq!(m.locks_held(), 0);
    }

    #[test]
    fn blocking_probability_matches_lock_fraction() {
        // One active holder with L = 25 of ltot = 100: a requester blocks
        // with probability 0.25.
        let mut r = rng();
        let n = 50_000;
        let mut blocked = 0;
        for i in 0..n {
            let mut m = ProbabilisticConflict::new(100);
            let _ = m.try_acquire(0, 25, &[], &mut r);
            if let ConflictDecision::BlockedBy(_) = m.try_acquire(i + 1, 10, &[], &mut r) {
                blocked += 1;
            }
        }
        let frac = blocked as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "blocking fraction {frac}");
    }

    #[test]
    fn blocker_chosen_proportional_to_locks() {
        // Holders with 10 and 40 locks of 100: conditional on blocking,
        // the second blocker is chosen 4x as often.
        let mut r = rng();
        let mut by_first = 0u32;
        let mut by_second = 0u32;
        for i in 0..100_000u64 {
            let mut m = ProbabilisticConflict::new(100);
            let _ = m.try_acquire(1, 10, &[], &mut r);
            let _ = m.try_acquire(2, 40, &[], &mut r); // may block; force state
            if m.active_count() < 2 {
                continue; // txn 2 happened to block; skip this trial
            }
            match m.try_acquire(100 + i, 5, &[], &mut r) {
                ConflictDecision::BlockedBy(1) => by_first += 1,
                ConflictDecision::BlockedBy(2) => by_second += 1,
                _ => {}
            }
        }
        let ratio = by_second as f64 / by_first as f64;
        assert!((ratio - 4.0).abs() < 0.4, "blocker ratio {ratio}");
    }

    #[test]
    fn oversubscribed_interval_always_blocks() {
        // Active lock fractions can exceed 1 (the last admit slipped in
        // under the wire); then every attempt must block.
        let mut r = rng();
        let mut m = ProbabilisticConflict::new(10);
        // Hand-build an oversubscribed state: 6 + 6 locks of 10.
        assert_eq!(m.try_acquire(1, 6, &[], &mut r), ConflictDecision::Granted);
        // Force admission of txn 2 by retrying until the draw lands in the
        // remainder (p > 0.6 happens quickly).
        let mut admitted = false;
        for _ in 0..1000 {
            if m.active_count() == 2 {
                admitted = true;
                break;
            }
            if let ConflictDecision::BlockedBy(b) = m.try_acquire(2, 6, &[], &mut r) {
                let _ = b;
                // Pull it back out of the blocked index for a clean retry.
                m.blocked.clear();
            }
        }
        assert!(admitted, "txn 2 never admitted");
        assert_eq!(m.locks_held(), 12); // > ltot: oversubscribed
        for t in 10..200 {
            assert!(matches!(
                m.try_acquire(t, 1, &[], &mut r),
                ConflictDecision::BlockedBy(_)
            ));
        }
    }

    #[test]
    fn release_returns_waiters_in_fifo_order() {
        let mut r = rng();
        let mut m = ProbabilisticConflict::new(1);
        let _ = m.try_acquire(7, 1, &[], &mut r);
        for t in [3, 9, 4] {
            let _ = m.try_acquire(t, 1, &[], &mut r);
        }
        assert_eq!(m.release(7), vec![3, 9, 4]);
    }

    #[test]
    #[should_panic(expected = "release of inactive")]
    fn release_of_unknown_txn_panics() {
        let mut m = ProbabilisticConflict::new(10);
        let _ = m.release(42);
    }

    #[test]
    fn zero_lock_transaction_never_blocks_others() {
        // A degenerate transaction holding 0 locks occupies no interval.
        let mut r = rng();
        let mut m = ProbabilisticConflict::new(100);
        assert_eq!(m.try_acquire(1, 0, &[], &mut r), ConflictDecision::Granted);
        for t in 2..100 {
            assert_eq!(m.try_acquire(t, 0, &[], &mut r), ConflictDecision::Granted);
        }
        assert_eq!(m.active_count(), 99);
    }
}
