//! Incremental two-phase locking conflict model (extension).
//!
//! The paper simulates only the conservative protocol — every lock is
//! pre-declared and acquired before any resource work, so deadlock is
//! impossible — and cites Ries & Stonebraker's claim that "claim as
//! needed" locking did not change their conclusions. This model lets that
//! claim be re-examined on the multiprocessor model: the transaction's
//! declared granule set is still sampled up front (the lock *phase* is
//! unchanged), but the locks are claimed **one at a time** against a real
//! lock table ([`lockgran_lockmgr::TwoPhaseScheduler`]). A conflict
//! queues the request instead of failing the whole set; a waits-for
//! cycle aborts the youngest transaction on it, which releases its
//! partial locks and replays its lock phase from scratch.
//!
//! ## Slot recycling and victim age
//!
//! The system model keys conflict calls by slab slot, and slots recycle
//! as transactions complete. Youngest-victim selection needs *ages*, so
//! this model assigns each transaction a monotone internal id at its
//! first `try_acquire` (spawn order equals age order) and keeps the id
//! across deadlock replays — a victim does not become "young again" by
//! being aborted, which would let it be victimized forever.
//!
//! ## Effects channel
//!
//! Breaking a deadlock inside `try_acquire` can abort *other* (blocked)
//! transactions and grant queued requests of third parties. Those side
//! effects cannot be expressed in the single [`ConflictDecision`] return
//! value, so they are buffered here and handed to the system model
//! through [`ConcurrencyControl::drain_deadlock_effects`] after every
//! attempt.

use lockgran_lockmgr::{
    AcquireEffects, AcquireStatus, GranuleId, LockMode, RetryOutcome, TwoPhaseScheduler, TxnId,
};
use lockgran_sim::{DetMap, SimRng};

use crate::config::{ConflictMode, ModelConfig};
use crate::conflict::{AccessSampler, CcStats, ConcurrencyControl, ConflictDecision, TxnSerial};

/// Lock-acquisition progress of one in-flight transaction.
#[derive(Debug)]
struct Progress {
    /// Internal monotone age id (see module docs on slot recycling).
    id: u64,
    /// Declared granule set, locked left to right.
    set: Vec<u64>,
    /// Locks currently held: exactly `set[..cursor]`.
    cursor: usize,
}

/// Conflict model running incremental (claim-as-needed) two-phase
/// locking with deadlock detection.
pub struct TwoPhaseConflict {
    scheduler: TwoPhaseScheduler,
    /// Declared-access sampler (required for `register_access`; unit
    /// tests that feed granule sets directly never call it).
    sampler: Option<AccessSampler>,
    /// Next internal age id (never reused within a run).
    next_id: u64,
    /// Progress per simulator slot, present from first `try_acquire`
    /// until `release`; survives deadlock aborts (the replay re-locks the
    /// same saved set under the same age id).
    progress: DetMap<Progress>,
    /// Spare granule-set buffers recycled through `progress`.
    spare_sets: Vec<Vec<u64>>,
    /// Reverse map: internal age id → simulator slot.
    slot_of: DetMap<TxnSerial>,
    /// Reusable side-effect buffers for the scheduler's acquire path.
    effects: AcquireEffects,
    /// Scratch: wake list of the current release.
    woken_scratch: Vec<TxnId>,
    /// Fully granted (running) transactions.
    active: usize,
    /// Locks currently held, including the partial holdings of blocked
    /// transactions (unlike the conservative models, a blocked 2PL
    /// transaction holds its prefix).
    locks_held: u64,
    /// Deadlock victims aborted (== waits-for cycles broken).
    deadlocks: u64,
    /// Victims aborted inside `try_acquire`, awaiting system pickup.
    aborted_fx: Vec<TxnSerial>,
    /// Third parties granted by victim aborts, awaiting system pickup.
    woken_fx: Vec<TxnSerial>,
}

impl TwoPhaseConflict {
    /// A fresh model drawing granule sets from `sampler`.
    pub fn new(sampler: AccessSampler) -> Self {
        TwoPhaseConflict {
            scheduler: TwoPhaseScheduler::new(),
            sampler: Some(sampler),
            next_id: 0,
            progress: DetMap::new(),
            spare_sets: Vec::new(),
            slot_of: DetMap::new(),
            effects: AcquireEffects::default(),
            woken_scratch: Vec::new(),
            active: 0,
            locks_held: 0,
            deadlocks: 0,
            aborted_fx: Vec::new(),
            woken_fx: Vec::new(),
        }
    }

    /// Access the underlying scheduler (diagnostics).
    pub fn scheduler(&self) -> &TwoPhaseScheduler {
        &self.scheduler
    }

    /// Pre-size every per-transaction structure for the closed system
    /// `cfg` describes: `ntrans` simulated terminals bound the concurrent
    /// transactions, and `min(size.max(), ltot)` bounds the locks each
    /// can hold — so the steady state stays allocation-free even when a
    /// record waiter count or holdings high-water mark first occurs deep
    /// into a run. Worst-case provisioning only makes sense while the
    /// worst case is small: past a fixed budget (capacity-scale MPL
    /// sweeps) the slabs are left to warm lazily instead of eagerly
    /// committing hundreds of megabytes to records never reached.
    pub fn prewarm(&mut self, cfg: &ModelConfig) {
        /// Provisioned-entry ceiling above which eager warm-up is skipped.
        const BUDGET: usize = 1 << 20;
        let txns = cfg.ntrans as usize;
        let per_txn = (cfg.size.max().min(cfg.ltot) as usize).max(1);
        let records = txns.saturating_mul(per_txn).saturating_add(txns);
        if records > BUDGET || txns.saturating_mul(txns) > BUDGET {
            return;
        }
        self.scheduler.prewarm(txns, records);
        self.progress.reserve(txns);
        self.slot_of.reserve(txns);
        self.effects.blockers.reserve(txns);
        self.effects.victims.reserve(txns);
        self.effects.granted.reserve(txns);
        self.woken_scratch.reserve(txns);
        self.aborted_fx.reserve(txns);
        self.woken_fx.reserve(txns);
    }

    /// The simulator slot behind an internal age id.
    fn slot_for(&self, id: TxnId) -> TxnSerial {
        match self.slot_of.get(id.0) {
            Some(&slot) => slot,
            // Every id the scheduler reports maps to a registered slot.
            None => unreachable!("unregistered transaction id {id:?}"),
        }
    }

    /// Record one granted lock for `slot`'s next granule.
    fn advance(&mut self, slot: TxnSerial) {
        let p = self
            .progress
            .get_mut(slot)
            // lint:allow(P001): every id the scheduler reports maps to a
            // registered slot — grants only reach queued transactions
            .expect("grant for unregistered transaction");
        p.cursor += 1;
        debug_assert!(p.cursor <= p.set.len(), "granted past the declared set");
        self.locks_held += 1;
    }
}

impl ConcurrencyControl for TwoPhaseConflict {
    fn register_access(&mut self, rng: &mut SimRng, entities: u64, granules: &mut Vec<u64>) {
        self.sampler
            .as_ref()
            // lint:allow(P001): the factory always attaches a sampler;
            // calling register_access without one is a harness bug
            .expect("twophase conflict model has no access sampler")
            .sample_into(rng, entities, granules);
    }

    fn try_acquire(
        &mut self,
        txn: TxnSerial,
        locks: u64,
        granules: &[u64],
        _rng: &mut SimRng,
    ) -> ConflictDecision {
        // First attempt registers the declared set under a fresh age id;
        // wake-up retries and deadlock replays resume the saved entry.
        // Set buffers cycle through the spare pool so the steady state
        // allocates nothing.
        if !self.progress.contains_key(txn) {
            debug_assert_eq!(
                granules.len() as u64,
                locks,
                "granule set size disagrees with lock count"
            );
            let id = self.next_id;
            self.next_id += 1;
            let mut set = self.spare_sets.pop().unwrap_or_default();
            set.clear();
            set.extend_from_slice(granules);
            self.progress.insert(txn, Progress { id, set, cursor: 0 });
            self.slot_of.insert(id, txn);
        }
        loop {
            let (id, granule) = {
                let p = match self.progress.get(txn) {
                    Some(p) => p,
                    None => unreachable!("progress entry registered above"),
                };
                if p.cursor == p.set.len() {
                    break;
                }
                (TxnId(p.id), GranuleId(p.set[p.cursor]))
            };
            // The paper locks granules exclusively: any overlap conflicts.
            let mut fx = std::mem::take(&mut self.effects);
            let status = self
                .scheduler
                .acquire_into(id, granule, LockMode::X, &mut fx);
            let decision = match status {
                AcquireStatus::Granted => {
                    self.advance(txn);
                    None
                }
                AcquireStatus::Waiting => {
                    Some(ConflictDecision::BlockedBy(self.slot_for(fx.blockers[0])))
                }
                AcquireStatus::Deadlock { retry } => {
                    self.deadlocks += fx.victims.len() as u64;
                    for &v in &fx.victims {
                        let vslot = self.slot_for(v);
                        let p = self
                            .progress
                            .get_mut(vslot)
                            // lint:allow(P001): victims are waiting
                            // transactions, which are always registered
                            .expect("victim without progress entry");
                        // Partial locks are gone; the replay re-locks the
                        // same set under the same age id (see module docs).
                        self.locks_held -= p.cursor as u64;
                        p.cursor = 0;
                        if vslot != txn {
                            self.aborted_fx.push(vslot);
                        }
                    }
                    for i in 0..fx.granted.len() {
                        let gslot = self.slot_for(fx.granted[i]);
                        self.advance(gslot);
                        self.woken_fx.push(gslot);
                    }
                    match retry {
                        RetryOutcome::SelfAborted => Some(ConflictDecision::Aborted),
                        RetryOutcome::Granted => {
                            self.advance(txn);
                            None
                        }
                        RetryOutcome::StillWaiting => {
                            let id = match self.progress.get(txn) {
                                Some(p) => TxnId(p.id),
                                None => unreachable!("surviving requester stays registered"),
                            };
                            let blocker = self
                                .scheduler
                                .blockers_of(id)
                                .next()
                                // lint:allow(P001): under exclusive-only
                                // locking a queued request always keeps at
                                // least one waits-for edge (see
                                // TwoPhaseScheduler::blockers_of)
                                .expect("queued 2PL request with no waits-for edge");
                            Some(ConflictDecision::BlockedBy(self.slot_for(blocker)))
                        }
                    }
                }
            };
            self.effects = fx;
            if let Some(d) = decision {
                return d;
            }
        }
        self.active += 1;
        ConflictDecision::Granted
    }

    fn release(&mut self, txn: TxnSerial, woken: &mut Vec<TxnSerial>) {
        let mut p = self
            .progress
            .remove(txn)
            .unwrap_or_else(|| panic!("release of inactive transaction {txn}"));
        self.slot_of.remove(p.id);
        debug_assert_eq!(
            p.cursor,
            p.set.len(),
            "release of a transaction still acquiring"
        );
        self.locks_held -= p.cursor as u64;
        self.active -= 1;
        let id = p.id;
        p.set.clear();
        self.spare_sets.push(std::mem::take(&mut p.set));
        let mut granted = std::mem::take(&mut self.woken_scratch);
        self.scheduler.release_into(TxnId(id), &mut granted);
        for &t in &granted {
            let slot = self.slot_for(t);
            self.advance(slot);
            woken.push(slot);
        }
        self.woken_scratch = granted;
    }

    fn drain_deadlock_effects(&mut self, aborted: &mut Vec<TxnSerial>, woken: &mut Vec<TxnSerial>) {
        aborted.append(&mut self.aborted_fx);
        woken.append(&mut self.woken_fx);
    }

    fn active_count(&self) -> usize {
        self.active
    }

    fn locks_held(&self) -> u64 {
        self.locks_held
    }

    fn stats(&self) -> CcStats {
        CcStats {
            escalations: 0,
            intent_locks: 0,
            deadlocks: self.deadlocks,
        }
    }

    fn reset(&mut self, cfg: &ModelConfig) -> bool {
        if cfg.conflict != ConflictMode::Twophase {
            return false;
        }
        // Reset-equals-fresh throughout: the scheduler, the slot maps and
        // the pooled set buffers all keep their allocations.
        self.scheduler.reset();
        self.sampler = Some(AccessSampler::from_config(cfg));
        self.next_id = 0;
        // Recycle in-flight set buffers before dropping the map entries.
        while let Some(key) = self.progress.iter().next().map(|(k, _)| k) {
            if let Some(mut p) = self.progress.remove(key) {
                p.set.clear();
                self.spare_sets.push(std::mem::take(&mut p.set));
            }
        }
        self.progress.clear();
        self.slot_of.clear();
        self.effects.clear();
        self.woken_scratch.clear();
        self.active = 0;
        self.locks_held = 0;
        self.deadlocks = 0;
        self.aborted_fx.clear();
        self.woken_fx.clear();
        // The new configuration may raise the multiprogramming level:
        // re-provision for it (a no-op when capacity already suffices).
        self.prewarm(cfg);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lockgran_workload::Placement;

    fn sampler() -> AccessSampler {
        AccessSampler {
            placement: Placement::Best,
            ltot: 100,
            dbsize: 5000,
            hot_spot: None,
        }
    }

    fn model() -> TwoPhaseConflict {
        TwoPhaseConflict::new(sampler())
    }

    fn rng() -> SimRng {
        SimRng::new(11)
    }

    /// Collect a release's wake list (test convenience).
    fn release_vec(m: &mut TwoPhaseConflict, txn: TxnSerial) -> Vec<TxnSerial> {
        let mut woken = Vec::new();
        m.release(txn, &mut woken);
        woken
    }

    /// Drain the effect buffers (test convenience).
    fn drain(m: &mut TwoPhaseConflict) -> (Vec<TxnSerial>, Vec<TxnSerial>) {
        let (mut a, mut w) = (Vec::new(), Vec::new());
        m.drain_deadlock_effects(&mut a, &mut w);
        (a, w)
    }

    #[test]
    fn disjoint_sets_admit_concurrently() {
        let mut m = model();
        let mut r = rng();
        assert_eq!(
            m.try_acquire(1, 3, &[0, 1, 2], &mut r),
            ConflictDecision::Granted
        );
        assert_eq!(
            m.try_acquire(2, 2, &[5, 6], &mut r),
            ConflictDecision::Granted
        );
        assert_eq!(m.active_count(), 2);
        assert_eq!(m.locks_held(), 5);
        assert_eq!(m.stats().deadlocks, 0);
    }

    #[test]
    fn blocked_transaction_keeps_its_partial_prefix() {
        let mut m = model();
        let mut r = rng();
        let _ = m.try_acquire(1, 1, &[1], &mut r);
        // Grants g0, then queues on g1: the prefix lock is *held*.
        assert_eq!(
            m.try_acquire(2, 2, &[0, 1], &mut r),
            ConflictDecision::BlockedBy(1)
        );
        assert_eq!(m.active_count(), 1, "blocked txn is not active");
        assert_eq!(m.locks_held(), 2, "partial prefix still counts as held");
        let woken = release_vec(&mut m, 1);
        assert_eq!(woken, vec![2]);
        // The wake-up retry resumes the saved set (empty slice ignored).
        assert_eq!(m.try_acquire(2, 2, &[], &mut r), ConflictDecision::Granted);
        assert_eq!(m.locks_held(), 2);
    }

    /// Full deadlock lifecycle where the *other* transaction is youngest:
    /// the requester's re-acquire closes the cycle, the victim's slot
    /// lands in the abort effects, and the victim replays its saved set.
    #[test]
    fn deadlock_aborts_youngest_and_requester_proceeds() {
        let mut m = model();
        let mut r = rng();
        // Ages: slot 10 = id 0, slot 11 = id 1, slot 12 = id 2.
        assert_eq!(
            m.try_acquire(10, 1, &[9], &mut r),
            ConflictDecision::Granted
        );
        // Holds g0, waits g9 on slot 10.
        assert_eq!(
            m.try_acquire(11, 3, &[0, 9, 1], &mut r),
            ConflictDecision::BlockedBy(10)
        );
        // Holds g1, waits g0 on slot 11.
        assert_eq!(
            m.try_acquire(12, 2, &[1, 0], &mut r),
            ConflictDecision::BlockedBy(11)
        );
        // Releasing slot 10 grants g9; the retry then queues on g1 held
        // by slot 12, closing 11 -> 12 -> 11. Slot 12 (youngest) aborts,
        // freeing g1 for the requester: the retry is granted.
        assert_eq!(release_vec(&mut m, 10), vec![11]);
        assert_eq!(m.try_acquire(11, 3, &[], &mut r), ConflictDecision::Granted);
        assert_eq!(m.stats().deadlocks, 1);
        let (aborted, woken) = drain(&mut m);
        assert_eq!(aborted, vec![12]);
        assert!(woken.is_empty());
        // A second drain is empty — effects are consumed.
        let (aborted, woken) = drain(&mut m);
        assert!(aborted.is_empty() && woken.is_empty());
        // The victim replays its saved [1, 0] set and queues behind the
        // requester, which now holds g1.
        assert_eq!(
            m.try_acquire(12, 2, &[], &mut r),
            ConflictDecision::BlockedBy(11)
        );
        assert_eq!(release_vec(&mut m, 11), vec![12]);
        assert_eq!(m.try_acquire(12, 2, &[], &mut r), ConflictDecision::Granted);
        assert_eq!(m.active_count(), 1);
        assert_eq!(m.locks_held(), 2);
    }

    /// Deadlock where the requester itself is youngest: `try_acquire`
    /// reports `Aborted`, and the third party granted by the abort lands
    /// in the wake effects.
    #[test]
    fn self_abort_reports_aborted_and_wakes_third_party() {
        let mut m = model();
        let mut r = rng();
        // Ages: slot 1 = id 0, slot 2 = id 1, slot 3 = id 2, slot 4 = id 3.
        assert_eq!(m.try_acquire(1, 1, &[0], &mut r), ConflictDecision::Granted);
        assert_eq!(m.try_acquire(2, 1, &[9], &mut r), ConflictDecision::Granted);
        // Holds g1, waits g0 on slot 1.
        assert_eq!(
            m.try_acquire(3, 3, &[1, 0, 5], &mut r),
            ConflictDecision::BlockedBy(1)
        );
        // Holds g5, waits g9 on slot 2. Youngest of the future cycle.
        assert_eq!(
            m.try_acquire(4, 3, &[5, 9, 1], &mut r),
            ConflictDecision::BlockedBy(2)
        );
        // Slot 1 releases g0: slot 3's retry advances to g5, held by
        // slot 4 — waits (no cycle yet: 4 waits on 2).
        assert_eq!(release_vec(&mut m, 1), vec![3]);
        assert_eq!(
            m.try_acquire(3, 3, &[], &mut r),
            ConflictDecision::BlockedBy(4)
        );
        // Slot 2 releases g9: slot 4's retry advances to g1, held by
        // slot 3 — cycle 3 -> 4 -> 3, youngest is the requester (slot 4).
        // Its abort frees g5, granting slot 3's queued request.
        assert_eq!(release_vec(&mut m, 2), vec![4]);
        assert_eq!(m.try_acquire(4, 3, &[], &mut r), ConflictDecision::Aborted);
        assert_eq!(m.stats().deadlocks, 1);
        let (aborted, woken) = drain(&mut m);
        assert!(aborted.is_empty(), "self-abort is the return value");
        assert_eq!(woken, vec![3]);
        // The woken transaction finishes its set; the victim replays.
        assert_eq!(m.try_acquire(3, 3, &[], &mut r), ConflictDecision::Granted);
        assert_eq!(
            m.try_acquire(4, 3, &[], &mut r),
            ConflictDecision::BlockedBy(3)
        );
        assert_eq!(release_vec(&mut m, 3), vec![4]);
        assert_eq!(m.try_acquire(4, 3, &[], &mut r), ConflictDecision::Granted);
        assert_eq!(m.active_count(), 1);
    }

    /// Victim selection uses registration age, not slot numbers: the
    /// youngest transaction aborts even when it lives in the lowest slot
    /// (slots recycle in the simulator).
    #[test]
    fn victim_age_is_registration_order_not_slot_number() {
        let mut m = model();
        let mut r = rng();
        // Highest slot registers first (oldest), lowest slot last.
        assert_eq!(
            m.try_acquire(90, 1, &[9], &mut r),
            ConflictDecision::Granted
        );
        assert_eq!(
            m.try_acquire(70, 3, &[0, 9, 1], &mut r),
            ConflictDecision::BlockedBy(90)
        );
        assert_eq!(
            m.try_acquire(5, 2, &[1, 0], &mut r),
            ConflictDecision::BlockedBy(70)
        );
        assert_eq!(release_vec(&mut m, 90), vec![70]);
        assert_eq!(m.try_acquire(70, 3, &[], &mut r), ConflictDecision::Granted);
        let (aborted, _) = drain(&mut m);
        assert_eq!(aborted, vec![5], "youngest by age, lowest by slot");
    }

    #[test]
    #[should_panic(expected = "release of inactive")]
    fn release_of_unknown_txn_panics() {
        let mut m = model();
        m.release(42, &mut Vec::new());
    }

    #[test]
    fn reset_equals_fresh() {
        let cfg = ModelConfig::table1().with_conflict(ConflictMode::Twophase);
        let mut m = model();
        let mut r = rng();
        // Build up state including a broken deadlock with pending effects.
        let _ = m.try_acquire(10, 1, &[9], &mut r);
        let _ = m.try_acquire(11, 3, &[0, 9, 1], &mut r);
        let _ = m.try_acquire(12, 2, &[1, 0], &mut r);
        let _ = release_vec(&mut m, 10);
        let _ = m.try_acquire(11, 3, &[], &mut r);
        assert_eq!(m.stats().deadlocks, 1);
        assert!(m.reset(&cfg));
        assert_eq!(m.active_count(), 0);
        assert_eq!(m.locks_held(), 0);
        assert_eq!(m.stats(), CcStats::default());
        let (aborted, woken) = drain(&mut m);
        assert!(aborted.is_empty() && woken.is_empty());
        // Age ids restart from zero: replay the same history and the same
        // victim falls out.
        let _ = m.try_acquire(10, 1, &[9], &mut r);
        let _ = m.try_acquire(11, 3, &[0, 9, 1], &mut r);
        let _ = m.try_acquire(12, 2, &[1, 0], &mut r);
        let _ = release_vec(&mut m, 10);
        assert_eq!(m.try_acquire(11, 3, &[], &mut r), ConflictDecision::Granted);
        let (aborted, _) = drain(&mut m);
        assert_eq!(aborted, vec![12]);
        // A different mode forces a rebuild.
        assert!(!m.reset(&ModelConfig::table1()));
    }

    #[test]
    fn zero_lock_transaction_is_granted_immediately() {
        let mut m = model();
        let mut r = rng();
        assert_eq!(m.try_acquire(1, 0, &[], &mut r), ConflictDecision::Granted);
        assert_eq!(m.active_count(), 1);
        assert_eq!(m.locks_held(), 0);
        let _ = release_vec(&mut m, 1);
        assert_eq!(m.active_count(), 0);
    }
}
