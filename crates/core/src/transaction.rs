//! Per-transaction runtime state.
//!
//! A [`Transaction`] carries its workload spec (`NU_i`, `LU_i`, the
//! processor set realizing `PU_i`), the granule set used by the explicit
//! conflict model, and the fork/join bookkeeping the system model needs:
//! how many lock-overhead shares and how many sub-transaction stages are
//! still outstanding.

use lockgran_sim::{Dur, Time};
use lockgran_workload::TransactionSpec;

/// Lifecycle phase of a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnPhase {
    /// Lock-overhead shares are being processed at the resources.
    LockPhase,
    /// Blocked on an active transaction, waiting to be woken.
    Blocked,
    /// Locks held; sub-transactions running (I/O then CPU per processor).
    Running,
    /// All sub-transactions complete; the transaction has left the system.
    Done,
}

/// Runtime state of one transaction instance.
#[derive(Clone, Debug)]
pub struct Transaction {
    /// Monotone serial, unique within a run.
    pub serial: u64,
    /// The workload draw (`NU_i`, `LU_i`, processors).
    pub spec: TransactionSpec,
    /// Explicit granule set (empty under the probabilistic model).
    pub granules: Vec<u64>,
    /// When the transaction first entered the pending queue.
    pub arrived: Time,
    /// Lock request attempts so far (1 = first try).
    pub attempts: u32,
    /// Current phase.
    pub phase: TxnPhase,
    /// Outstanding lock-overhead share jobs for the current attempt.
    pub lock_shares_outstanding: u32,
    /// Outstanding sub-transactions (each finishes after its CPU stage).
    pub subtxns_outstanding: u32,
    /// Per-processor CPU-stage demand, filled in when the transaction is
    /// admitted (index-aligned with `spec.processors`).
    pub cpu_shares: Vec<Dur>,
}

impl Transaction {
    /// A freshly arrived transaction.
    pub fn new(serial: u64, spec: TransactionSpec, granules: Vec<u64>, arrived: Time) -> Self {
        Transaction {
            serial,
            spec,
            granules,
            arrived,
            attempts: 0,
            phase: TxnPhase::LockPhase,
            lock_shares_outstanding: 0,
            subtxns_outstanding: 0,
            cpu_shares: Vec::new(),
        }
    }

    /// `PU_i`: the sub-transaction fan-out.
    pub fn fanout(&self) -> u32 {
        self.spec.fanout()
    }

    /// Total transaction I/O demand (`NU_i · iotime`), given the per-entity
    /// cost in ticks.
    pub fn io_demand(&self, iotime: Dur) -> Dur {
        iotime.times(self.spec.entities)
    }

    /// Total transaction CPU demand (`NU_i · cputime`).
    pub fn cpu_demand(&self, cputime: Dur) -> Dur {
        cputime.times(self.spec.entities)
    }

    /// Total lock CPU overhead per attempt (`LU_i · lcputime`).
    pub fn lock_cpu_demand(&self, lcputime: Dur) -> Dur {
        lcputime.times(self.spec.locks)
    }

    /// Total lock I/O overhead per attempt (`LU_i · liotime`).
    pub fn lock_io_demand(&self, liotime: Dur) -> Dur {
        liotime.times(self.spec.locks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TransactionSpec {
        TransactionSpec {
            entities: 250,
            locks: 5,
            processors: vec![0, 1, 2, 3],
        }
    }

    #[test]
    fn demand_formulas_match_paper() {
        let t = Transaction::new(1, spec(), vec![], Time::ZERO);
        // IOtime_i = NU_i * iotime = 250 * 0.2 = 50 units.
        assert_eq!(t.io_demand(Dur::from_units(0.2)).units(), 50.0);
        // CPUtime_i = NU_i * cputime = 250 * 0.05 = 12.5 units.
        assert_eq!(t.cpu_demand(Dur::from_units(0.05)).units(), 12.5);
        // LCPUtime_i = LU_i * lcputime = 5 * 0.01 = 0.05 units.
        assert_eq!(t.lock_cpu_demand(Dur::from_units(0.01)).units(), 0.05);
        // LIOtime_i = LU_i * liotime = 5 * 0.2 = 1.0 units.
        assert_eq!(t.lock_io_demand(Dur::from_units(0.2)).units(), 1.0);
    }

    #[test]
    fn initial_state() {
        let t = Transaction::new(9, spec(), vec![1, 2], Time::from_units(3.0));
        assert_eq!(t.serial, 9);
        assert_eq!(t.phase, TxnPhase::LockPhase);
        assert_eq!(t.attempts, 0);
        assert_eq!(t.fanout(), 4);
        assert_eq!(t.granules, vec![1, 2]);
        assert_eq!(t.arrived, Time::from_units(3.0));
    }
}
