//! Simulation entry point.
//!
//! [`run`] executes one configuration to its horizon and returns the
//! paper's output parameters; [`run_replicated`] averages independent
//! replications (different seeds) and reports confidence intervals, which
//! the experiment harness uses to draw stable curves.

use lockgran_sim::{Executor, FelKind, SimRng, Tally};

use crate::config::ModelConfig;
use crate::metrics::RunMetrics;
use crate::system::System;
use crate::timeline::{TimelineCollector, TimelinePoint};
use crate::trace::VecTracer;

/// Run one simulation to `cfg.tmax` with the given seed.
///
/// Deterministic: the same `(cfg, seed)` pair always produces the same
/// metrics, bit for bit.
///
/// # Panics
/// Panics if `cfg.validate()` fails.
pub fn run(cfg: &ModelConfig, seed: u64) -> RunMetrics {
    run_with_fel(cfg, seed, FelKind::Calendar)
}

/// Run one simulation with an explicit future-event-list choice.
///
/// Production paths use the calendar queue (O(1) amortized); the binary
/// heap remains available as the reference implementation. Both order
/// events by the same stable `(time, seq)` key, so the returned metrics
/// are bit-identical across kinds — `tests/fel_identity.rs` holds the
/// engine to exactly that.
///
/// # Panics
/// Panics if `cfg.validate()` fails.
pub fn run_with_fel(cfg: &ModelConfig, seed: u64, fel: FelKind) -> RunMetrics {
    let mut ex = Executor::with_fel(fel);
    let mut system = System::new(cfg, seed, &mut ex);
    let horizon = system.tmax();
    let end = ex.run(&mut system, horizon);
    system.finish(end)
}

/// Reusable run state: one executor plus one [`System`], recycled across
/// `(config, seed)` runs.
///
/// [`RunArena::run`] is bit-identical to [`run`] — the reset paths
/// ([`Executor::reset`], [`System::reset`]) restore fresh-construction
/// semantics — but keeps every grown allocation: the future-event list's
/// buckets, the transaction slab's buffers (drained into the carcass
/// pool), the conflict model's tables, and the workload generator's lock
/// memo. At capacity scale (10⁵ resident transactions, 10⁷-entity
/// databases) rebuilding that state dominates short sweep points, so the
/// experiment harness gives each worker thread one arena and streams its
/// share of the sweep through it.
pub struct RunArena {
    ex: Executor<crate::system::Event>,
    system: Option<System>,
}

impl Default for RunArena {
    fn default() -> Self {
        Self::new()
    }
}

impl RunArena {
    /// An empty arena (production FEL, no system yet).
    pub fn new() -> Self {
        RunArena {
            ex: Executor::with_fel(FelKind::Calendar),
            system: None,
        }
    }

    /// Run one `(cfg, seed)` simulation to its horizon, reusing this
    /// arena's state. Deterministic and bit-identical to [`run`] for every
    /// `(cfg, seed)`, regardless of what ran in the arena before.
    ///
    /// # Panics
    /// Panics if `cfg.validate()` fails.
    pub fn run(&mut self, cfg: &ModelConfig, seed: u64) -> RunMetrics {
        self.ex.reset();
        let system = match &mut self.system {
            Some(sys) => {
                sys.reset(cfg, seed, &mut self.ex);
                sys
            }
            None => self.system.insert(System::new(cfg, seed, &mut self.ex)),
        };
        let horizon = system.tmax();
        let end = self.ex.run(system, horizon);
        system.finish(end)
    }
}

/// Run one simulation with protocol tracing enabled, returning both the
/// metrics and the full [`VecTracer`] event stream. Tracing records every
/// protocol transition, so use short horizons.
///
/// # Panics
/// Panics if `cfg.validate()` fails.
pub fn run_traced(cfg: &ModelConfig, seed: u64) -> (RunMetrics, VecTracer) {
    let mut ex = Executor::with_fel(FelKind::Calendar);
    let mut system = System::new(cfg, seed, &mut ex);
    system.enable_tracing();
    let horizon = system.tmax();
    let end = ex.run(&mut system, horizon);
    let trace = system
        .take_trace()
        // lint:allow(P001): enable_tracing ran before the executor
        .expect("tracing was enabled");
    (system.finish(end), trace)
}

/// Run one simulation with timeline sampling every `interval` time
/// units, returning the metrics and the window series.
///
/// # Panics
/// Panics if `cfg.validate()` fails or `interval <= 0`.
pub fn run_timeline(
    cfg: &ModelConfig,
    seed: u64,
    interval: f64,
) -> (RunMetrics, Vec<TimelinePoint>) {
    assert!(interval > 0.0, "sampling interval must be positive");
    let mut ex = Executor::with_fel(FelKind::Calendar);
    let mut system = System::new(cfg, seed, &mut ex);
    system.enable_timeline(interval, &mut ex);
    let horizon = system.tmax();
    let end = ex.run(&mut system, horizon);
    let tl: TimelineCollector = system
        .take_timeline()
        // lint:allow(P001): enable_timeline ran before the executor
        .expect("timeline was enabled");
    (system.finish(end), tl.points)
}

/// Suggest a warm-up (in time units) for a configuration via Welch's
/// procedure over `reps` replications of per-window throughput, or `None`
/// if the series never settles within `tolerance`.
///
/// # Panics
/// Panics if `cfg.validate()` fails, `reps == 0`, or `interval <= 0`.
pub fn suggest_warmup(cfg: &ModelConfig, seed: u64, reps: u32, interval: f64) -> Option<f64> {
    assert!(reps > 0, "need at least one replication");
    let root = SimRng::new(seed);
    let series: Vec<Vec<f64>> = (0..reps)
        .map(|r| {
            let (_, points) = run_timeline(cfg, root.split_index(u64::from(r)).seed(), interval);
            points.iter().map(|p| p.throughput).collect()
        })
        .collect();
    let window = (series.iter().map(Vec::len).min().unwrap_or(0) / 10).max(3);
    lockgran_sim::stats::welch::welch_warmup(&series, window, 0.08)
        .map(|windows| windows as f64 * interval)
}

/// Mean ± 95% CI of a metric over replications.
#[derive(Clone, Copy, Debug)]
pub struct Estimate {
    /// Sample mean over replications.
    pub mean: f64,
    /// Half-width of the 95% confidence interval.
    pub ci95: f64,
}

/// Aggregated results of several independent replications.
#[derive(Clone, Debug)]
pub struct ReplicatedMetrics {
    /// Per-replication raw metrics.
    pub runs: Vec<RunMetrics>,
    /// Throughput estimate.
    pub throughput: Estimate,
    /// Response-time estimate.
    pub response_time: Estimate,
    /// Useful per-processor CPU time estimate.
    pub usefulcpus: Estimate,
    /// Useful per-processor I/O time estimate.
    pub usefulios: Estimate,
    /// Total lock overhead (CPU + I/O) estimate.
    pub lock_overhead: Estimate,
}

/// Run `reps` independent replications (seeds derived from `seed`) and
/// aggregate the headline metrics.
///
/// # Panics
/// Panics if `reps == 0` or `cfg.validate()` fails.
pub fn run_replicated(cfg: &ModelConfig, seed: u64, reps: u32) -> ReplicatedMetrics {
    assert!(reps > 0, "need at least one replication");
    let root = SimRng::new(seed);
    let runs: Vec<RunMetrics> = (0..reps)
        .map(|r| run(cfg, root.split_index(u64::from(r)).seed()))
        .collect();
    let estimate = |f: &dyn Fn(&RunMetrics) -> f64| {
        let mut t = Tally::new();
        for m in &runs {
            t.record(f(m));
        }
        Estimate {
            mean: t.mean(),
            ci95: t.ci95_half_width(),
        }
    };
    ReplicatedMetrics {
        throughput: estimate(&|m| m.throughput),
        response_time: estimate(&|m| m.response_time),
        usefulcpus: estimate(&|m| m.usefulcpus),
        usefulios: estimate(&|m| m.usefulios),
        lock_overhead: estimate(&|m| m.lock_overhead()),
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConflictMode;
    use lockgran_workload::{Partitioning, Placement};

    /// A short but non-trivial baseline for unit tests.
    fn quick() -> ModelConfig {
        ModelConfig::table1().with_tmax(1_000.0)
    }

    #[test]
    fn run_is_deterministic() {
        let a = run(&quick(), 12345);
        let b = run(&quick(), 12345);
        assert_eq!(a.totcom, b.totcom);
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.response_time, b.response_time);
        assert_eq!(a.totcpus, b.totcpus);
        assert_eq!(a.lockios, b.lockios);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(&quick(), 1);
        let b = run(&quick(), 2);
        // Throughput is a ratio of integers over the same span; response
        // time is the sharper discriminator.
        assert_ne!(a.response_time, b.response_time);
    }

    #[test]
    fn metrics_are_internally_consistent() {
        for seed in 0..5 {
            let cfg = quick();
            let m = run(&cfg, seed);
            m.check_consistency(cfg.npros).unwrap();
            assert!(m.totcom > 0, "no transactions completed");
            assert!(m.throughput > 0.0);
            assert!(m.response_time > 0.0);
        }
    }

    #[test]
    fn single_database_lock_serializes_throughput() {
        // ltot = 1 forces serial execution: mean active must be ~1 and the
        // denial rate high.
        let m = run(&quick().with_ltot(1), 7);
        assert!(m.mean_active <= 1.0 + 1e-9, "mean active {}", m.mean_active);
        assert!(m.denial_rate > 0.5, "denial rate {}", m.denial_rate);
        m.check_consistency(10).unwrap();
    }

    #[test]
    fn more_locks_allow_more_concurrency() {
        let coarse = run(&quick().with_ltot(1), 3);
        let fine = run(&quick().with_ltot(100), 3);
        assert!(
            fine.mean_active > coarse.mean_active,
            "fine {} vs coarse {}",
            fine.mean_active,
            coarse.mean_active
        );
        assert!(fine.throughput > coarse.throughput);
    }

    #[test]
    fn lock_overhead_grows_with_lock_count() {
        let few = run(&quick().with_ltot(10), 3);
        let many = run(&quick().with_ltot(5_000), 3);
        assert!(
            many.lock_overhead() > few.lock_overhead(),
            "many {} vs few {}",
            many.lock_overhead(),
            few.lock_overhead()
        );
    }

    #[test]
    fn zero_lock_io_time_removes_lock_io() {
        let m = run(&quick().with_liotime(0.0), 5);
        assert_eq!(m.lockios, 0.0);
        assert!(m.lockcpus > 0.0);
        m.check_consistency(10).unwrap();
    }

    #[test]
    fn uniprocessor_runs() {
        let m = run(&quick().with_npros(1), 11);
        assert!(m.totcom > 0);
        m.check_consistency(1).unwrap();
    }

    #[test]
    fn explicit_conflict_mode_runs_and_is_consistent() {
        let cfg = quick().with_conflict(ConflictMode::Explicit);
        let m = run(&cfg, 13);
        assert!(m.totcom > 0);
        m.check_consistency(cfg.npros).unwrap();
    }

    #[test]
    fn explicit_and_probabilistic_agree_roughly() {
        // The probabilistic model approximates explicit conflicts; at the
        // Table 1 baseline the throughputs should be within ~35%.
        let p = run(&quick(), 21);
        let e = run(&quick().with_conflict(ConflictMode::Explicit), 21);
        let ratio = p.throughput / e.throughput;
        assert!(
            (0.65..=1.55).contains(&ratio),
            "throughput ratio {ratio} (prob {} vs explicit {})",
            p.throughput,
            e.throughput
        );
    }

    #[test]
    fn random_partitioning_runs() {
        let m = run(&quick().with_partitioning(Partitioning::Random), 17);
        assert!(m.totcom > 0);
        m.check_consistency(10).unwrap();
    }

    #[test]
    fn worst_placement_runs() {
        let m = run(&quick().with_placement(Placement::Worst).with_ltot(250), 19);
        assert!(m.totcom > 0);
        m.check_consistency(10).unwrap();
    }

    #[test]
    fn warmup_discards_early_completions() {
        let no_warmup = run(&quick(), 23);
        let warm = run(&quick().with_warmup(500.0), 23);
        assert!(warm.totcom < no_warmup.totcom);
        assert!(warm.measured_time < no_warmup.measured_time);
        warm.check_consistency(10).unwrap();
    }

    #[test]
    fn replication_reduces_uncertainty() {
        let cfg = quick();
        let few = run_replicated(&cfg, 1, 2);
        let many = run_replicated(&cfg, 1, 8);
        assert_eq!(few.runs.len(), 2);
        assert_eq!(many.runs.len(), 8);
        assert!(many.throughput.mean > 0.0);
        assert!(many.throughput.ci95.is_finite());
        // Every replication mean lies within a loose band of the grand
        // mean — replications are exchangeable, not wildly dispersed.
        for r in &many.runs {
            let rel = (r.throughput - many.throughput.mean).abs() / many.throughput.mean;
            assert!(rel < 0.5, "replication deviates {rel} from grand mean");
        }
    }
}
