//! Output parameters.
//!
//! [`RunMetrics`] carries the paper's §2 output parameters under their
//! original names plus extended diagnostics (blocking rates, queue
//! levels, response-time distribution) that the experiment harness and
//! the ablation benches report.

use lockgran_sim::{Json, ToJson};

/// All measurements from one simulation run.
#[derive(Clone, Debug)]
pub struct RunMetrics {
    // ----- the paper's output parameters (§2) -----
    /// `totcpus`: time units the CPU resources were busy (all work),
    /// summed over processors.
    pub totcpus: f64,
    /// `totios`: time units the I/O resources were busy (all work),
    /// summed over processors.
    pub totios: f64,
    /// `lockcpus`: CPU time spent requesting/setting/releasing locks,
    /// summed over processors.
    pub lockcpus: f64,
    /// `lockios`: I/O time spent requesting/setting/releasing locks,
    /// summed over processors.
    pub lockios: f64,
    /// `usefulcpus = (totcpus − lockcpus) / npros`: average per-processor
    /// CPU time spent on transaction processing.
    pub usefulcpus: f64,
    /// `usefulios = (totios − lockios) / npros`: average per-processor I/O
    /// time spent on transaction processing.
    pub usefulios: f64,
    /// `totcom`: transactions completed within the measurement window.
    pub totcom: u64,
    /// `throughput = totcom / tmax`: completions per time unit.
    pub throughput: f64,
    /// Mean response time: pending-queue entry → lock release.
    pub response_time: f64,

    // ----- extended diagnostics -----
    /// Measurement window length in time units (tmax − warmup).
    pub measured_time: f64,
    /// Lock request attempts (first tries + retries).
    pub lock_attempts: u64,
    /// Attempts that were denied (transaction blocked).
    pub lock_denials: u64,
    /// Fraction of attempts denied.
    pub denial_rate: f64,
    /// Time-average number of active (lock-holding) transactions.
    pub mean_active: f64,
    /// Time-average number of blocked transactions.
    pub mean_blocked: f64,
    /// Time-average number of transactions waiting for an admission slot
    /// (always 0 without an `mpl_limit`).
    pub mean_pending: f64,
    /// Mean CPU utilization across processors (all work).
    pub cpu_utilization: f64,
    /// Mean I/O utilization across processors (all work).
    pub io_utilization: f64,
    /// Response-time standard deviation.
    pub response_time_std: f64,
    /// 95th-percentile response time (histogram upper-edge estimate; equal
    /// to the histogram bound if the tail overflows).
    pub response_time_p95: f64,
    /// Mean number of lock request attempts per completed transaction.
    pub attempts_per_txn: f64,
    /// Transactions aborted within the measurement window: processor
    /// failures killing a running transaction (failure extension) plus
    /// 2PL deadlock victims (twophase conflict model). 0 without either
    /// extension active.
    pub aborts: u64,
    /// Processor failure events within the measurement window (failure
    /// extension; 0 without a `FailureSpec`).
    pub failures: u64,
    /// Lock escalations performed within the measurement window
    /// (hierarchical conflict model only; 0 otherwise).
    pub escalations: u64,
    /// Intention locks (`IS`/`IX`/`SIX`) granted within the measurement
    /// window (hierarchical conflict model only; 0 otherwise).
    pub intent_locks: u64,
    /// Waits-for cycles broken within the measurement window, each by
    /// aborting its youngest transaction (twophase conflict model only;
    /// 0 otherwise). Every deadlock victim is also counted in `aborts`.
    pub deadlocks: u64,
    /// 95% CI half-width of the mean response time from the in-run
    /// batch-means estimator (0 until at least two batches close). Unlike
    /// the cross-replication CI this needs a single run, with O(1) memory
    /// at any horizon.
    pub response_ci95_batch: f64,
    /// Number of closed batches behind `response_ci95_batch`.
    pub response_batches: u64,
}

impl ToJson for RunMetrics {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("totcpus", self.totcpus.to_json()),
            ("totios", self.totios.to_json()),
            ("lockcpus", self.lockcpus.to_json()),
            ("lockios", self.lockios.to_json()),
            ("usefulcpus", self.usefulcpus.to_json()),
            ("usefulios", self.usefulios.to_json()),
            ("totcom", self.totcom.to_json()),
            ("throughput", self.throughput.to_json()),
            ("response_time", self.response_time.to_json()),
            ("measured_time", self.measured_time.to_json()),
            ("lock_attempts", self.lock_attempts.to_json()),
            ("lock_denials", self.lock_denials.to_json()),
            ("denial_rate", self.denial_rate.to_json()),
            ("mean_active", self.mean_active.to_json()),
            ("mean_blocked", self.mean_blocked.to_json()),
            ("mean_pending", self.mean_pending.to_json()),
            ("cpu_utilization", self.cpu_utilization.to_json()),
            ("io_utilization", self.io_utilization.to_json()),
            ("response_time_std", self.response_time_std.to_json()),
            ("response_time_p95", self.response_time_p95.to_json()),
            ("attempts_per_txn", self.attempts_per_txn.to_json()),
            ("aborts", self.aborts.to_json()),
            ("failures", self.failures.to_json()),
            ("escalations", self.escalations.to_json()),
            ("intent_locks", self.intent_locks.to_json()),
            ("deadlocks", self.deadlocks.to_json()),
            ("response_ci95_batch", self.response_ci95_batch.to_json()),
            ("response_batches", self.response_batches.to_json()),
        ])
    }
}

impl RunMetrics {
    /// Total lock overhead (CPU + I/O), summed over processors.
    pub fn lock_overhead(&self) -> f64 {
        self.lockcpus + self.lockios
    }

    /// Sanity-check internal consistency (used by integration tests).
    pub fn check_consistency(&self, npros: u32) -> Result<(), String> {
        if self.lockcpus > self.totcpus + 1e-9 {
            return Err(format!(
                "lockcpus ({}) exceeds totcpus ({})",
                self.lockcpus, self.totcpus
            ));
        }
        if self.lockios > self.totios + 1e-9 {
            return Err(format!(
                "lockios ({}) exceeds totios ({})",
                self.lockios, self.totios
            ));
        }
        let expect_useful_cpu = (self.totcpus - self.lockcpus) / f64::from(npros);
        if (self.usefulcpus - expect_useful_cpu).abs() > 1e-6 {
            return Err("usefulcpus inconsistent with totcpus/lockcpus".into());
        }
        let expect_useful_io = (self.totios - self.lockios) / f64::from(npros);
        if (self.usefulios - expect_useful_io).abs() > 1e-6 {
            return Err("usefulios inconsistent with totios/lockios".into());
        }
        if self.measured_time > 0.0 {
            let expect_tput = self.totcom as f64 / self.measured_time;
            if (self.throughput - expect_tput).abs() > 1e-9 {
                return Err("throughput != totcom / measured_time".into());
            }
        }
        if self.lock_denials > self.lock_attempts {
            return Err("more denials than attempts".into());
        }
        if self.deadlocks > self.aborts {
            return Err("more deadlock victims than aborts".into());
        }
        if !(0.0..=1.0 + 1e-9).contains(&self.cpu_utilization) {
            return Err(format!(
                "cpu utilization {} out of range",
                self.cpu_utilization
            ));
        }
        if !(0.0..=1.0 + 1e-9).contains(&self.io_utilization) {
            return Err(format!(
                "io utilization {} out of range",
                self.io_utilization
            ));
        }
        Ok(())
    }
}
