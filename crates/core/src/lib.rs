//! # lockgran-core — the paper's model
//!
//! The closed-system simulation model of **Dandamudi & Au, "Locking
//! Granularity in Multiprocessor Database Systems" (ICDE 1991)**: a fixed
//! multiprogramming level of `ntrans` transactions cycles through a
//! shared-nothing machine of `npros` processors (each with a private CPU
//! and disk), guarded by `ltot` physical granule locks acquired with a
//! conservative (pre-declaration) protocol.
//!
//! * [`config`] — every input parameter of the paper's Table 1, plus the
//!   sweep dimensions of §3 (placement, partitioning, conflict model).
//! * [`conflict`] — the [`ConcurrencyControl`] trait (conflict decisions
//!   plus declared-access sampling and protocol statistics) and the
//!   paper's probabilistic Ries–Stonebraker implementation of it.
//! * [`explicit`] — an alternative conflict model backed by a *real* lock
//!   table ([`lockgran_lockmgr`]), used to validate the probabilistic
//!   approximation.
//! * [`hierarchical`] — Gray's multigranularity protocol (database → area
//!   → granule with IS/IX intention locks and lock escalation) as a third
//!   conflict model, the production shape of the granularity trade-off.
//! * [`twophase`] — incremental (claim-as-needed) two-phase locking with
//!   waits-for deadlock detection and youngest-victim abort as a fourth
//!   conflict model, re-examining the Ries & Stonebraker claim the paper
//!   leans on.
//! * [`transaction`] — per-transaction runtime state (`NU_i`, `LU_i`,
//!   `PU_i`, fork/join bookkeeping).
//! * [`system`] — the event-driven model itself: lock phase shared across
//!   processors with preemptive priority, sub-transaction fork/join over
//!   per-processor I/O→CPU FCFS stages, block/wake on conflicts.
//! * [`metrics`] — the paper's output parameters (`throughput`, response
//!   time, `usefulcpus`, `usefulios`, `lockcpus`, `lockios`, …) plus
//!   extended diagnostics.
//! * [`sim`] — the entry point: [`run`](sim::run) a [`ModelConfig`] to a
//!   [`RunMetrics`].
//!
//! ## Quickstart
//!
//! ```
//! use lockgran_core::{ModelConfig, sim};
//!
//! // Paper Table 1 defaults, 10 processors, 100 granule locks.
//! let cfg = ModelConfig::table1()
//!     .with_npros(10)
//!     .with_ltot(100)
//!     .with_tmax(500.0); // short run for the doc test
//! let m = sim::run(&cfg, 42);
//! assert!(m.throughput > 0.0);
//! assert!(m.response_time > 0.0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod conflict;
pub mod explicit;
pub mod hierarchical;
pub mod metrics;
pub mod sim;
pub mod system;
pub mod timeline;
pub mod trace;
pub mod transaction;
pub mod twophase;

pub use config::{
    ConflictMode, HierarchySpec, LockDistribution, ModelConfig, QueueDiscipline, ServiceVariability,
};
pub use conflict::{
    build_concurrency_control, AccessSampler, CcStats, ConcurrencyControl, ConflictDecision,
    ProbabilisticConflict,
};
pub use explicit::ExplicitConflict;
pub use hierarchical::HierarchicalConflict;
pub use metrics::RunMetrics;
pub use sim::RunArena;
pub use timeline::{TimelineCollector, TimelinePoint};
pub use trace::{NullTracer, TraceEvent, Tracer, VecTracer};
pub use transaction::{Transaction, TxnPhase};
pub use twophase::TwoPhaseConflict;
