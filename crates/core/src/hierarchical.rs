//! Hierarchical (multigranularity) conflict model with intention locks
//! and lock escalation.
//!
//! The paper sweeps a *flat* granule axis (`ltot`); production systems
//! resolve the same trade-off with Gray's multigranularity protocol: a
//! database → area → granule tree where leaf S/X locks are shielded by
//! IS/IX intention locks on their ancestors, and a transaction that
//! declares too many granules under one area trades them for a single
//! area lock (escalation). This model runs the paper's conservative
//! (predeclaration) protocol over exactly that machinery:
//!
//! 1. [`register_access`](ConcurrencyControl::register_access) samples
//!    the transaction's concrete granule set (same draws as the explicit
//!    model, so the two modes are comparable point for point).
//! 2. At each attempt the declared leaves pass through
//!    [`lockgran_lockmgr::escalate_predeclared`]: areas covering at least
//!    `escalation_threshold` declared granules are requested whole.
//! 3. The surviving targets are requested in `X` with `IX` intention
//!    locks on every ancestor, as one all-or-nothing conservative
//!    request (so deadlock remains impossible and the first conflicting
//!    holder — in flat-id order: database, areas, granules — blocks the
//!    transaction, exactly like the explicit model's semantics).
//!
//! With `escalation_threshold = None` intention locks never conflict
//! with each other (every non-leaf lock is `IX`), so the admitted
//! schedules are *identical* to [`crate::explicit::ExplicitConflict`] —
//! the protocol only adds intent-chain overhead. With
//! `escalation_threshold = Some(1)` every non-empty request collapses to
//! an `X` lock on the root: whole-database locking, the paper's
//! `ltot = 1` extreme, regardless of the configured `ltot`.

use lockgran_lockmgr::{
    escalate_predeclared_into, ConservativeOutcome, ConservativeScheduler, EscalationPolicy,
    GranuleId, GranuleTree, LockMode, NodeId, TxnId,
};
use lockgran_sim::{DetMap, SimRng};
use lockgran_workload::HierarchyMap;

use crate::config::{ConflictMode, HierarchySpec, ModelConfig};
use crate::conflict::{AccessSampler, CcStats, ConcurrencyControl, ConflictDecision, TxnSerial};

/// Conflict model running Gray's multigranularity protocol over a
/// database → area → granule tree (see module docs).
pub struct HierarchicalConflict {
    scheduler: ConservativeScheduler,
    tree: GranuleTree,
    map: HierarchyMap,
    policy: EscalationPolicy,
    sampler: AccessSampler,
    /// Granule sets of *blocked* transactions, replayed on retry so a
    /// retry contends for the same granules it failed on.
    pending_sets: DetMap<Vec<u64>>,
    /// Spare granule-set buffers recycled through `pending_sets`.
    spare_sets: Vec<Vec<u64>>,
    active: u64,
    locks_held: u64,
    /// Locks per active transaction (for `locks_held` bookkeeping; the
    /// paper's `LU` count, independent of escalation).
    active_locks: DetMap<u64>,
    stats: CcStats,
    /// Reusable request buffer (leaf → target → full intent-chain
    /// request), so steady-state attempts do not allocate it anew.
    request_buf: Vec<(GranuleId, LockMode)>,
    /// Scratch: declared leaves of the current attempt.
    leaves_buf: Vec<NodeId>,
    /// Scratch: escalation survivors of the current attempt.
    targets_buf: Vec<(NodeId, LockMode)>,
    /// Scratch: escalation working sets (see `escalate_predeclared_into`).
    current_buf: Vec<NodeId>,
    promoted_buf: Vec<NodeId>,
    /// Scratch: wake list of the current release.
    woken_scratch: Vec<TxnId>,
}

impl HierarchicalConflict {
    /// Build the model for the given declared-access sampler and
    /// hierarchy parameters.
    ///
    /// # Panics
    /// Panics if `sampler.ltot == 0` or `spec.areas == 0` (validated
    /// configurations never are).
    pub fn new(sampler: AccessSampler, spec: HierarchySpec) -> Self {
        let map = HierarchyMap::new(sampler.ltot, spec.areas);
        let tree = GranuleTree::new(&map.fanouts());
        let policy = Self::policy_of(&spec);
        HierarchicalConflict {
            scheduler: ConservativeScheduler::new(),
            tree,
            map,
            policy,
            sampler,
            pending_sets: DetMap::new(),
            spare_sets: Vec::new(),
            active: 0,
            locks_held: 0,
            active_locks: DetMap::new(),
            stats: CcStats::default(),
            request_buf: Vec::new(),
            leaves_buf: Vec::new(),
            targets_buf: Vec::new(),
            current_buf: Vec::new(),
            promoted_buf: Vec::new(),
            woken_scratch: Vec::new(),
        }
    }

    fn policy_of(spec: &HierarchySpec) -> EscalationPolicy {
        match spec.escalation_threshold {
            None => EscalationPolicy::never(),
            Some(t) => EscalationPolicy {
                threshold: usize::try_from(t).unwrap_or(usize::MAX),
            },
        }
    }

    /// The granule → area mapping in effect (diagnostics).
    pub fn map(&self) -> HierarchyMap {
        self.map
    }

    /// Access the underlying scheduler (diagnostics).
    pub fn scheduler(&self) -> &ConservativeScheduler {
        &self.scheduler
    }
}

impl ConcurrencyControl for HierarchicalConflict {
    fn register_access(&mut self, rng: &mut SimRng, entities: u64, granules: &mut Vec<u64>) {
        self.sampler.sample_into(rng, entities, granules);
    }

    fn try_acquire(
        &mut self,
        txn: TxnSerial,
        locks: u64,
        granules: &[u64],
        _rng: &mut SimRng,
    ) -> ConflictDecision {
        // A retry reuses the granule set from the failed attempt; a first
        // attempt uses (and remembers) the set passed in. Set buffers
        // cycle through the spare pool so the steady state allocates
        // nothing.
        let set: Vec<u64> = match self.pending_sets.remove(txn) {
            Some(saved) => saved,
            None => {
                let mut buf = self.spare_sets.pop().unwrap_or_default();
                buf.clear();
                buf.extend_from_slice(granules);
                buf
            }
        };
        debug_assert_eq!(
            set.len() as u64,
            locks,
            "granule set size disagrees with lock count"
        );
        // The paper locks exclusively; map each flat granule id to its
        // leaf node and run escalation over the predeclared set.
        let leaf = self.tree.leaf_level();
        self.leaves_buf.clear();
        self.leaves_buf.extend(set.iter().map(|&g| NodeId {
            level: leaf,
            index: g,
        }));
        let escalations = escalate_predeclared_into(
            &self.tree,
            self.policy,
            &self.leaves_buf,
            LockMode::X,
            &mut self.targets_buf,
            &mut self.current_buf,
            &mut self.promoted_buf,
        );
        // Full request: intention locks on every ancestor of every
        // target, then the target itself. `request_all` sorts by flat id
        // and merges duplicates by supremum, so the probe walks the tree
        // root-first and the first conflicting holder is deterministic.
        let mut request = std::mem::take(&mut self.request_buf);
        request.clear();
        for (node, mode) in &self.targets_buf {
            for a in self.tree.ancestors(*node) {
                request.push((self.tree.flat_id(a), mode.required_ancestor_intent()));
            }
            request.push((self.tree.flat_id(*node), *mode));
        }
        let outcome = self.scheduler.request_all(TxnId(txn), &request);
        self.request_buf = request;
        match outcome {
            ConservativeOutcome::Granted => {
                self.active += 1;
                self.locks_held += locks;
                self.active_locks.insert(txn, locks);
                self.spare_sets.push(set);
                self.stats.escalations += escalations;
                // Count the intention locks actually granted (after the
                // supremum merge) by inspecting the holdings.
                let table = self.scheduler.table();
                self.stats.intent_locks += self
                    .scheduler
                    .holdings(TxnId(txn))
                    .filter(|&g| {
                        matches!(
                            table.held_mode(TxnId(txn), g),
                            Some(LockMode::IS | LockMode::IX | LockMode::SIX)
                        )
                    })
                    .count() as u64;
                ConflictDecision::Granted
            }
            ConservativeOutcome::Blocked { blocker } => {
                self.pending_sets.insert(txn, set);
                ConflictDecision::BlockedBy(blocker.0)
            }
        }
    }

    fn release(&mut self, txn: TxnSerial, woken: &mut Vec<TxnSerial>) {
        let locks = self
            .active_locks
            .remove(txn)
            // Protocol invariant: the system releases only transactions
            // it admitted.
            .unwrap_or_else(|| panic!("release of inactive transaction {txn}"));
        self.active -= 1;
        self.locks_held -= locks;
        let mut retry = std::mem::take(&mut self.woken_scratch);
        self.scheduler.release_into(TxnId(txn), &mut retry);
        woken.extend(retry.iter().map(|t| t.0));
        self.woken_scratch = retry;
    }

    fn active_count(&self) -> usize {
        self.active as usize
    }

    fn locks_held(&self) -> u64 {
        self.locks_held
    }

    fn stats(&self) -> CcStats {
        self.stats
    }

    fn reset(&mut self, cfg: &ModelConfig) -> bool {
        if cfg.conflict != ConflictMode::Hierarchical {
            return false;
        }
        let spec = cfg.hierarchy_spec();
        let sampler = AccessSampler::from_config(cfg);
        // The tree and granule → area map are pure functions of
        // `(ltot, areas)`: identical geometry means identical structures,
        // so the run keeps them (the lock-table reuse the sweep is after).
        if sampler.ltot != self.sampler.ltot || spec.areas != self.map.areas() {
            self.map = HierarchyMap::new(sampler.ltot, spec.areas);
            self.tree = GranuleTree::new(&self.map.fanouts());
        }
        self.policy = Self::policy_of(&spec);
        self.sampler = sampler;
        // Reset-equals-fresh throughout: the scheduler, the slot maps and
        // the pooled set buffers all keep their allocations.
        self.scheduler.reset();
        // Recycle pending set buffers before dropping the map entries.
        while let Some(key) = self.pending_sets.iter().next().map(|(k, _)| k) {
            if let Some(mut set) = self.pending_sets.remove(key) {
                set.clear();
                self.spare_sets.push(set);
            }
        }
        self.pending_sets.clear();
        self.active = 0;
        self.locks_held = 0;
        self.active_locks.clear();
        self.stats = CcStats::default();
        // The scratch buffers are cleared at each use; keeping their
        // capacity is the point.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use lockgran_workload::Placement;

    fn sampler(ltot: u64) -> AccessSampler {
        AccessSampler {
            placement: Placement::Best,
            ltot,
            dbsize: 5000,
            hot_spot: None,
        }
    }

    fn model(ltot: u64, areas: u64, threshold: Option<u64>) -> HierarchicalConflict {
        HierarchicalConflict::new(
            sampler(ltot),
            HierarchySpec {
                areas,
                escalation_threshold: threshold,
            },
        )
    }

    fn rng() -> SimRng {
        SimRng::new(11)
    }

    #[test]
    fn disjoint_areas_admit_concurrently() {
        // 100 granules in 10 areas of 10; transactions in different areas
        // only share IX intention locks — compatible.
        let mut m = model(100, 10, None);
        let mut r = rng();
        assert_eq!(
            m.try_acquire(1, 3, &[0, 1, 2], &mut r),
            ConflictDecision::Granted
        );
        assert_eq!(
            m.try_acquire(2, 2, &[55, 56], &mut r),
            ConflictDecision::Granted
        );
        assert_eq!(m.active_count(), 2);
        assert_eq!(m.locks_held(), 5);
        // Each grant carries database + area intention locks.
        assert_eq!(m.stats().intent_locks, 4);
        assert_eq!(m.stats().escalations, 0);
    }

    #[test]
    fn overlapping_leaves_block_like_explicit() {
        let mut m = model(100, 10, None);
        let mut r = rng();
        let _ = m.try_acquire(1, 2, &[7, 8], &mut r);
        assert_eq!(
            m.try_acquire(2, 1, &[8], &mut r),
            ConflictDecision::BlockedBy(1)
        );
        let mut woken = Vec::new();
        m.release(1, &mut woken);
        assert_eq!(woken, vec![2]);
        // Retry with an empty slice — the saved set must be replayed.
        assert_eq!(m.try_acquire(2, 1, &[], &mut r), ConflictDecision::Granted);
    }

    #[test]
    fn threshold_one_serializes_everything() {
        // Immediate escalation: every non-empty request is an X on the
        // database root, so even disjoint granule sets serialize.
        let mut m = model(100, 10, Some(1));
        let mut r = rng();
        assert_eq!(m.try_acquire(1, 1, &[0], &mut r), ConflictDecision::Granted);
        assert_eq!(
            m.try_acquire(2, 1, &[99], &mut r),
            ConflictDecision::BlockedBy(1)
        );
        assert!(m.stats().escalations > 0);
        assert_eq!(m.stats().intent_locks, 0, "a root X needs no intents");
    }

    #[test]
    fn escalation_covers_undeclared_granules_in_the_area() {
        // Area size 10, threshold 3: declaring granules 0..3 escalates to
        // the whole area, so granule 9 (undeclared) is covered too.
        let mut m = model(100, 10, Some(3));
        let mut r = rng();
        assert_eq!(
            m.try_acquire(1, 3, &[0, 1, 2], &mut r),
            ConflictDecision::Granted
        );
        assert_eq!(m.stats().escalations, 1);
        assert_eq!(
            m.try_acquire(2, 1, &[9], &mut r),
            ConflictDecision::BlockedBy(1),
            "area lock must cover undeclared granule 9"
        );
        // A different area stays available.
        assert_eq!(
            m.try_acquire(3, 1, &[10], &mut r),
            ConflictDecision::Granted
        );
    }

    #[test]
    fn never_escalating_matches_explicit_decisions() {
        use crate::explicit::ExplicitConflict;
        // Same request stream through both models: with threshold = None
        // intention locks never conflict, so every decision (and wake
        // order) must agree with the flat explicit table.
        let sets: &[&[u64]] = &[
            &[0, 1, 2],
            &[2, 3],
            &[50, 51],
            &[1],
            &[99],
            &[10, 20, 30, 40],
        ];
        let mut h = model(100, 16, None);
        let mut e = ExplicitConflict::new();
        let mut r1 = rng();
        let mut r2 = rng();
        for (i, set) in sets.iter().enumerate() {
            let txn = i as u64;
            let dh = h.try_acquire(txn, set.len() as u64, set, &mut r1);
            let de = e.try_acquire(txn, set.len() as u64, set, &mut r2);
            assert_eq!(dh, de, "decision diverged for txn {txn}");
        }
        // Drain the admitted transactions; wake lists must agree too.
        for txn in [0u64, 2, 5] {
            let mut wh = Vec::new();
            let mut we = Vec::new();
            h.release(txn, &mut wh);
            e.release(txn, &mut we);
            assert_eq!(wh, we, "wake list diverged releasing txn {txn}");
        }
        assert_eq!(h.stats().escalations, 0);
    }

    #[test]
    fn empty_set_admits_without_locks() {
        let mut m = model(100, 10, Some(1));
        let mut r = rng();
        assert_eq!(m.try_acquire(1, 0, &[], &mut r), ConflictDecision::Granted);
        assert_eq!(m.locks_held(), 0);
        // Even with threshold 1, a zero-lock transaction locks nothing —
        // a second one is admitted concurrently.
        assert_eq!(m.try_acquire(2, 0, &[], &mut r), ConflictDecision::Granted);
    }

    #[test]
    fn factory_uses_config_spec() {
        let cfg = ModelConfig::table1()
            .with_conflict(crate::config::ConflictMode::Hierarchical)
            .with_hierarchy(Some(HierarchySpec {
                areas: 4,
                escalation_threshold: Some(2),
            }));
        let m = HierarchicalConflict::new(AccessSampler::from_config(&cfg), cfg.hierarchy_spec());
        assert_eq!(m.map().areas(), 4);
        assert_eq!(m.map().per_area(), 25);
    }

    #[test]
    #[should_panic(expected = "release of inactive")]
    fn release_of_unknown_txn_panics() {
        let mut m = model(10, 2, None);
        m.release(5, &mut Vec::new());
    }
}
