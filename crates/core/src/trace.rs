//! Structured event tracing.
//!
//! A [`Tracer`] observes the model's protocol-level transitions —
//! arrivals, lock requests, grants, denials, wake-ups, sub-transaction
//! stages, completions. Tracing is opt-in (the default [`NullTracer`]
//! compiles to nothing) and is used by the protocol-order tests to verify
//! the paper's lifecycle: *request → (denied → blocked → woken →
//! request)* … *→ granted → I/O → CPU → complete*.

use lockgran_sim::Time;

/// One protocol-level transition of a transaction.
// lint:exhaustive(TraceEvent): matches must name variants, not hide them
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// Entered the system (fresh transaction).
    Arrived {
        /// Transaction serial.
        serial: u64,
    },
    /// Began a lock request attempt (overhead charging starts).
    LockRequested {
        /// Transaction serial.
        serial: u64,
        /// Attempt number (1 = first).
        attempt: u32,
    },
    /// All locks granted; the transaction becomes active.
    Granted {
        /// Transaction serial.
        serial: u64,
    },
    /// Request denied; blocked on `blocker`.
    Denied {
        /// Transaction serial.
        serial: u64,
        /// The active transaction it waits for.
        blocker: u64,
    },
    /// Woken by its blocker's completion; will re-request.
    Woken {
        /// Transaction serial.
        serial: u64,
    },
    /// A sub-transaction finished its I/O stage on `proc`.
    SubIoDone {
        /// Transaction serial.
        serial: u64,
        /// Processor index.
        proc: u32,
    },
    /// A sub-transaction finished its CPU stage on `proc`.
    SubCpuDone {
        /// Transaction serial.
        serial: u64,
        /// Processor index.
        proc: u32,
    },
    /// All sub-transactions joined; locks released.
    Completed {
        /// Transaction serial.
        serial: u64,
    },
    /// A running transaction was aborted (a processor hosting one of its
    /// sub-transactions failed); its locks were released and it will
    /// re-request.
    Aborted {
        /// Transaction serial.
        serial: u64,
    },
    /// A transaction still in its lock phase was aborted as the victim of
    /// a 2PL deadlock cycle (incremental two-phase locking only): its
    /// partial locks were released and it will replay its lock phase.
    /// Unlike [`TraceEvent::Aborted`], the victim never held a full grant.
    DeadlockAborted {
        /// Transaction serial.
        serial: u64,
    },
    /// A processor failed; its CPU and disk stall until repair.
    Failed {
        /// Processor index.
        proc: u32,
    },
    /// A failed processor came back; stalled work resumes.
    Repaired {
        /// Processor index.
        proc: u32,
    },
}

impl TraceEvent {
    /// The transaction this event belongs to, if any (`Failed` and
    /// `Repaired` are machine-level events with no owning transaction).
    pub fn serial(&self) -> Option<u64> {
        match *self {
            TraceEvent::Arrived { serial }
            | TraceEvent::LockRequested { serial, .. }
            | TraceEvent::Granted { serial }
            | TraceEvent::Denied { serial, .. }
            | TraceEvent::Woken { serial }
            | TraceEvent::SubIoDone { serial, .. }
            | TraceEvent::SubCpuDone { serial, .. }
            | TraceEvent::Completed { serial }
            | TraceEvent::Aborted { serial }
            | TraceEvent::DeadlockAborted { serial } => Some(serial),
            TraceEvent::Failed { .. } | TraceEvent::Repaired { .. } => None,
        }
    }
}

/// Observer of protocol transitions.
pub trait Tracer {
    /// Record one event at simulated time `now`.
    fn record(&mut self, now: Time, event: TraceEvent);
}

/// The default tracer: drops everything (zero cost after inlining).
#[derive(Default, Debug, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    #[inline]
    fn record(&mut self, _now: Time, _event: TraceEvent) {}
}

/// Keeps every event in memory (tests, debugging, timeline dumps).
#[derive(Default, Debug)]
pub struct VecTracer {
    /// The recorded `(time, event)` stream, in simulation order.
    pub events: Vec<(Time, TraceEvent)>,
}

impl Tracer for VecTracer {
    fn record(&mut self, now: Time, event: TraceEvent) {
        self.events.push((now, event));
    }
}

impl VecTracer {
    /// Events of one transaction, in order.
    pub fn of(&self, serial: u64) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|(_, e)| e.serial() == Some(serial))
            .map(|(_, e)| e)
            .collect()
    }

    /// Validate the lifecycle of every *completed* transaction in the
    /// trace against the paper's protocol. Returns the first violation.
    pub fn check_protocol(&self) -> Result<(), String> {
        use TraceEvent::*;
        let completed: Vec<u64> = self
            .events
            .iter()
            .filter_map(|(_, e)| match e {
                Completed { serial } => Some(*serial),
                _ => None,
            })
            .collect();
        for serial in completed {
            let evs = self.of(serial);
            // 1. Starts with arrival, ends with completion.
            if !matches!(evs.first(), Some(Arrived { .. })) {
                return Err(format!("txn {serial}: does not start with Arrived"));
            }
            if !matches!(evs.last(), Some(Completed { .. })) {
                return Err(format!("txn {serial}: does not end with Completed"));
            }
            // 2. Grant/abort accounting: each abort forces a re-execution,
            //    so a completed transaction has exactly `aborts + 1`
            //    grants. Every denial is followed by a wake then a new
            //    request; attempts number consecutively. Resource work is
            //    only legal while holding locks (between a grant and its
            //    completion/abort), and within each execution cycle the
            //    CPU stage on a processor comes strictly after its I/O
            //    stage.
            let mut granted = 0u32;
            let mut aborted = 0u32;
            let mut expect_attempt = 1;
            let mut last_was_denied = false;
            let mut holding = false;
            let mut io_procs = Vec::new();
            for e in &evs {
                match e {
                    LockRequested { attempt, .. } => {
                        if *attempt != expect_attempt {
                            return Err(format!(
                                "txn {serial}: attempt {attempt}, expected {expect_attempt}"
                            ));
                        }
                        expect_attempt += 1;
                    }
                    Granted { .. } => {
                        granted += 1;
                        last_was_denied = false;
                        holding = true;
                        io_procs.clear();
                    }
                    Denied { .. } => last_was_denied = true,
                    Woken { .. } => {
                        if !last_was_denied {
                            return Err(format!("txn {serial}: woken without denial"));
                        }
                        last_was_denied = false;
                    }
                    Aborted { .. } => {
                        if !holding {
                            return Err(format!("txn {serial}: aborted without holding locks"));
                        }
                        aborted += 1;
                        holding = false;
                        last_was_denied = false;
                        io_procs.clear();
                    }
                    DeadlockAborted { .. } => {
                        // A deadlock victim was still acquiring: it never
                        // held a full grant, so this neither counts as an
                        // execution abort nor requires holding locks.
                        if holding {
                            return Err(format!(
                                "txn {serial}: deadlock abort while holding a full grant"
                            ));
                        }
                        last_was_denied = false;
                        io_procs.clear();
                    }
                    SubIoDone { proc, .. } => {
                        if !holding {
                            return Err(format!("txn {serial}: resource work before grant"));
                        }
                        io_procs.push(*proc);
                    }
                    SubCpuDone { proc, .. } => {
                        if !holding {
                            return Err(format!("txn {serial}: resource work before grant"));
                        }
                        if !io_procs.contains(proc) {
                            return Err(format!(
                                "txn {serial}: CPU stage on proc {proc} before its I/O stage"
                            ));
                        }
                    }
                    Completed { .. } => {
                        if !holding {
                            return Err(format!("txn {serial}: completed without holding locks"));
                        }
                        holding = false;
                    }
                    _ => {}
                }
            }
            if granted != aborted + 1 {
                return Err(format!(
                    "txn {serial}: granted {granted} times with {aborted} aborts"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(units: f64) -> Time {
        Time::from_units(units)
    }

    #[test]
    fn vec_tracer_records_in_order() {
        let mut tr = VecTracer::default();
        tr.record(t(0.0), TraceEvent::Arrived { serial: 1 });
        tr.record(
            t(1.0),
            TraceEvent::LockRequested {
                serial: 1,
                attempt: 1,
            },
        );
        assert_eq!(tr.events.len(), 2);
        assert_eq!(tr.of(1).len(), 2);
        assert_eq!(tr.of(2).len(), 0);
    }

    #[test]
    fn protocol_accepts_clean_lifecycle() {
        use TraceEvent::*;
        let mut tr = VecTracer::default();
        for (time, e) in [
            (0.0, Arrived { serial: 1 }),
            (
                0.0,
                LockRequested {
                    serial: 1,
                    attempt: 1,
                },
            ),
            (
                0.5,
                Denied {
                    serial: 1,
                    blocker: 9,
                },
            ),
            (2.0, Woken { serial: 1 }),
            (
                2.0,
                LockRequested {
                    serial: 1,
                    attempt: 2,
                },
            ),
            (2.5, Granted { serial: 1 }),
            (3.0, SubIoDone { serial: 1, proc: 0 }),
            (3.5, SubCpuDone { serial: 1, proc: 0 }),
            (3.5, Completed { serial: 1 }),
        ] {
            tr.record(t(time), e);
        }
        tr.check_protocol().unwrap();
    }

    #[test]
    fn protocol_rejects_double_grant() {
        use TraceEvent::*;
        let mut tr = VecTracer::default();
        for e in [
            Arrived { serial: 1 },
            LockRequested {
                serial: 1,
                attempt: 1,
            },
            Granted { serial: 1 },
            Granted { serial: 1 },
            Completed { serial: 1 },
        ] {
            tr.record(t(0.0), e);
        }
        assert!(tr.check_protocol().unwrap_err().contains("granted 2 times"));
    }

    #[test]
    fn protocol_rejects_cpu_before_io() {
        use TraceEvent::*;
        let mut tr = VecTracer::default();
        for e in [
            Arrived { serial: 1 },
            LockRequested {
                serial: 1,
                attempt: 1,
            },
            Granted { serial: 1 },
            SubCpuDone { serial: 1, proc: 3 },
            Completed { serial: 1 },
        ] {
            tr.record(t(0.0), e);
        }
        assert!(tr
            .check_protocol()
            .unwrap_err()
            .contains("before its I/O stage"));
    }

    #[test]
    fn protocol_rejects_work_before_grant() {
        use TraceEvent::*;
        let mut tr = VecTracer::default();
        for e in [
            Arrived { serial: 1 },
            LockRequested {
                serial: 1,
                attempt: 1,
            },
            SubIoDone { serial: 1, proc: 0 },
            Granted { serial: 1 },
            Completed { serial: 1 },
        ] {
            tr.record(t(0.0), e);
        }
        assert!(tr
            .check_protocol()
            .unwrap_err()
            .contains("resource work before grant"));
    }

    #[test]
    fn protocol_rejects_wake_without_denial() {
        use TraceEvent::*;
        let mut tr = VecTracer::default();
        for e in [
            Arrived { serial: 1 },
            LockRequested {
                serial: 1,
                attempt: 1,
            },
            Woken { serial: 1 },
            Granted { serial: 1 },
            Completed { serial: 1 },
        ] {
            tr.record(t(0.0), e);
        }
        assert!(tr
            .check_protocol()
            .unwrap_err()
            .contains("woken without denial"));
    }

    #[test]
    fn protocol_accepts_abort_and_reexecution() {
        use TraceEvent::*;
        let mut tr = VecTracer::default();
        for e in [
            Arrived { serial: 1 },
            LockRequested {
                serial: 1,
                attempt: 1,
            },
            Granted { serial: 1 },
            SubIoDone { serial: 1, proc: 0 },
            Failed { proc: 1 },
            Aborted { serial: 1 },
            LockRequested {
                serial: 1,
                attempt: 2,
            },
            Granted { serial: 1 },
            SubIoDone { serial: 1, proc: 0 },
            SubCpuDone { serial: 1, proc: 0 },
            Repaired { proc: 1 },
            Completed { serial: 1 },
        ] {
            tr.record(t(0.0), e);
        }
        tr.check_protocol().unwrap();
    }

    #[test]
    fn protocol_rejects_work_between_abort_and_regrant() {
        use TraceEvent::*;
        let mut tr = VecTracer::default();
        for e in [
            Arrived { serial: 1 },
            LockRequested {
                serial: 1,
                attempt: 1,
            },
            Granted { serial: 1 },
            Aborted { serial: 1 },
            SubIoDone { serial: 1, proc: 0 },
            LockRequested {
                serial: 1,
                attempt: 2,
            },
            Granted { serial: 1 },
            SubIoDone { serial: 1, proc: 0 },
            SubCpuDone { serial: 1, proc: 0 },
            Completed { serial: 1 },
        ] {
            tr.record(t(0.0), e);
        }
        assert!(tr
            .check_protocol()
            .unwrap_err()
            .contains("resource work before grant"));
    }

    #[test]
    fn protocol_requires_cpu_after_io_per_execution_cycle() {
        use TraceEvent::*;
        let mut tr = VecTracer::default();
        // The I/O stage from the first (aborted) execution must not
        // satisfy the CPU-after-I/O rule of the second execution.
        for e in [
            Arrived { serial: 1 },
            LockRequested {
                serial: 1,
                attempt: 1,
            },
            Granted { serial: 1 },
            SubIoDone { serial: 1, proc: 0 },
            Aborted { serial: 1 },
            LockRequested {
                serial: 1,
                attempt: 2,
            },
            Granted { serial: 1 },
            SubCpuDone { serial: 1, proc: 0 },
            Completed { serial: 1 },
        ] {
            tr.record(t(0.0), e);
        }
        assert!(tr
            .check_protocol()
            .unwrap_err()
            .contains("before its I/O stage"));
    }

    #[test]
    fn machine_events_have_no_serial() {
        assert_eq!(TraceEvent::Failed { proc: 3 }.serial(), None);
        assert_eq!(TraceEvent::Repaired { proc: 3 }.serial(), None);
        assert_eq!(TraceEvent::Aborted { serial: 9 }.serial(), Some(9));
        assert_eq!(TraceEvent::DeadlockAborted { serial: 9 }.serial(), Some(9));
    }

    #[test]
    fn protocol_accepts_deadlock_abort_and_replay() {
        use TraceEvent::*;
        let mut tr = VecTracer::default();
        // Victim lifecycle: denied, then aborted while blocked (instead of
        // woken), then a full replay of the lock phase. Exactly one grant.
        for e in [
            Arrived { serial: 1 },
            LockRequested {
                serial: 1,
                attempt: 1,
            },
            Denied {
                serial: 1,
                blocker: 9,
            },
            DeadlockAborted { serial: 1 },
            LockRequested {
                serial: 1,
                attempt: 2,
            },
            Granted { serial: 1 },
            SubIoDone { serial: 1, proc: 0 },
            SubCpuDone { serial: 1, proc: 0 },
            Completed { serial: 1 },
        ] {
            tr.record(t(0.0), e);
        }
        tr.check_protocol().unwrap();
    }

    #[test]
    fn protocol_accepts_requester_self_abort_without_denial() {
        use TraceEvent::*;
        let mut tr = VecTracer::default();
        // The requester itself can be the victim mid-attempt: the abort
        // arrives with no preceding denial and replays immediately.
        for e in [
            Arrived { serial: 1 },
            LockRequested {
                serial: 1,
                attempt: 1,
            },
            DeadlockAborted { serial: 1 },
            LockRequested {
                serial: 1,
                attempt: 2,
            },
            Granted { serial: 1 },
            SubIoDone { serial: 1, proc: 0 },
            SubCpuDone { serial: 1, proc: 0 },
            Completed { serial: 1 },
        ] {
            tr.record(t(0.0), e);
        }
        tr.check_protocol().unwrap();
    }

    #[test]
    fn protocol_rejects_deadlock_abort_while_holding() {
        use TraceEvent::*;
        let mut tr = VecTracer::default();
        for e in [
            Arrived { serial: 1 },
            LockRequested {
                serial: 1,
                attempt: 1,
            },
            Granted { serial: 1 },
            DeadlockAborted { serial: 1 },
            LockRequested {
                serial: 1,
                attempt: 2,
            },
            Granted { serial: 1 },
            Completed { serial: 1 },
        ] {
            tr.record(t(0.0), e);
        }
        assert!(tr
            .check_protocol()
            .unwrap_err()
            .contains("deadlock abort while holding"));
    }

    #[test]
    fn protocol_rejects_wake_after_deadlock_abort() {
        use TraceEvent::*;
        let mut tr = VecTracer::default();
        // The abort cancels the pending wait: a Woken with no fresh
        // denial afterwards is a protocol violation.
        for e in [
            Arrived { serial: 1 },
            LockRequested {
                serial: 1,
                attempt: 1,
            },
            Denied {
                serial: 1,
                blocker: 9,
            },
            DeadlockAborted { serial: 1 },
            Woken { serial: 1 },
            Granted { serial: 1 },
            Completed { serial: 1 },
        ] {
            tr.record(t(0.0), e);
        }
        assert!(tr
            .check_protocol()
            .unwrap_err()
            .contains("woken without denial"));
    }

    #[test]
    fn incomplete_transactions_are_ignored() {
        use TraceEvent::*;
        let mut tr = VecTracer::default();
        tr.record(t(0.0), Arrived { serial: 7 });
        tr.record(
            t(0.0),
            LockRequested {
                serial: 7,
                attempt: 1,
            },
        );
        // Never completes: no protocol judgement is made.
        tr.check_protocol().unwrap();
    }
}
