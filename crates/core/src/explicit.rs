//! Explicit lock-table conflict model (validation of the paper's
//! approximation).
//!
//! Instead of the probabilistic partition draw, this model materializes
//! each transaction's granule set (sampled to match the configured
//! placement model — see [`lockgran_workload::access`]) and runs the
//! conservative protocol against a real lock table
//! ([`lockgran_lockmgr::ConservativeScheduler`]). Same external contract
//! as [`crate::conflict::ProbabilisticConflict`]; the difference is *who*
//! conflicts with whom: here conflicts are exact set intersections rather
//! than proportional coin flips.
//!
//! The paper locks granules exclusively (any overlap blocks), so granule
//! sets are requested in mode `X`.

use lockgran_lockmgr::{ConservativeOutcome, ConservativeScheduler, GranuleId, LockMode, TxnId};
use lockgran_sim::{DetMap, SimRng};

use crate::config::{ConflictMode, ModelConfig};
use crate::conflict::{AccessSampler, ConcurrencyControl, ConflictDecision, TxnSerial};

/// Conflict model backed by a real lock table.
pub struct ExplicitConflict {
    scheduler: ConservativeScheduler,
    /// Granule sets of *blocked* transactions, replayed on retry so a
    /// retry contends for the same granules it failed on.
    pending_sets: DetMap<Vec<u64>>,
    /// Spare granule-set buffers recycled through `pending_sets`.
    spare_sets: Vec<Vec<u64>>,
    active: u64,
    locks_held: u64,
    /// Locks per active transaction (for `locks_held` bookkeeping).
    active_locks: DetMap<u64>,
    /// Declared-access sampler (required for `register_access`; unit
    /// tests that feed granule sets directly may leave it unset).
    sampler: Option<AccessSampler>,
    /// Scratch: the (granule, mode) request of the current attempt.
    request_scratch: Vec<(GranuleId, LockMode)>,
    /// Scratch: wake list of the current release.
    woken_scratch: Vec<TxnId>,
}

impl Default for ExplicitConflict {
    fn default() -> Self {
        Self::new()
    }
}

impl ExplicitConflict {
    /// An empty model.
    pub fn new() -> Self {
        ExplicitConflict {
            scheduler: ConservativeScheduler::new(),
            pending_sets: DetMap::new(),
            spare_sets: Vec::new(),
            active: 0,
            locks_held: 0,
            active_locks: DetMap::new(),
            sampler: None,
            request_scratch: Vec::new(),
            woken_scratch: Vec::new(),
        }
    }

    /// Attach the declared-access sampler used by
    /// [`ConcurrencyControl::register_access`].
    #[must_use]
    pub fn with_sampler(mut self, sampler: AccessSampler) -> Self {
        self.sampler = Some(sampler);
        self
    }

    /// Access the underlying scheduler (diagnostics).
    pub fn scheduler(&self) -> &ConservativeScheduler {
        &self.scheduler
    }
}

impl ConcurrencyControl for ExplicitConflict {
    fn register_access(&mut self, rng: &mut SimRng, entities: u64, granules: &mut Vec<u64>) {
        self.sampler
            .as_ref()
            // lint:allow(P001): the factory always attaches a sampler;
            // calling register_access without one is a harness bug
            .expect("explicit conflict model has no access sampler")
            .sample_into(rng, entities, granules);
    }

    fn try_acquire(
        &mut self,
        txn: TxnSerial,
        locks: u64,
        granules: &[u64],
        _rng: &mut SimRng,
    ) -> ConflictDecision {
        // A retry reuses the granule set from the failed attempt; a first
        // attempt uses (and remembers) the set passed in. Set buffers
        // cycle through the spare pool so the steady state allocates
        // nothing.
        let set: Vec<u64> = match self.pending_sets.remove(txn) {
            Some(saved) => saved,
            None => {
                let mut buf = self.spare_sets.pop().unwrap_or_default();
                buf.clear();
                buf.extend_from_slice(granules);
                buf
            }
        };
        debug_assert_eq!(
            set.len() as u64,
            locks,
            "granule set size disagrees with lock count"
        );
        let mut request = std::mem::take(&mut self.request_scratch);
        request.clear();
        request.extend(set.iter().map(|&g| (GranuleId(g), LockMode::X)));
        let outcome = self.scheduler.request_all(TxnId(txn), &request);
        self.request_scratch = request;
        match outcome {
            ConservativeOutcome::Granted => {
                self.active += 1;
                self.locks_held += locks;
                self.active_locks.insert(txn, locks);
                self.spare_sets.push(set);
                ConflictDecision::Granted
            }
            ConservativeOutcome::Blocked { blocker } => {
                self.pending_sets.insert(txn, set);
                ConflictDecision::BlockedBy(blocker.0)
            }
        }
    }

    fn release(&mut self, txn: TxnSerial, woken: &mut Vec<TxnSerial>) {
        let locks = self
            .active_locks
            .remove(txn)
            .unwrap_or_else(|| panic!("release of inactive transaction {txn}"));
        self.active -= 1;
        self.locks_held -= locks;
        let mut retry = std::mem::take(&mut self.woken_scratch);
        self.scheduler.release_into(TxnId(txn), &mut retry);
        woken.extend(retry.iter().map(|t| t.0));
        self.woken_scratch = retry;
    }

    fn active_count(&self) -> usize {
        self.active as usize
    }

    fn locks_held(&self) -> u64 {
        self.locks_held
    }

    fn reset(&mut self, cfg: &ModelConfig) -> bool {
        if cfg.conflict != ConflictMode::Explicit {
            return false;
        }
        // Reset-equals-fresh throughout: the scheduler, the slot maps and
        // the pooled set buffers all keep their allocations.
        self.scheduler.reset();
        // Recycle pending set buffers before dropping the map entries.
        while let Some(key) = self.pending_sets.iter().next().map(|(k, _)| k) {
            if let Some(mut set) = self.pending_sets.remove(key) {
                set.clear();
                self.spare_sets.push(set);
            }
        }
        self.pending_sets.clear();
        self.active = 0;
        self.locks_held = 0;
        self.active_locks.clear();
        self.sampler = Some(AccessSampler::from_config(cfg));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(7)
    }

    /// Collect a release's wake list (test convenience).
    fn release_vec(m: &mut impl ConcurrencyControl, txn: TxnSerial) -> Vec<TxnSerial> {
        let mut woken = Vec::new();
        m.release(txn, &mut woken);
        woken
    }

    #[test]
    fn disjoint_sets_admit_concurrently() {
        let mut m = ExplicitConflict::new();
        let mut r = rng();
        assert_eq!(
            m.try_acquire(1, 3, &[0, 1, 2], &mut r),
            ConflictDecision::Granted
        );
        assert_eq!(
            m.try_acquire(2, 2, &[5, 6], &mut r),
            ConflictDecision::Granted
        );
        assert_eq!(m.active_count(), 2);
        assert_eq!(m.locks_held(), 5);
    }

    #[test]
    fn overlapping_set_blocks_on_holder() {
        let mut m = ExplicitConflict::new();
        let mut r = rng();
        let _ = m.try_acquire(1, 3, &[0, 1, 2], &mut r);
        assert_eq!(
            m.try_acquire(2, 2, &[2, 3], &mut r),
            ConflictDecision::BlockedBy(1)
        );
        // Blocked transaction holds nothing and counts as inactive.
        assert_eq!(m.active_count(), 1);
        assert_eq!(m.locks_held(), 3);
    }

    #[test]
    fn retry_uses_saved_granule_set() {
        let mut m = ExplicitConflict::new();
        let mut r = rng();
        let _ = m.try_acquire(1, 1, &[4], &mut r);
        assert_eq!(
            m.try_acquire(2, 1, &[4], &mut r),
            ConflictDecision::BlockedBy(1)
        );
        let woken = release_vec(&mut m, 1);
        assert_eq!(woken, vec![2]);
        // Retry passes an *empty* slice — the saved set must be used.
        assert_eq!(m.try_acquire(2, 1, &[], &mut r), ConflictDecision::Granted);
        assert_eq!(m.locks_held(), 1);
    }

    #[test]
    fn release_wakes_all_dependents() {
        let mut m = ExplicitConflict::new();
        let mut r = rng();
        let _ = m.try_acquire(1, 2, &[0, 1], &mut r);
        let _ = m.try_acquire(2, 1, &[0], &mut r);
        let _ = m.try_acquire(3, 1, &[1], &mut r);
        assert_eq!(release_vec(&mut m, 1), vec![2, 3]);
        assert_eq!(m.active_count(), 0);
    }

    #[test]
    fn whole_database_lock_serializes() {
        let mut m = ExplicitConflict::new();
        let mut r = rng();
        assert_eq!(m.try_acquire(1, 1, &[0], &mut r), ConflictDecision::Granted);
        for t in 2..10 {
            assert_eq!(
                m.try_acquire(t, 1, &[0], &mut r),
                ConflictDecision::BlockedBy(1)
            );
        }
    }

    #[test]
    #[should_panic(expected = "release of inactive")]
    fn release_of_unknown_txn_panics() {
        let mut m = ExplicitConflict::new();
        m.release(5, &mut Vec::new());
    }
}
