//! The event-driven system model.
//!
//! Implements the paper's Figure 1 machinery:
//!
//! 1. Transactions arrive one time unit apart into the pending queue; a
//!    transaction leaving the pending queue issues its lock request.
//! 2. Lock request/set/release work (`LU_i · lcputime` CPU and
//!    `LU_i · liotime` I/O **per attempt**, charged even when denied) is
//!    shared by all processors ("we assume that processors share the work
//!    for locking mechanism") and **preempts** transaction work at each
//!    resource.
//! 3. When the overhead is paid, the conflict model decides: blocked
//!    transactions sit in the blocked queue, recorded against their
//!    blocker; admitted transactions split into `PU_i` sub-transactions on
//!    distinct processors, each running an I/O stage then a CPU stage
//!    (FCFS), then joining.
//! 4. A completed transaction releases its locks, wakes every transaction
//!    blocked on it (they re-issue lock requests, paying the overhead
//!    again), and is replaced by a freshly drawn transaction — the closed
//!    model keeps exactly `ntrans` transactions in the system.

use std::collections::VecDeque;

use lockgran_sim::{
    BatchMeans, Class, Completion, CompletionOutcome, Dur, Executor, Histogram, Job, JobId, Model,
    Server, SimRng, Tally, Time, TimeWeighted, Token,
};
use lockgran_workload::{FailureSpec, TransactionSpec, WorkloadGenerator};

use crate::config::{LockDistribution, ModelConfig, ServiceVariability};
use crate::conflict::{build_concurrency_control, CcStats, ConcurrencyControl, ConflictDecision};
use crate::metrics::RunMetrics;
use crate::timeline::TimelineCollector;
use crate::trace::{TraceEvent, Tracer, VecTracer};
use crate::transaction::{Transaction, TxnPhase};

/// Events of the system model.
#[derive(Debug)]
pub enum Event {
    /// A transaction arrives into the pending queue (initial staggering).
    Arrive,
    /// A CPU-server completion fired on processor `proc`.
    CpuDone {
        /// Processor index.
        proc: u32,
        /// Server token identifying the service segment.
        token: Token,
    },
    /// An I/O-server completion fired on processor `proc`.
    IoDone {
        /// Processor index.
        proc: u32,
        /// Server token identifying the service segment.
        token: Token,
    },
    /// The measurement warm-up boundary was reached.
    WarmupReached,
    /// A timeline sampling tick.
    SampleTick,
    /// Processor `proc` fails (failure extension).
    Fail {
        /// Processor index.
        proc: u32,
    },
    /// Processor `proc` comes back from repair (failure extension).
    Repair {
        /// Processor index.
        proc: u32,
    },
}

fn mk_server(preemptive: bool, discipline: crate::config::QueueDiscipline) -> Server {
    let s = if preemptive {
        Server::new()
    } else {
        Server::non_preemptive()
    };
    s.with_discipline(discipline.to_sim())
}

/// Job-id encoding: `slot * 4 + kind`, where `slot` is the transaction's
/// slab index. A completion decodes straight back to the slab slot — no
/// search, no map lookup. Slots are recycled only at completion, and a
/// completing transaction has no jobs left anywhere (every share and
/// sub-transaction joined, aborts withdraw theirs), so a recycled slot can
/// never be aliased by a stale in-flight job.
const KIND_LOCK_CPU: u64 = 0;
const KIND_LOCK_IO: u64 = 1;
const KIND_SUB_IO: u64 = 2;
const KIND_SUB_CPU: u64 = 3;

fn job_id(slot: u32, kind: u64) -> JobId {
    JobId(u64::from(slot) * 4 + kind)
}
fn decode(id: JobId) -> (u32, u64) {
    ((id.0 / 4) as u32, id.0 % 4)
}

/// Counter snapshot used to subtract warm-up activity from final totals.
#[derive(Clone, Copy, Debug, Default)]
struct CounterSnapshot {
    cpu_busy_all: Dur,
    cpu_busy_lock: Dur,
    io_busy_all: Dur,
    io_busy_lock: Dur,
    lock_attempts: u64,
    lock_denials: u64,
    aborts: u64,
    failures: u64,
    cc: CcStats,
}

/// Live state of the optional processor fail/repair process. Exists only
/// when the configuration carries a [`FailureSpec`], so the default model
/// draws no extra random numbers and stays bit-identical to the
/// pre-extension behavior.
struct FailureState {
    mtbf: Dur,
    mttr: Dur,
    /// Dedicated stream (`root.split("failure")`) so up/down draws never
    /// perturb the workload / conflict / service streams.
    rng: SimRng,
    /// Per-processor down flag.
    down: Vec<bool>,
    /// Jobs submitted to a down processor's CPU, replayed at repair in
    /// submission order.
    stalled_cpu: Vec<Vec<Job>>,
    /// Jobs submitted to a down processor's disk, replayed at repair.
    stalled_io: Vec<Vec<Job>>,
}

impl FailureState {
    fn new(spec: &FailureSpec, npros: u32, rng: SimRng) -> Self {
        FailureState {
            mtbf: Dur::from_units(spec.mtbf),
            mttr: Dur::from_units(spec.mttr),
            rng,
            down: vec![false; npros as usize],
            stalled_cpu: (0..npros).map(|_| Vec::new()).collect(),
            stalled_io: (0..npros).map(|_| Vec::new()).collect(),
        }
    }

    /// Exponential draw with the given mean, at least one tick.
    fn draw(&mut self, mean: Dur) -> Dur {
        let u: f64 = self.rng.uniform01();
        let ticks = (-(1.0 - u).ln() * mean.ticks() as f64).round() as u64;
        Dur::from_ticks(ticks.max(1))
    }
}

/// The complete model state (see module docs).
pub struct System {
    // --- static parameters, converted to ticks ---
    npros: u32,
    cputime: Dur,
    iotime: Dur,
    lcputime: Dur,
    liotime: Dur,
    warmup: Time,
    tmax: Time,
    lock_distribution: LockDistribution,
    service: ServiceVariability,
    /// Rotating processor offset for lock-operation placement.
    lock_rr: u64,

    // --- stochastic machinery ---
    generator: WorkloadGenerator,
    conflict_rng: SimRng,
    access_rng: SimRng,
    service_rng: SimRng,
    conflict: Box<dyn ConcurrencyControl>,

    // --- resources ---
    cpu: Vec<Server>,
    io: Vec<Server>,

    // --- transactions ---
    /// Slot-recycling slab of live transactions. The closed model keeps
    /// exactly `ntrans` resident, so after the initial arrivals the slab
    /// never grows; events address transactions by slot (see `job_id`).
    slab: Vec<Option<Transaction>>,
    /// LIFO free list of vacated slab slots.
    free_slots: Vec<u32>,
    /// Carcasses of completed transactions; the next spawn reuses their
    /// heap buffers (`spec.processors`, `granules`, `cpu_shares`) so the
    /// closed-model replacement allocates nothing. [`System::reset`] also
    /// drains the slab here, so a reused arena re-populates `ntrans`
    /// transactions without touching the allocator.
    carcasses: Vec<Transaction>,
    next_serial: u64,
    blocked_count: u32,
    /// Admission control (`mpl_limit`): transactions holding a slot.
    admitted: u32,
    mpl_limit: Option<u32>,
    /// FIFO of transaction slots waiting for an admission slot.
    pending: VecDeque<u32>,
    pending_tw: TimeWeighted,

    // --- failure extension ---
    failure: Option<FailureState>,

    // --- measurement ---
    lock_attempts: u64,
    lock_denials: u64,
    totcom: u64,
    aborts: u64,
    failures: u64,
    /// Reusable wake-list buffer: filled by `ConcurrencyControl::release` at
    /// each completion, so the hot loop never allocates for waking.
    /// Entries are slab slots (the conflict models key by slot).
    wake_buf: Vec<u64>,
    /// Reusable deadlock-effect buffers (incremental 2PL only): victims
    /// aborted and third parties granted inside `try_acquire`, drained
    /// after every admission attempt. Entries are slab slots.
    dl_aborted_buf: Vec<u64>,
    dl_woken_buf: Vec<u64>,
    /// Reusable per-processor lock-overhead share buffers (CPU, I/O).
    lock_cpu_buf: Vec<Dur>,
    lock_io_buf: Vec<Dur>,
    /// Reusable sub-transaction stage-demand buffers.
    io_share_buf: Vec<Dur>,
    cpu_share_buf: Vec<Dur>,
    response: Tally,
    response_hist: Histogram,
    /// Batch-means estimator over the same response stream as `response`:
    /// O(1) memory regardless of how many completions a capacity-scale run
    /// produces, with an autocorrelation-robust CI (see
    /// [`lockgran_sim::stats::BatchMeans`]).
    response_batch: BatchMeans,
    attempts_per_txn: Tally,
    active_tw: TimeWeighted,
    blocked_tw: TimeWeighted,
    snapshot: CounterSnapshot,
    /// Optional protocol trace (None = tracing off, zero overhead).
    tracer: Option<VecTracer>,
    /// Optional windowed time-series sampler.
    timeline: Option<TimelineCollector>,
}

/// Initial batch size of the response-time batch-means estimator.
const RESPONSE_BATCH_SIZE: u64 = 32;
/// Batch-count cap of the response-time batch-means estimator (pairwise
/// merge + batch-size doubling beyond this — memory stays fixed).
const RESPONSE_BATCH_CAP: usize = 64;

impl System {
    /// Build the initial system state and schedule the initial arrivals.
    ///
    /// # Panics
    /// Panics if `cfg.validate()` fails.
    pub fn new(cfg: &ModelConfig, seed: u64, ex: &mut Executor<Event>) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid model configuration: {e}");
        }
        let root = SimRng::new(seed);
        let conflict = build_concurrency_control(cfg);
        let tmax = Time::from_units(cfg.tmax);
        let warmup = Time::from_units(cfg.warmup);

        let mut sys = System {
            npros: cfg.npros,
            cputime: Dur::from_units(cfg.cputime),
            iotime: Dur::from_units(cfg.iotime),
            lcputime: Dur::from_units(cfg.lcputime),
            liotime: Dur::from_units(cfg.liotime),
            warmup,
            tmax,
            lock_distribution: cfg.lock_distribution,
            service: cfg.service,
            lock_rr: 0,
            generator: WorkloadGenerator::new(cfg.workload_params(), &root),
            conflict_rng: root.split("conflict"),
            access_rng: root.split("access"),
            service_rng: root.split("service"),
            conflict,
            cpu: (0..cfg.npros)
                .map(|_| mk_server(cfg.lock_preemption, cfg.discipline))
                .collect(),
            io: (0..cfg.npros)
                .map(|_| mk_server(cfg.lock_preemption, cfg.discipline))
                .collect(),
            slab: Vec::new(),
            free_slots: Vec::new(),
            carcasses: Vec::new(),
            next_serial: 0,
            blocked_count: 0,
            admitted: 0,
            mpl_limit: cfg.mpl_limit,
            pending: VecDeque::new(),
            pending_tw: TimeWeighted::new(),
            failure: None,
            lock_attempts: 0,
            lock_denials: 0,
            totcom: 0,
            aborts: 0,
            failures: 0,
            wake_buf: Vec::new(),
            dl_aborted_buf: Vec::new(),
            dl_woken_buf: Vec::new(),
            lock_cpu_buf: Vec::new(),
            lock_io_buf: Vec::new(),
            io_share_buf: Vec::new(),
            cpu_share_buf: Vec::new(),
            response: Tally::new(),
            response_hist: Histogram::new(cfg.tmax, 2_000),
            response_batch: BatchMeans::with_doubling(RESPONSE_BATCH_SIZE, RESPONSE_BATCH_CAP),
            attempts_per_txn: Tally::new(),
            active_tw: TimeWeighted::new(),
            blocked_tw: TimeWeighted::new(),
            snapshot: CounterSnapshot::default(),
            tracer: None,
            timeline: None,
        };
        sys.schedule_initial(cfg, &root, ex);
        sys
    }

    /// Schedule the bootstrap events of a run — initial arrivals one time
    /// unit apart (paper §2), the warm-up boundary, and (when the failure
    /// extension is on) every processor's first failure. Shared by
    /// [`System::new`] and [`System::reset`] so the event sequence numbers
    /// of a reset run match a fresh run exactly.
    fn schedule_initial(&mut self, cfg: &ModelConfig, root: &SimRng, ex: &mut Executor<Event>) {
        for i in 0..cfg.ntrans {
            ex.schedule(Time::from_units(f64::from(i)), Event::Arrive);
        }
        if self.warmup > Time::ZERO {
            ex.schedule(self.warmup, Event::WarmupReached);
        }
        // Failure extension: every processor gets an independent first
        // failure time from the dedicated stream.
        self.failure = cfg.failure.as_ref().map(|spec| {
            let mut f = FailureState::new(spec, cfg.npros, root.split("failure"));
            for p in 0..cfg.npros {
                let at = Time::ZERO + f.draw(f.mtbf);
                ex.schedule(at, Event::Fail { proc: p });
            }
            f
        });
    }

    /// Re-initialize this system in place for a fresh `(cfg, seed)` run,
    /// as if it had just been built with [`System::new`]`(cfg, seed, ex)`
    /// — same panics, same RNG stream derivation, bit-identical behavior.
    /// What reuse keeps is *capacity*: the transaction slab (drained into
    /// the carcass pool so every buffer a transaction ever grew survives),
    /// the conflict model's tables when the mode allows
    /// ([`ConcurrencyControl::reset`]), the workload generator's lock
    /// memo, and every scratch buffer. The caller must reset the executor
    /// first ([`Executor::reset`]) so event sequence numbers restart.
    ///
    /// # Panics
    /// Panics if `cfg.validate()` fails.
    pub fn reset(&mut self, cfg: &ModelConfig, seed: u64, ex: &mut Executor<Event>) {
        if let Err(e) = cfg.validate() {
            panic!("invalid model configuration: {e}");
        }
        let root = SimRng::new(seed);
        self.npros = cfg.npros;
        self.cputime = Dur::from_units(cfg.cputime);
        self.iotime = Dur::from_units(cfg.iotime);
        self.lcputime = Dur::from_units(cfg.lcputime);
        self.liotime = Dur::from_units(cfg.liotime);
        self.warmup = Time::from_units(cfg.warmup);
        self.tmax = Time::from_units(cfg.tmax);
        self.lock_distribution = cfg.lock_distribution;
        self.service = cfg.service;
        self.lock_rr = 0;
        self.generator.reset(cfg.workload_params(), &root);
        self.conflict_rng = root.split("conflict");
        self.access_rng = root.split("access");
        self.service_rng = root.split("service");
        // In-place conflict reset when the model matches the new mode;
        // otherwise rebuild (mode changed between sweep points).
        if !self.conflict.reset(cfg) {
            self.conflict = build_concurrency_control(cfg);
        }
        // Servers reset in place (queues keep their grown capacity); the
        // vectors only grow or shrink when the processor count changes.
        for servers in [&mut self.cpu, &mut self.io] {
            servers.resize_with(cfg.npros as usize, || {
                mk_server(cfg.lock_preemption, cfg.discipline)
            });
            for s in servers.iter_mut() {
                s.reset(cfg.lock_preemption, cfg.discipline.to_sim());
            }
        }
        // Drain resident transactions into the carcass pool: the reset
        // run's spawns reuse their buffers instead of allocating `ntrans`
        // transactions from scratch.
        self.carcasses
            .extend(self.slab.iter_mut().filter_map(Option::take));
        self.slab.clear();
        self.free_slots.clear();
        self.next_serial = 0;
        self.blocked_count = 0;
        self.admitted = 0;
        self.mpl_limit = cfg.mpl_limit;
        self.pending.clear();
        self.pending_tw = TimeWeighted::new();
        self.lock_attempts = 0;
        self.lock_denials = 0;
        self.totcom = 0;
        self.aborts = 0;
        self.failures = 0;
        self.wake_buf.clear();
        self.dl_aborted_buf.clear();
        self.dl_woken_buf.clear();
        self.lock_cpu_buf.clear();
        self.lock_io_buf.clear();
        self.io_share_buf.clear();
        self.cpu_share_buf.clear();
        self.response = Tally::new();
        self.response_hist.reset(cfg.tmax, 2_000);
        self.response_batch = BatchMeans::with_doubling(RESPONSE_BATCH_SIZE, RESPONSE_BATCH_CAP);
        self.attempts_per_txn = Tally::new();
        self.active_tw = TimeWeighted::new();
        self.blocked_tw = TimeWeighted::new();
        self.snapshot = CounterSnapshot::default();
        self.tracer = None;
        self.timeline = None;
        self.schedule_initial(cfg, &root, ex);
    }

    /// Turn on timeline sampling every `interval` time units (see
    /// [`crate::timeline`]). Must be called before the run starts.
    pub fn enable_timeline(&mut self, interval: f64, ex: &mut Executor<Event>) {
        let interval = Dur::from_units(interval);
        self.timeline = Some(TimelineCollector::new(interval));
        ex.schedule(Time::ZERO + interval, Event::SampleTick);
    }

    /// Take the collected timeline, disabling further sampling.
    pub fn take_timeline(&mut self) -> Option<TimelineCollector> {
        self.timeline.take()
    }

    fn sample_tick(&mut self, now: Time, ex: &mut Executor<Event>) {
        for srv in self.cpu.iter_mut().chain(self.io.iter_mut()) {
            srv.flush(now);
        }
        let cpu_busy: Dur = self.cpu.iter().map(Server::total_busy).sum();
        let io_busy: Dur = self.io.iter().map(Server::total_busy).sum();
        let active = self.conflict.active_count() as u32;
        let (totcom, blocked, npros) = (self.totcom, self.blocked_count, self.npros);
        let Some(tl) = &mut self.timeline else {
            return;
        };
        tl.record(now, totcom, cpu_busy, io_busy, npros, active, blocked);
        let interval = tl.interval;
        if now + interval <= self.tmax {
            ex.schedule(now + interval, Event::SampleTick);
        }
    }

    /// Turn on protocol tracing (see [`crate::trace`]).
    pub fn enable_tracing(&mut self) {
        self.tracer = Some(VecTracer::default());
    }

    /// Take the recorded trace, leaving tracing enabled but empty.
    pub fn take_trace(&mut self) -> Option<VecTracer> {
        self.tracer.replace(VecTracer::default())
    }

    /// Look up a live transaction by slab slot.
    ///
    /// Every event carries the slot of a transaction the system itself
    /// scheduled, and slots are vacated only at completion — after which
    /// no further events for them exist. A miss is therefore a simulator
    /// logic error, not a recoverable condition.
    fn txn(&self, slot: u32) -> &Transaction {
        self.slab[slot as usize]
            .as_ref()
            // lint:allow(P001): invariant — events never outlive their transaction
            .expect("event refers to a departed transaction")
    }

    /// Mutable counterpart of [`Self::txn`].
    fn txn_mut(&mut self, slot: u32) -> &mut Transaction {
        self.slab[slot as usize]
            .as_mut()
            // lint:allow(P001): invariant — events never outlive their transaction
            .expect("event refers to a departed transaction")
    }

    #[inline]
    fn trace(&mut self, now: Time, event: TraceEvent) {
        if let Some(t) = &mut self.tracer {
            t.record(now, event);
        }
    }

    fn measuring(&self, now: Time) -> bool {
        now >= self.warmup
    }

    /// Create a fresh transaction (closed-model replacement or initial
    /// arrival) and start its lock phase. Reuses the retired carcass's
    /// buffers when one is available, so the steady-state replacement
    /// performs no heap allocation.
    fn spawn_transaction(&mut self, now: Time, ex: &mut Executor<Event>) {
        let serial = self.next_serial;
        self.next_serial += 1;
        let mut txn = self.carcasses.pop().unwrap_or_else(|| {
            Transaction::new(
                0,
                TransactionSpec {
                    entities: 0,
                    locks: 0,
                    processors: Vec::new(),
                },
                Vec::new(),
                now,
            )
        });
        txn.serial = serial;
        txn.arrived = now;
        txn.attempts = 0;
        txn.phase = TxnPhase::LockPhase;
        txn.lock_shares_outstanding = 0;
        txn.subtxns_outstanding = 0;
        txn.cpu_shares.clear();
        // Same draw order as before the slab: spec first, then granules.
        // The conflict model decides what "declared access" means — the
        // probabilistic model clears the set without touching the access
        // stream; the lock-table models sample a concrete granule set.
        self.generator.next_spec_into(&mut txn.spec);
        self.conflict
            .register_access(&mut self.access_rng, txn.spec.entities, &mut txn.granules);
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slab[s as usize] = Some(txn);
                s
            }
            None => {
                self.slab.push(Some(txn));
                (self.slab.len() - 1) as u32
            }
        };
        self.trace(now, TraceEvent::Arrived { serial });
        self.admit_or_enqueue(now, slot, ex);
    }

    /// Admission control: hand the transaction a slot (and start its lock
    /// phase) if the multiprogramming cap allows, otherwise queue it.
    fn admit_or_enqueue(&mut self, now: Time, slot: u32, ex: &mut Executor<Event>) {
        let open = self.mpl_limit.is_none_or(|cap| self.admitted < cap);
        if open {
            self.admitted += 1;
            self.begin_lock_phase(now, slot, ex);
        } else {
            self.pending.push_back(slot);
            self.pending_tw.record(now, self.pending.len() as f64);
        }
    }

    /// Issue a lock request attempt: charge the lock overhead across all
    /// processors as preemptive high-priority work; the admission decision
    /// happens when the last share completes.
    fn begin_lock_phase(&mut self, now: Time, slot: u32, ex: &mut Executor<Event>) {
        let (lcputime, liotime) = (self.lcputime, self.liotime);
        let (cpu_total, io_total, serial, attempt) = {
            let txn = self.txn_mut(slot);
            txn.phase = TxnPhase::LockPhase;
            txn.attempts += 1;
            (
                txn.lock_cpu_demand(lcputime),
                txn.lock_io_demand(liotime),
                txn.serial,
                txn.attempts,
            )
        };
        if self.measuring(now) {
            self.lock_attempts += 1;
        }
        self.trace(now, TraceEvent::LockRequested { serial, attempt });

        // Fill the reusable share buffers (taken out of `self` so the
        // submission loop below can borrow `self` mutably).
        let mut cpu_shares = std::mem::take(&mut self.lock_cpu_buf);
        let mut io_shares = std::mem::take(&mut self.lock_io_buf);
        self.lock_shares_into(slot, cpu_total, io_total, &mut cpu_shares, &mut io_shares);
        let outstanding = cpu_shares.iter().filter(|d| !d.is_zero()).count()
            + io_shares.iter().filter(|d| !d.is_zero()).count();
        self.txn_mut(slot).lock_shares_outstanding = outstanding as u32;

        if outstanding == 0 {
            // Zero-cost locking (lcputime = liotime = 0, or LU = 0): the
            // decision is immediate.
            self.lock_cpu_buf = cpu_shares;
            self.lock_io_buf = io_shares;
            self.decide(now, slot, ex);
            return;
        }
        for (p, &d) in cpu_shares.iter().enumerate() {
            if d.is_zero() {
                continue;
            }
            let job = Job {
                id: job_id(slot, KIND_LOCK_CPU),
                demand: d,
                class: Class::Lock,
            };
            self.submit_cpu(now, p as u32, job, ex);
        }
        for (p, &d) in io_shares.iter().enumerate() {
            if d.is_zero() {
                continue;
            }
            let job = Job {
                id: job_id(slot, KIND_LOCK_IO),
                demand: d,
                class: Class::Lock,
            };
            self.submit_io(now, p as u32, job, ex);
        }
        self.lock_cpu_buf = cpu_shares;
        self.lock_io_buf = io_shares;
    }

    /// Submit a job to processor `proc`'s CPU, unless the processor is
    /// down — then the job waits in the stall buffer until repair.
    fn submit_cpu(&mut self, now: Time, proc: u32, job: Job, ex: &mut Executor<Event>) {
        if let Some(f) = &mut self.failure {
            if f.down[proc as usize] {
                f.stalled_cpu[proc as usize].push(job);
                return;
            }
        }
        if let Some(c) = self.cpu[proc as usize].submit(now, job) {
            Self::schedule_cpu(ex, proc, c);
        }
    }

    /// Submit a job to processor `proc`'s disk, unless the processor is
    /// down — then the job waits in the stall buffer until repair.
    fn submit_io(&mut self, now: Time, proc: u32, job: Job, ex: &mut Executor<Event>) {
        if let Some(f) = &mut self.failure {
            if f.down[proc as usize] {
                f.stalled_io[proc as usize].push(job);
                return;
            }
        }
        if let Some(c) = self.io[proc as usize].submit(now, job) {
            Self::schedule_io(ex, proc, c);
        }
    }

    fn schedule_cpu(ex: &mut Executor<Event>, proc: u32, c: Completion) {
        ex.schedule(
            c.at,
            Event::CpuDone {
                proc,
                token: c.token,
            },
        );
    }
    fn schedule_io(ex: &mut Executor<Event>, proc: u32, c: Completion) {
        ex.schedule(
            c.at,
            Event::IoDone {
                proc,
                token: c.token,
            },
        );
    }

    /// The lock overhead is paid: ask the conflict model for a verdict.
    fn decide(&mut self, now: Time, slot: u32, ex: &mut Executor<Event>) {
        // Disjoint field borrows: the conflict model reads the granule set
        // straight out of the slab (no clone) while drawing from the
        // conflict stream. The model keys holders and waiters by slot.
        let txn = self.slab[slot as usize]
            .as_ref()
            // lint:allow(P001): invariant — events never outlive their transaction
            .expect("event refers to a departed transaction");
        let decision = self.conflict.try_acquire(
            u64::from(slot),
            txn.spec.locks,
            &txn.granules,
            &mut self.conflict_rng,
        );
        let serial = txn.serial;
        match decision {
            ConflictDecision::Granted => {
                self.trace(now, TraceEvent::Granted { serial });
                self.active_tw
                    .record(now, self.conflict.active_count() as f64);
                self.start_subtransactions(now, slot, ex);
            }
            ConflictDecision::BlockedBy(blocker_slot) => {
                let blocker = self.txn(blocker_slot as u32).serial;
                self.trace(now, TraceEvent::Denied { serial, blocker });
                if self.measuring(now) {
                    self.lock_denials += 1;
                }
                let txn = self.txn_mut(slot);
                txn.phase = TxnPhase::Blocked;
                self.blocked_count += 1;
                self.blocked_tw.record(now, f64::from(self.blocked_count));
            }
            ConflictDecision::Aborted => {
                // Incremental 2PL only: the requester itself was chosen as
                // the deadlock victim mid-attempt. It never held a full
                // grant, keeps its admission slot and arrival time, and
                // replays the lock phase as a fresh attempt (the repeated
                // lock overhead is charged again).
                self.trace(now, TraceEvent::DeadlockAborted { serial });
                if self.measuring(now) {
                    self.aborts += 1;
                }
                self.begin_lock_phase(now, slot, ex);
            }
        }
        self.apply_deadlock_effects(now, ex);
    }

    /// Pick up the side effects of deadlock resolution performed inside
    /// the conflict model during `decide` (incremental 2PL only —
    /// conservative protocols never produce any): victims abort out of
    /// their blocked wait and replay their lock phase; third parties
    /// granted by the victims' lock releases wake. The requester's own
    /// transition was already handled by `decide`, so every transaction
    /// named here is `Blocked` — with zero-cost locking the replays and
    /// wakes recurse straight into `decide`, and that invariant is what
    /// keeps nested deadlock resolution (which drains these same buffers
    /// in the inner frame) from touching a transaction whose decision is
    /// still pending on the stack.
    fn apply_deadlock_effects(&mut self, now: Time, ex: &mut Executor<Event>) {
        let mut aborted = std::mem::take(&mut self.dl_aborted_buf);
        let mut woken = std::mem::take(&mut self.dl_woken_buf);
        aborted.clear();
        woken.clear();
        self.conflict
            .drain_deadlock_effects(&mut aborted, &mut woken);
        for &v in &aborted {
            let v = v as u32;
            debug_assert_eq!(self.txn(v).phase, TxnPhase::Blocked);
            let serial = self.txn(v).serial;
            self.trace(now, TraceEvent::DeadlockAborted { serial });
            if self.measuring(now) {
                self.aborts += 1;
            }
            self.blocked_count -= 1;
            self.blocked_tw.record(now, f64::from(self.blocked_count));
            self.begin_lock_phase(now, v, ex);
        }
        for &w in &woken {
            let w = w as u32;
            debug_assert_eq!(self.txn(w).phase, TxnPhase::Blocked);
            let serial = self.txn(w).serial;
            self.trace(now, TraceEvent::Woken { serial });
            self.blocked_count -= 1;
            self.blocked_tw.record(now, f64::from(self.blocked_count));
            self.begin_lock_phase(now, w, ex);
        }
        aborted.clear();
        woken.clear();
        self.dl_aborted_buf = aborted;
        self.dl_woken_buf = woken;
    }

    /// Fork the admitted transaction into `PU_i` sub-transactions and
    /// submit their I/O stages. The `NU_i` entities are dealt out in
    /// whole units (an entity is "the unit moved by the operating
    /// system"), so with `NU_i` not divisible by `PU_i` some
    /// sub-transactions carry one extra entity; the surplus rotates
    /// across processors between transactions so no processor is
    /// systematically hotter.
    fn start_subtransactions(&mut self, now: Time, slot: u32, ex: &mut Executor<Event>) {
        let rot = self.lock_rr; // reuse the rotating offset
        let (fanout, entities) = {
            let txn = self.txn_mut(slot);
            txn.phase = TxnPhase::Running;
            (u64::from(txn.fanout()), txn.spec.entities)
        };
        let base = entities / fanout;
        let extra = entities % fanout;
        let entities_at = |i: u64| base + u64::from((i + rot) % fanout < extra);
        // Fill the reusable stage buffers; same draw order as ever (all
        // I/O shares, then all CPU shares).
        let mut io_shares = std::mem::take(&mut self.io_share_buf);
        io_shares.clear();
        for i in 0..fanout {
            let d = self.stage_demand(self.iotime, entities_at(i));
            io_shares.push(d);
        }
        let mut cpu_shares = std::mem::take(&mut self.cpu_share_buf);
        cpu_shares.clear();
        for i in 0..fanout {
            let d = self.stage_demand(self.cputime, entities_at(i));
            cpu_shares.push(d);
        }
        {
            let txn = self.txn_mut(slot);
            txn.subtxns_outstanding = txn.fanout();
            // Swap the filled buffer in; the transaction's previous
            // (cleared) vector becomes the next reusable buffer.
            std::mem::swap(&mut txn.cpu_shares, &mut cpu_shares);
        }
        self.cpu_share_buf = cpu_shares;
        for (i, &demand) in io_shares.iter().enumerate().take(fanout as usize) {
            let p = self.txn(slot).spec.processors[i];
            let job = Job {
                id: job_id(slot, KIND_SUB_IO),
                demand,
                class: Class::Transaction,
            };
            self.submit_io(now, p, job, ex);
        }
        self.io_share_buf = io_shares;
    }

    /// A sub-transaction finished its I/O stage on `proc`: submit its CPU
    /// stage there.
    fn subtxn_io_done(&mut self, now: Time, slot: u32, proc: u32, ex: &mut Executor<Event>) {
        let (serial, demand) = {
            let txn = self.txn(slot);
            let idx = txn
                .spec
                .processors
                .iter()
                .position(|&p| p == proc)
                // lint:allow(P001): SubIoDone events are only scheduled on
                // the processors the spec assigned at dispatch
                .expect("sub-transaction ran on an assigned processor");
            (txn.serial, txn.cpu_shares[idx])
        };
        self.trace(now, TraceEvent::SubIoDone { serial, proc });
        let job = Job {
            id: job_id(slot, KIND_SUB_CPU),
            demand,
            class: Class::Transaction,
        };
        self.submit_cpu(now, proc, job, ex);
    }

    /// A sub-transaction finished its CPU stage: join, and complete the
    /// parent when the last one is in.
    fn subtxn_cpu_done(&mut self, now: Time, slot: u32, proc: u32, ex: &mut Executor<Event>) {
        let (serial, done) = {
            let txn = self.txn_mut(slot);
            txn.subtxns_outstanding -= 1;
            (txn.serial, txn.subtxns_outstanding == 0)
        };
        self.trace(now, TraceEvent::SubCpuDone { serial, proc });
        if done {
            self.complete(now, slot, ex);
        }
    }

    /// Transaction completion: release locks, wake blocked transactions,
    /// record statistics, spawn the closed-model replacement.
    fn complete(&mut self, now: Time, slot: u32, ex: &mut Executor<Event>) {
        let txn = self.slab[slot as usize]
            .take()
            // lint:allow(P001): invariant — a transaction completes exactly once
            .expect("completion for a departed transaction");
        self.free_slots.push(slot);
        debug_assert_eq!(txn.phase, TxnPhase::Running);
        self.trace(now, TraceEvent::Completed { serial: txn.serial });
        if self.measuring(now) {
            self.totcom += 1;
            let resp = now.since(txn.arrived).units();
            self.response.record(resp);
            self.response_hist.record(resp);
            self.response_batch.record(resp);
            self.attempts_per_txn.record(f64::from(txn.attempts));
        }
        // Retire the carcass: the replacement spawned below reuses its
        // heap buffers instead of allocating.
        self.carcasses.push(txn);
        // Reuse the wake buffer across completions (no per-release
        // allocation); take it out of `self` so `begin_lock_phase` can
        // borrow `self` mutably while we iterate.
        let mut woken = std::mem::take(&mut self.wake_buf);
        woken.clear();
        self.conflict.release(u64::from(slot), &mut woken);
        self.active_tw
            .record(now, self.conflict.active_count() as f64);
        for &w in &woken {
            let w = w as u32;
            debug_assert_eq!(self.txn(w).phase, TxnPhase::Blocked);
            let serial = self.txn(w).serial;
            self.trace(now, TraceEvent::Woken { serial });
            self.blocked_count -= 1;
            self.blocked_tw.record(now, f64::from(self.blocked_count));
            self.begin_lock_phase(now, w, ex);
        }
        self.wake_buf = woken;
        // The finished transaction gives up its admission slot; the head
        // of the pending queue takes it.
        self.admitted -= 1;
        if let Some(next) = self.pending.pop_front() {
            self.pending_tw.record(now, self.pending.len() as f64);
            self.admitted += 1;
            self.begin_lock_phase(now, next, ex);
        }
        // Closed model: a fresh transaction replaces the finished one.
        self.spawn_transaction(now, ex);
    }

    /// Processor `proc` fails: mark it down, schedule the repair, and
    /// abort every *running* transaction with a sub-transaction there.
    /// Blocked and lock-phase transactions survive (they hold no
    /// sub-transaction work); their new submissions to this processor
    /// stall until repair.
    fn fail_processor(&mut self, now: Time, proc: u32, ex: &mut Executor<Event>) {
        let Some(f) = &mut self.failure else {
            return;
        };
        debug_assert!(!f.down[proc as usize], "Fail event for a down processor");
        f.down[proc as usize] = true;
        let repair_in = f.draw(f.mttr);
        ex.schedule(now + repair_in, Event::Repair { proc });
        self.trace(now, TraceEvent::Failed { proc });
        if self.measuring(now) {
            self.failures += 1;
        }
        // Collect victims before mutating: the wake-ups triggered by each
        // abort move transactions Blocked → LockPhase, never into Running,
        // so the victim set cannot grow under our feet. Abort in *serial*
        // order — the order the former BTreeMap iteration produced — so
        // the abort-triggered RNG draws replay identically even though
        // recycled slots are not serial-ordered.
        let mut victims: Vec<(u64, u32)> = self
            .slab
            .iter()
            .enumerate()
            .filter_map(|(slot, t)| t.as_ref().map(|t| (slot, t)))
            .filter(|(_, t)| t.phase == TxnPhase::Running && t.spec.processors.contains(&proc))
            .map(|(slot, t)| (t.serial, slot as u32))
            .collect();
        victims.sort_unstable_by_key(|&(serial, _)| serial);
        for (_, slot) in victims {
            self.abort(now, slot, ex);
        }
    }

    /// Processor `proc` is repaired: replay stalled submissions in their
    /// original order and schedule the next failure.
    fn repair_processor(&mut self, now: Time, proc: u32, ex: &mut Executor<Event>) {
        self.trace(now, TraceEvent::Repaired { proc });
        let Some(f) = &mut self.failure else {
            return;
        };
        debug_assert!(f.down[proc as usize], "Repair event for an up processor");
        f.down[proc as usize] = false;
        let fail_in = f.draw(f.mtbf);
        ex.schedule(now + fail_in, Event::Fail { proc });
        let stalled_io = std::mem::take(&mut f.stalled_io[proc as usize]);
        let stalled_cpu = std::mem::take(&mut f.stalled_cpu[proc as usize]);
        for job in stalled_io {
            if let Some(c) = self.io[proc as usize].submit(now, job) {
                Self::schedule_io(ex, proc, c);
            }
        }
        for job in stalled_cpu {
            if let Some(c) = self.cpu[proc as usize].submit(now, job) {
                Self::schedule_cpu(ex, proc, c);
            }
        }
    }

    /// Abort a running transaction because a processor hosting one of its
    /// sub-transactions failed: withdraw its in-flight work, release all
    /// its locks through the ordinary wake path (conservative locking —
    /// no partial writes exist, so no undo is needed), and re-enter the
    /// lock-request cycle. The transaction keeps its admission slot and
    /// its arrival time (the paper's response time spans the whole stay).
    fn abort(&mut self, now: Time, slot: u32, ex: &mut Executor<Event>) {
        let serial = self.txn(slot).serial;
        self.trace(now, TraceEvent::Aborted { serial });
        if self.measuring(now) {
            self.aborts += 1;
        }
        let io_id = job_id(slot, KIND_SUB_IO);
        let cpu_id = job_id(slot, KIND_SUB_CPU);
        let fanout = self.txn(slot).fanout() as usize;
        for i in 0..fanout {
            let p = self.txn(slot).spec.processors[i];
            if let lockgran_sim::CancelOutcome::InService { next: Some(c), .. } =
                self.io[p as usize].cancel(now, io_id)
            {
                Self::schedule_io(ex, p, c);
            }
            if let lockgran_sim::CancelOutcome::InService { next: Some(c), .. } =
                self.cpu[p as usize].cancel(now, cpu_id)
            {
                Self::schedule_cpu(ex, p, c);
            }
        }
        // Sub-transaction work parked behind *another* down processor must
        // not resurface at its repair.
        if let Some(f) = &mut self.failure {
            for buf in &mut f.stalled_io {
                buf.retain(|j| j.id != io_id);
            }
            for buf in &mut f.stalled_cpu {
                buf.retain(|j| j.id != cpu_id);
            }
        }
        {
            let txn = self.txn_mut(slot);
            debug_assert_eq!(txn.phase, TxnPhase::Running);
            txn.subtxns_outstanding = 0;
            txn.cpu_shares.clear();
        }
        // Release locks and wake waiters — the same dance as `complete`.
        let mut woken = std::mem::take(&mut self.wake_buf);
        woken.clear();
        self.conflict.release(u64::from(slot), &mut woken);
        self.active_tw
            .record(now, self.conflict.active_count() as f64);
        for &w in &woken {
            let w = w as u32;
            debug_assert_eq!(self.txn(w).phase, TxnPhase::Blocked);
            let woken_serial = self.txn(w).serial;
            self.trace(
                now,
                TraceEvent::Woken {
                    serial: woken_serial,
                },
            );
            self.blocked_count -= 1;
            self.blocked_tw.record(now, f64::from(self.blocked_count));
            self.begin_lock_phase(now, w, ex);
        }
        self.wake_buf = woken;
        // Re-execute from the lock request (a fresh attempt, so the
        // repeated lock overhead is charged again).
        self.begin_lock_phase(now, slot, ex);
    }

    fn take_snapshot(&mut self, now: Time) {
        for s in self.cpu.iter_mut().chain(self.io.iter_mut()) {
            s.flush(now);
        }
        let sum =
            |servers: &[Server], f: &dyn Fn(&Server) -> Dur| servers.iter().map(f).sum::<Dur>();
        self.snapshot = CounterSnapshot {
            cpu_busy_all: sum(&self.cpu, &Server::total_busy),
            cpu_busy_lock: sum(&self.cpu, &|s| s.busy_time(Class::Lock)),
            io_busy_all: sum(&self.io, &Server::total_busy),
            io_busy_lock: sum(&self.io, &|s| s.busy_time(Class::Lock)),
            lock_attempts: self.lock_attempts,
            lock_denials: self.lock_denials,
            aborts: self.aborts,
            failures: self.failures,
            cc: self.conflict.stats(),
        };
        self.active_tw.reset(now);
        self.blocked_tw.reset(now);
        self.pending_tw.reset(now);
    }

    /// Close accounting at the horizon and assemble the metrics. Takes
    /// `&mut self` (it flushes the servers) so an arena can
    /// [`System::reset`] the same state for the next run.
    pub fn finish(&mut self, end: Time) -> RunMetrics {
        for s in self.cpu.iter_mut().chain(self.io.iter_mut()) {
            s.flush(end);
        }
        let sum =
            |servers: &[Server], f: &dyn Fn(&Server) -> Dur| servers.iter().map(f).sum::<Dur>();
        let totcpus = (sum(&self.cpu, &Server::total_busy) - self.snapshot.cpu_busy_all).units();
        let lockcpus =
            (sum(&self.cpu, &|s| s.busy_time(Class::Lock)) - self.snapshot.cpu_busy_lock).units();
        let totios = (sum(&self.io, &Server::total_busy) - self.snapshot.io_busy_all).units();
        let lockios =
            (sum(&self.io, &|s| s.busy_time(Class::Lock)) - self.snapshot.io_busy_lock).units();
        let npros = f64::from(self.npros);
        let measured_time = end.since(self.warmup).units();
        let lock_attempts = self.lock_attempts - self.snapshot.lock_attempts;
        let lock_denials = self.lock_denials - self.snapshot.lock_denials;
        let span = measured_time.max(f64::MIN_POSITIVE);

        RunMetrics {
            totcpus,
            totios,
            lockcpus,
            lockios,
            usefulcpus: (totcpus - lockcpus) / npros,
            usefulios: (totios - lockios) / npros,
            totcom: self.totcom,
            throughput: self.totcom as f64 / span,
            response_time: self.response.mean(),
            measured_time,
            lock_attempts,
            lock_denials,
            denial_rate: if lock_attempts == 0 {
                0.0
            } else {
                lock_denials as f64 / lock_attempts as f64
            },
            mean_active: self.active_tw.mean_at(end),
            mean_blocked: self.blocked_tw.mean_at(end),
            mean_pending: self.pending_tw.mean_at(end),
            cpu_utilization: totcpus / (npros * span),
            io_utilization: totios / (npros * span),
            response_time_std: self.response.std_dev(),
            response_time_p95: self.response_hist.quantile(0.95).unwrap_or(0.0),
            attempts_per_txn: self.attempts_per_txn.mean(),
            aborts: self.aborts - self.snapshot.aborts,
            failures: self.failures - self.snapshot.failures,
            escalations: self.conflict.stats().escalations - self.snapshot.cc.escalations,
            intent_locks: self.conflict.stats().intent_locks - self.snapshot.cc.intent_locks,
            deadlocks: self.conflict.stats().deadlocks - self.snapshot.cc.deadlocks,
            response_ci95_batch: self.response_batch.ci95_half_width(),
            response_batches: self.response_batch.batches(),
        }
    }

    /// Number of transactions currently resident (always `ntrans` once the
    /// initial arrivals are in).
    pub fn resident_transactions(&self) -> usize {
        self.slab.iter().filter(|s| s.is_some()).count()
    }

    /// Number of transactions currently blocked.
    pub fn blocked_transactions(&self) -> u32 {
        self.blocked_count
    }

    /// The horizon this system was configured with.
    pub fn tmax(&self) -> Time {
        self.tmax
    }
}

impl Model for System {
    type Event = Event;

    fn handle(&mut self, now: Time, event: Event, ex: &mut Executor<Event>) {
        match event {
            Event::Arrive => self.spawn_transaction(now, ex),
            Event::WarmupReached => self.take_snapshot(now),
            Event::SampleTick => self.sample_tick(now, ex),
            Event::Fail { proc } => self.fail_processor(now, proc, ex),
            Event::Repair { proc } => self.repair_processor(now, proc, ex),
            Event::CpuDone { proc, token } => {
                match self.cpu[proc as usize].on_completion(now, token) {
                    CompletionOutcome::Stale => {}
                    CompletionOutcome::Finished { job, next } => {
                        if let Some(c) = next {
                            Self::schedule_cpu(ex, proc, c);
                        }
                        let (slot, kind) = decode(job.id);
                        match kind {
                            KIND_LOCK_CPU => self.lock_share_done(now, slot, ex),
                            KIND_SUB_CPU => self.subtxn_cpu_done(now, slot, proc, ex),
                            other => unreachable!("CPU server finished job kind {other}"),
                        }
                    }
                }
            }
            Event::IoDone { proc, token } => {
                match self.io[proc as usize].on_completion(now, token) {
                    CompletionOutcome::Stale => {}
                    CompletionOutcome::Finished { job, next } => {
                        if let Some(c) = next {
                            Self::schedule_io(ex, proc, c);
                        }
                        let (slot, kind) = decode(job.id);
                        match kind {
                            KIND_LOCK_IO => self.lock_share_done(now, slot, ex),
                            KIND_SUB_IO => self.subtxn_io_done(now, slot, proc, ex),
                            other => unreachable!("I/O server finished job kind {other}"),
                        }
                    }
                }
            }
        }
    }
}

impl System {
    /// Demand of one sub-transaction stage: `entities × per-entity cost`,
    /// optionally perturbed by the configured service variability.
    fn stage_demand(&mut self, per_entity: Dur, entities: u64) -> Dur {
        let mean = per_entity.times(entities);
        match self.service {
            ServiceVariability::Deterministic => mean,
            ServiceVariability::Exponential => {
                if mean.is_zero() {
                    return mean;
                }
                let u: f64 = self.service_rng.uniform01();
                // Inverse-CDF exponential with the same mean.
                let ticks = (-(1.0 - u).ln() * mean.ticks() as f64).round() as u64;
                Dur::from_ticks(ticks.max(1))
            }
        }
    }

    /// Distribute one request's lock overhead over the processors
    /// according to the configured [`LockDistribution`], filling the
    /// caller's per-processor (CPU, I/O) demand buffers (cleared first);
    /// totals are conserved exactly.
    fn lock_shares_into(
        &mut self,
        slot: u32,
        cpu_total: Dur,
        io_total: Dur,
        cpu: &mut Vec<Dur>,
        io: &mut Vec<Dur>,
    ) {
        cpu.clear();
        io.clear();
        let npros = u64::from(self.npros);
        match self.lock_distribution {
            LockDistribution::EvenSplit => {
                cpu.extend(cpu_total.split_even(npros));
                io.extend(io_total.split_even(npros));
            }
            LockDistribution::SingleProcessor => {
                let target = (self.lock_rr % npros) as usize;
                self.lock_rr += 1;
                cpu.resize(npros as usize, Dur::ZERO);
                io.resize(npros as usize, Dur::ZERO);
                cpu[target] = cpu_total;
                io[target] = io_total;
            }
            LockDistribution::PerOperation => {
                // LU indivisible lock operations land round-robin on the
                // processors holding the granules, starting at a rotating
                // offset; processor p gets ops_p operations, hence
                // ops_p * lcputime CPU and ops_p * liotime I/O.
                let lu = self.txn(slot).spec.locks;
                let start = self.lock_rr % npros;
                self.lock_rr += lu.max(1);
                let base = lu.checked_div(npros).unwrap_or(0);
                let extra = lu % npros;
                let lcpu = self.lcputime;
                let lio = self.liotime;
                let ops = |p: u64| -> u64 {
                    let rel = (p + npros - start) % npros;
                    base + u64::from(rel < extra)
                };
                cpu.extend((0..npros).map(|p| lcpu.times(ops(p))));
                io.extend((0..npros).map(|p| lio.times(ops(p))));
            }
        }
    }

    fn lock_share_done(&mut self, now: Time, slot: u32, ex: &mut Executor<Event>) {
        let done = {
            let txn = self.txn_mut(slot);
            txn.lock_shares_outstanding -= 1;
            txn.lock_shares_outstanding == 0
        };
        if done {
            self.decide(now, slot, ex);
        }
    }
}
