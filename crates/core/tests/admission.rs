//! Behavioural tests of the admission-control extension (`mpl_limit`).

use lockgran_core::{sim, ModelConfig};

fn heavy() -> ModelConfig {
    ModelConfig::table1()
        .with_ntrans(100)
        .with_npros(10)
        .with_tmax(1_000.0)
}

#[test]
fn uncapped_system_has_empty_pending_queue() {
    let m = sim::run(&heavy(), 1);
    assert_eq!(m.mean_pending, 0.0);
}

#[test]
fn capped_system_queues_the_surplus() {
    let m = sim::run(&heavy().with_mpl_limit(Some(10)), 1);
    // 100 resident, 10 admitted: most of the population waits.
    assert!(
        m.mean_pending > 50.0,
        "mean pending {} too small for 100 resident / cap 10",
        m.mean_pending
    );
    m.check_consistency(10).unwrap();
}

#[test]
fn tighter_caps_mean_fewer_denials() {
    let loose = sim::run(&heavy().with_ltot(5000).with_mpl_limit(Some(50)), 2);
    let tight = sim::run(&heavy().with_ltot(5000).with_mpl_limit(Some(5)), 2);
    assert!(
        tight.denial_rate < loose.denial_rate,
        "tight {} !< loose {}",
        tight.denial_rate,
        loose.denial_rate
    );
}

#[test]
fn cap_improves_fine_granularity_under_heavy_load() {
    let uncapped = sim::run(&heavy().with_ltot(5000), 3);
    let capped = sim::run(&heavy().with_ltot(5000).with_mpl_limit(Some(10)), 3);
    assert!(
        capped.throughput > uncapped.throughput,
        "capped {} !> uncapped {}",
        capped.throughput,
        uncapped.throughput
    );
}

#[test]
fn cap_equal_to_ntrans_changes_nothing() {
    let base = ModelConfig::table1().with_tmax(800.0);
    let a = sim::run(&base, 4);
    let b = sim::run(&base.clone().with_mpl_limit(Some(base.ntrans)), 4);
    // Same admissions in the same order: identical runs.
    assert_eq!(a.totcom, b.totcom);
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
    assert_eq!(b.mean_pending, 0.0);
}

#[test]
fn response_time_includes_pending_wait() {
    // With a tight cap, the pending wait dominates response time (it is
    // measured from system entry, as the paper defines it). Longer run:
    // with 100 residents the closed system needs time to reach steady
    // state before L = lambda * W is tight.
    let capped = sim::run(&heavy().with_tmax(4_000.0).with_mpl_limit(Some(5)), 5);
    let uncapped = sim::run(&heavy().with_tmax(4_000.0), 5);
    assert!(
        capped.response_time > 0.0 && uncapped.response_time > 0.0,
        "no completions"
    );
    // Little's law must keep holding: L = ntrans for both (loose band —
    // a 4000-unit window still carries start-up transient at MPL 100).
    for m in [&capped, &uncapped] {
        let lw = m.throughput * m.response_time;
        assert!((lw - 100.0).abs() / 100.0 < 0.35, "Little's law: {lw}");
    }
}

#[test]
fn zero_cap_rejected_by_validation() {
    assert!(ModelConfig::table1()
        .with_mpl_limit(Some(0))
        .validate()
        .is_err());
}
