//! Behavioural tests of the exponential service-time extension: random
//! stage times create fork/join stragglers, which is exactly the
//! mechanism behind the paper's sublinear useful-time scaling.

use lockgran_core::{sim, ModelConfig, ServiceVariability};

fn base() -> ModelConfig {
    ModelConfig::table1().with_tmax(2_000.0)
}

#[test]
fn exponential_service_runs_and_is_consistent() {
    let m = sim::run(&base().with_service(ServiceVariability::Exponential), 1);
    assert!(m.totcom > 0);
    m.check_consistency(10).unwrap();
}

#[test]
fn exponential_service_is_deterministic_per_seed() {
    let cfg = base().with_service(ServiceVariability::Exponential);
    let a = sim::run(&cfg, 7);
    let b = sim::run(&cfg, 7);
    assert_eq!(a.totcom, b.totcom);
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
}

#[test]
fn stragglers_cost_throughput_at_high_fanout() {
    // With 30-way fork/join, waiting for the slowest of 30 exponential
    // stages hurts; with a single processor there is no barrier, so the
    // penalty must be markedly larger at npros = 30.
    let penalty = |npros: u32| {
        let det = sim::run(
            &base()
                .with_npros(npros)
                .with_service(ServiceVariability::Deterministic),
            3,
        );
        let exp = sim::run(
            &base()
                .with_npros(npros)
                .with_service(ServiceVariability::Exponential),
            3,
        );
        1.0 - exp.throughput / det.throughput
    };
    let p1 = penalty(1);
    let p30 = penalty(30);
    assert!(
        p30 > p1 + 0.05,
        "straggler penalty should grow with fan-out: npros=1 {p1:.3}, npros=30 {p30:.3}"
    );
}

#[test]
fn exponential_service_restores_fig3_ordering() {
    // Under random service, per-processor useful I/O time decreases with
    // npros at moderate granularity — the paper's Fig 3 ordering that
    // deterministic symmetric service hides (see EXPERIMENTS.md).
    let useful = |npros: u32| {
        sim::run(
            &base()
                .with_ltot(100)
                .with_npros(npros)
                .with_service(ServiceVariability::Exponential),
            5,
        )
        .usefulios
    };
    let one = useful(1);
    let thirty = useful(30);
    assert!(
        thirty < one,
        "useful I/O per processor: npros=30 {thirty} !< npros=1 {one}"
    );
}

#[test]
fn mean_demand_is_preserved() {
    // The exponential draw has the same mean: completed work per
    // transaction (useful I/O × npros / totcom) must agree within a few
    // percent between the two modes.
    let det = sim::run(&base(), 11);
    let exp = sim::run(&base().with_service(ServiceVariability::Exponential), 11);
    let work = |m: &lockgran_core::RunMetrics| m.usefulios * 10.0 / m.totcom as f64;
    let ratio = work(&exp) / work(&det);
    assert!(
        (0.9..=1.15).contains(&ratio),
        "per-transaction I/O work ratio {ratio}"
    );
}

#[test]
fn parsing_round_trip() {
    for v in ServiceVariability::ALL {
        assert_eq!(v.name().parse::<ServiceVariability>().unwrap(), v);
    }
    assert!("gamma".parse::<ServiceVariability>().is_err());
}
