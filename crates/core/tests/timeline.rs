//! Tests of timeline sampling and Welch warm-up suggestion.

use lockgran_core::sim::{run, run_timeline, suggest_warmup};
use lockgran_core::ModelConfig;

fn base() -> ModelConfig {
    ModelConfig::table1().with_tmax(2_000.0)
}

#[test]
fn timeline_covers_the_horizon() {
    let (m, points) = run_timeline(&base(), 1, 100.0);
    assert!(m.totcom > 0);
    assert_eq!(points.len(), 20, "2000 units / 100-unit windows");
    assert!((points[0].t - 100.0).abs() < 1e-9);
    assert!((points.last().unwrap().t - 2_000.0).abs() < 1e-9);
}

#[test]
fn window_completions_sum_to_totcom() {
    let (m, points) = run_timeline(&base(), 2, 100.0);
    let sum: u64 = points.iter().map(|p| p.completions).sum();
    // The final window ends exactly at tmax; everything measured is
    // covered by some window.
    assert_eq!(sum, m.totcom);
}

#[test]
fn utilizations_stay_in_range() {
    let (_, points) = run_timeline(&base(), 3, 50.0);
    for p in &points {
        assert!((0.0..=1.0 + 1e-9).contains(&p.cpu_utilization), "{p:?}");
        assert!((0.0..=1.0 + 1e-9).contains(&p.io_utilization), "{p:?}");
        assert!(p.active <= 10 && p.blocked <= 10);
    }
}

#[test]
fn timeline_does_not_perturb_metrics() {
    // Sampling must be a pure observer: identical results with and
    // without it.
    let plain = run(&base(), 4);
    let (sampled, _) = run_timeline(&base(), 4, 100.0);
    assert_eq!(plain.totcom, sampled.totcom);
    assert_eq!(plain.throughput.to_bits(), sampled.throughput.to_bits());
    assert_eq!(plain.lockios.to_bits(), sampled.lockios.to_bits());
}

#[test]
fn throughput_ramps_up_from_the_start() {
    // The closed system starts with staggered arrivals: the first window
    // should show lower throughput than the steady-state windows.
    let (_, points) = run_timeline(&base().with_npros(30), 5, 50.0);
    let first = points.first().unwrap().throughput;
    let tail_mean: f64 = points[points.len() / 2..]
        .iter()
        .map(|p| p.throughput)
        .sum::<f64>()
        / (points.len() - points.len() / 2) as f64;
    assert!(
        first < tail_mean,
        "first window {first} not below steady state {tail_mean}"
    );
}

#[test]
fn welch_suggests_modest_warmup_for_baseline() {
    let warmup = suggest_warmup(&base(), 7, 3, 50.0);
    // The Table 1 system settles quickly (response time ~50 units); the
    // suggestion must exist and be a small fraction of the horizon.
    let w = warmup.expect("baseline settles");
    assert!(w < 1_000.0, "suggested warmup {w} too large");
}
