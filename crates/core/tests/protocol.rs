//! Protocol-order tests: trace full runs and verify every completed
//! transaction followed the paper's lifecycle exactly.

use lockgran_core::config::LockDistribution;
use lockgran_core::sim::run_traced;
use lockgran_core::{ConflictMode, ModelConfig, TraceEvent};
use lockgran_workload::{Partitioning, Placement};

fn base() -> ModelConfig {
    ModelConfig::table1().with_tmax(400.0)
}

#[test]
fn protocol_holds_at_baseline() {
    let (m, trace) = run_traced(&base(), 1);
    assert!(m.totcom > 0);
    trace.check_protocol().unwrap();
}

#[test]
fn protocol_holds_under_contention() {
    // Single database lock: maximal blocking and retry traffic.
    let (m, trace) = run_traced(&base().with_ltot(1), 2);
    assert!(m.totcom > 0);
    trace.check_protocol().unwrap();
    // There must be real retry activity in the trace.
    let denials = trace
        .events
        .iter()
        .filter(|(_, e)| matches!(e, TraceEvent::Denied { .. }))
        .count();
    let wakes = trace
        .events
        .iter()
        .filter(|(_, e)| matches!(e, TraceEvent::Woken { .. }))
        .count();
    assert!(denials > 0, "serial system produced no denials");
    assert!(wakes > 0, "denials but no wake-ups");
}

#[test]
fn protocol_holds_in_explicit_mode() {
    let (m, trace) = run_traced(&base().with_conflict(ConflictMode::Explicit), 3);
    assert!(m.totcom > 0);
    trace.check_protocol().unwrap();
}

#[test]
fn protocol_holds_across_knobs() {
    for (i, cfg) in [
        base().with_partitioning(Partitioning::Random),
        base().with_placement(Placement::Worst).with_ltot(250),
        base().with_lock_distribution(LockDistribution::EvenSplit),
        base().with_lock_distribution(LockDistribution::SingleProcessor),
        base().with_lock_preemption(false),
        base().with_mpl_limit(Some(3)),
        base().with_liotime(0.0),
    ]
    .into_iter()
    .enumerate()
    {
        let (m, trace) = run_traced(&cfg, i as u64);
        assert!(m.totcom > 0, "config #{i} completed nothing");
        trace
            .check_protocol()
            .unwrap_or_else(|e| panic!("config #{i}: {e}"));
    }
}

#[test]
fn denied_transactions_block_on_live_blockers() {
    // Every Denied{blocker} must name a transaction that was Granted
    // earlier and not yet Completed at the denial instant.
    let (_, trace) = run_traced(&base().with_ltot(5), 9);
    let mut active: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for (_, e) in &trace.events {
        match e {
            TraceEvent::Granted { serial } => {
                active.insert(*serial);
            }
            TraceEvent::Completed { serial } => {
                active.remove(serial);
            }
            TraceEvent::Denied { blocker, .. } => {
                assert!(
                    active.contains(blocker),
                    "denied on {blocker}, which is not active"
                );
            }
            _ => {}
        }
    }
}

#[test]
fn fanout_matches_partitioning() {
    // Horizontal: every completed transaction touches all processors.
    let (_, trace) = run_traced(&base().with_npros(4), 5);
    let completed: Vec<u64> = trace
        .events
        .iter()
        .filter_map(|(_, e)| match e {
            TraceEvent::Completed { serial } => Some(*serial),
            _ => None,
        })
        .collect();
    assert!(!completed.is_empty());
    for serial in completed {
        let procs: std::collections::BTreeSet<u32> = trace
            .of(serial)
            .iter()
            .filter_map(|e| match e {
                TraceEvent::SubIoDone { proc, .. } => Some(*proc),
                _ => None,
            })
            .collect();
        assert_eq!(
            procs.len(),
            4,
            "txn {serial} did not fan out to all processors"
        );
    }
}

#[test]
fn mpl_limit_caps_concurrent_competitors() {
    // With a cap of 2, at most 2 transactions may be between their first
    // LockRequested and Completed at any time.
    let (_, trace) = run_traced(&base().with_ntrans(8).with_mpl_limit(Some(2)), 7);
    let mut in_flight: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for (_, e) in &trace.events {
        match e {
            TraceEvent::LockRequested { serial, attempt: 1 } => {
                in_flight.insert(*serial);
                assert!(
                    in_flight.len() <= 2,
                    "admission cap violated: {in_flight:?}"
                );
            }
            TraceEvent::Completed { serial } => {
                in_flight.remove(serial);
            }
            _ => {}
        }
    }
}
