//! Calendar queue — an alternative future-event list.
//!
//! The classic DES priority queue of Brown (CACM 1988): events hash into
//! time buckets of fixed width (days of a circular calendar); `pop` scans
//! the current day for an event within the current year, advancing day by
//! day. With bucket width tuned to the mean event spacing, push and pop
//! are O(1) amortized versus the binary heap's O(log n) — the trade-off
//! the `micro_event_queue` bench quantifies.
//!
//! Same contract as [`crate::event::EventQueue`], including **stable FIFO
//! ordering among simultaneous events** (each entry carries a sequence
//! number; buckets are kept sorted by `(time, seq)`).
//!
//! The queue resizes itself (doubling/halving the bucket count and
//! re-estimating the width) when the population strays outside the
//! classic ⌈N/2⌉ … 2N band.

use crate::time::Time;

struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

/// A calendar-queue future-event list (see module docs).
pub struct CalendarQueue<E> {
    buckets: Vec<Vec<Entry<E>>>,
    /// Width of one bucket (one "day"), in ticks. Always ≥ 1.
    width: u64,
    /// Index of the day currently being scanned.
    current: usize,
    /// Start tick of the bucket at `current`.
    bucket_start: u64,
    len: usize,
    next_seq: u64,
    /// Smallest event time ever admissible (monotone pop guarantee).
    last_popped: Time,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// An empty queue with a small default calendar.
    pub fn new() -> Self {
        Self::with_geometry(16, 100)
    }

    /// An empty queue with explicit bucket count and width (ticks).
    ///
    /// # Panics
    /// Panics if `buckets == 0` or `width == 0`.
    pub fn with_geometry(buckets: usize, width: u64) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(width > 0, "bucket width must be positive");
        CalendarQueue {
            buckets: (0..buckets).map(|_| Vec::new()).collect(),
            width,
            current: 0,
            bucket_start: 0,
            len: 0,
            next_seq: 0,
            last_popped: Time::ZERO,
        }
    }

    fn bucket_of(&self, at: Time) -> usize {
        ((at.ticks() / self.width) % self.buckets.len() as u64) as usize
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// In debug builds, panics if `at` precedes the last popped time —
    /// the calendar, like any future-event list, is monotone.
    pub fn push(&mut self, at: Time, event: E) {
        debug_assert!(at >= self.last_popped, "scheduling into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.bucket_of(at);
        let bucket = &mut self.buckets[idx];
        // Insert keeping the bucket sorted by (time, seq); events mostly
        // arrive near the end, so scan from the back.
        let pos = bucket
            .iter()
            .rposition(|e| (e.at, e.seq) < (at, seq))
            .map_or(0, |p| p + 1);
        bucket.insert(pos, Entry { at, seq, event });
        self.len += 1;
        if self.len > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.len == 0 {
            return None;
        }
        let nbuckets = self.buckets.len();
        // Scan at most one full year; fall back to a direct minimum scan
        // if the calendar is sparse (events far in the future).
        for _ in 0..nbuckets {
            let year_end = self.bucket_start + self.width;
            let head_in_day = self.buckets[self.current]
                .first()
                .is_some_and(|e| e.at.ticks() < year_end);
            if head_in_day {
                let entry = self.buckets[self.current].remove(0);
                self.len -= 1;
                self.last_popped = entry.at;
                if self.len < self.buckets.len() / 2 && self.buckets.len() > 16 {
                    self.resize(self.buckets.len() / 2);
                }
                return Some((entry.at, entry.event));
            }
            self.current = (self.current + 1) % nbuckets;
            self.bucket_start += self.width;
        }
        // Sparse case: find the global minimum directly.
        let (idx, _) = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.first().map(|e| (i, (e.at, e.seq))))
            .min_by_key(|&(_, key)| key)
            // lint:allow(P001): `len > 0` was checked at entry; an empty
            // calendar cannot reach the sparse path
            .expect("len > 0 implies a head exists");
        let entry = self.buckets[idx].remove(0);
        self.len -= 1;
        self.last_popped = entry.at;
        // Re-anchor the calendar at the popped time.
        self.current = self.bucket_of(entry.at);
        self.bucket_start = (entry.at.ticks() / self.width) * self.width;
        Some((entry.at, entry.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn resize(&mut self, new_buckets: usize) {
        // Re-estimate width from the average spacing of a sample of the
        // queue contents (Brown's heuristic, simplified: span / count).
        let mut times: Vec<u64> = self
            .buckets
            .iter()
            .flat_map(|b| b.iter().map(|e| e.at.ticks()))
            .collect();
        times.sort_unstable();
        let width = match (times.first(), times.last()) {
            (Some(&lo), Some(&hi)) if hi > lo && times.len() > 1 => {
                (3 * (hi - lo) / times.len() as u64).max(1)
            }
            _ => self.width,
        };
        let mut entries: Vec<Entry<E>> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        entries.sort_by_key(|e| (e.at, e.seq));
        self.buckets = (0..new_buckets).map(|_| Vec::new()).collect();
        self.width = width;
        self.len = 0;
        let anchor = self.last_popped;
        self.current = ((anchor.ticks() / width) % new_buckets as u64) as usize;
        self.bucket_start = (anchor.ticks() / width) * width;
        let seq_backup = self.next_seq;
        for e in entries {
            // Re-push preserving original sequence numbers for stability.
            let idx = self.bucket_of(e.at);
            self.buckets[idx].push(e);
            self.len += 1;
        }
        self.next_seq = seq_backup;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.push(Time::from_ticks(300), "c");
        q.push(Time::from_ticks(100), "a");
        q.push(Time::from_ticks(200), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = CalendarQueue::new();
        let t = Time::from_ticks(500);
        for i in 0..200 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn agrees_with_binary_heap_on_random_workload() {
        use crate::event::EventQueue;
        use crate::rng::SimRng;
        let mut rng = SimRng::new(31);
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        let mut clock = 0u64;
        let mut id = 0u64;
        for _ in 0..5_000 {
            // Interleave pushes and pops the way a simulation would.
            let pushes = rng.uniform_inclusive(0, 3);
            for _ in 0..pushes {
                let at = Time::from_ticks(clock + rng.uniform_inclusive(0, 500));
                cal.push(at, id);
                heap.push(at, id);
                id += 1;
            }
            if rng.bernoulli(0.7) {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(
                    a.as_ref().map(|(t, e)| (*t, *e)),
                    b.as_ref().map(|(t, e)| (*t, *e))
                );
                if let Some((t, _)) = a {
                    clock = t.ticks();
                }
            }
        }
        // Drain both completely.
        loop {
            let a = cal.pop();
            let b = heap.pop();
            assert_eq!(
                a.as_ref().map(|(t, e)| (*t, *e)),
                b.as_ref().map(|(t, e)| (*t, *e))
            );
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn survives_resize_up_and_down() {
        let mut q = CalendarQueue::with_geometry(16, 10);
        for i in 0..10_000u64 {
            q.push(Time::from_ticks(i * 3), i);
        }
        assert_eq!(q.len(), 10_000);
        let mut prev = 0u64;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t.ticks() >= prev);
            prev = t.ticks();
            count += 1;
        }
        assert_eq!(count, 10_000);
        assert!(q.is_empty());
    }

    #[test]
    fn sparse_far_future_events_found() {
        let mut q = CalendarQueue::with_geometry(16, 10);
        q.push(Time::from_ticks(1_000_000), "far");
        q.push(Time::from_ticks(2_000_000), "farther");
        assert_eq!(q.pop().map(|(_, e)| e), Some("far"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("farther"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn zero_time_events() {
        let mut q = CalendarQueue::new();
        q.push(Time::ZERO, 1);
        q.push(Time::ZERO, 2);
        assert_eq!(q.pop(), Some((Time::ZERO, 1)));
        assert_eq!(q.pop(), Some((Time::ZERO, 2)));
    }
}
