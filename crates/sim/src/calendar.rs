//! Calendar queue — the production future-event list.
//!
//! The classic DES priority queue of Brown (CACM 1988): events hash into
//! time buckets of fixed width (days of a circular calendar); `pop` scans
//! the current day for an event within the current year, advancing day by
//! day. With bucket width tuned to the mean event spacing, push and pop
//! are O(1) amortized versus the binary heap's O(log n) — the trade-off
//! the `micro_event_queue` bench quantifies.
//!
//! Same contract as [`crate::event::EventQueue`], including **stable FIFO
//! ordering among simultaneous events** (each entry carries a sequence
//! number; buckets are kept sorted by `(time, seq)`). Buckets are
//! `VecDeque`s so popping the head is O(1) rather than the O(n)
//! front-shift a `Vec::remove(0)` would cost.
//!
//! The queue resizes itself (doubling/halving the bucket count and
//! re-estimating the width) when the population strays outside the
//! N/4 … 2N band — wider than Brown's classic N/2 lower edge so that a
//! workload whose population breathes by a few × settles on one geometry
//! instead of thrashing. A resize merges the already-sorted buckets
//! (k-way, O(n log k)) instead of re-sorting every entry from scratch,
//! and recycles all of its working storage, so steady-state operation is
//! allocation-free (`tests/steady_state_alloc.rs` enforces this).

use crate::time::Time;
use std::collections::VecDeque;

struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

/// A calendar-queue future-event list (see module docs).
pub struct CalendarQueue<E> {
    buckets: Vec<VecDeque<Entry<E>>>,
    /// Width of one bucket (one "day"), in ticks. Always ≥ 1.
    width: u64,
    /// Index of the day currently being scanned.
    current: usize,
    /// Start tick of the bucket at `current`.
    bucket_start: u64,
    len: usize,
    next_seq: u64,
    /// Smallest event time ever admissible (monotone pop guarantee).
    last_popped: Time,
    /// Retired bucket deques (capacity kept) for reuse by the next resize,
    /// so a steady-state resize touches the heap zero times.
    spare: Vec<VecDeque<Entry<E>>>,
    /// Resize scratch: the merged entry stream (drained every resize).
    merge_scratch: Vec<Entry<E>>,
    /// Resize scratch: backing storage for the k-way merge heap.
    heads_scratch: Vec<std::cmp::Reverse<(Time, u64, usize)>>,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// An empty queue with a small default calendar.
    pub fn new() -> Self {
        Self::with_geometry(16, 100)
    }

    /// An empty queue with explicit bucket count and width (ticks).
    ///
    /// # Panics
    /// Panics if `buckets == 0` or `width == 0`.
    pub fn with_geometry(buckets: usize, width: u64) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(width > 0, "bucket width must be positive");
        CalendarQueue {
            buckets: (0..buckets).map(|_| VecDeque::new()).collect(),
            width,
            current: 0,
            bucket_start: 0,
            len: 0,
            next_seq: 0,
            last_popped: Time::ZERO,
            spare: Vec::new(),
            merge_scratch: Vec::new(),
            heads_scratch: Vec::new(),
        }
    }

    fn bucket_of(&self, at: Time) -> usize {
        ((at.ticks() / self.width) % self.buckets.len() as u64) as usize
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// In debug builds, panics if `at` precedes the last popped time —
    /// the calendar, like any future-event list, is monotone.
    pub fn push(&mut self, at: Time, event: E) {
        debug_assert!(at >= self.last_popped, "scheduling into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.bucket_of(at);
        let bucket = &mut self.buckets[idx];
        // Insert keeping the bucket sorted by (time, seq); events mostly
        // arrive near the end, so scan from the back.
        let pos = bucket
            .iter()
            .rposition(|e| (e.at, e.seq) < (at, seq))
            .map_or(0, |p| p + 1);
        bucket.insert(pos, Entry { at, seq, event });
        self.len += 1;
        if self.len > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Advance the day cursor until the head of the current bucket is the
    /// earliest pending event, then return that bucket's index.
    ///
    /// Idempotent: once positioned, calling it again finds the head in-day
    /// immediately and changes nothing — which is what lets `peek_time`
    /// share it with `pop`.
    fn locate(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        let nbuckets = self.buckets.len();
        // Scan at most one full year; fall back to a direct minimum scan
        // if the calendar is sparse (events far in the future).
        for _ in 0..nbuckets {
            let day_end = self.bucket_start + self.width;
            let head_in_day = self.buckets[self.current]
                .front()
                .is_some_and(|e| e.at.ticks() < day_end);
            if head_in_day {
                return Some(self.current);
            }
            self.current = (self.current + 1) % nbuckets;
            self.bucket_start += self.width;
        }
        // Sparse case: find the global minimum directly and re-anchor the
        // calendar there; the head then falls inside the current day.
        let (idx, (at, _)) = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.front().map(|e| (i, (e.at, e.seq))))
            .min_by_key(|&(_, key)| key)
            // lint:allow(P001): `len > 0` was checked at entry; an empty
            // calendar cannot reach the sparse path
            .expect("len > 0 implies a head exists");
        self.current = idx;
        self.bucket_start = (at.ticks() / self.width) * self.width;
        Some(idx)
    }

    /// Time of the earliest event without removing it.
    ///
    /// Takes `&mut self` because finding the minimum advances the day
    /// cursor; the queue contents are untouched.
    pub fn peek_time(&mut self) -> Option<Time> {
        let idx = self.locate()?;
        self.buckets[idx].front().map(|e| e.at)
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let idx = self.locate()?;
        let entry = self.buckets[idx]
            .pop_front()
            // lint:allow(P001): locate() only returns buckets with a head
            .expect("locate() returned a non-empty bucket");
        self.len -= 1;
        self.last_popped = entry.at;
        // Shrink at a quarter, not half: growth triggers at 2N, so a half
        // threshold leaves only a 4× band and a workload whose FEL
        // "breathes" by a few × thrashes between two geometries forever
        // (an O(n) merge each time). The 8× band lets it settle.
        if self.len < self.buckets.len() / 4 && self.buckets.len() > 16 {
            self.resize(self.buckets.len() / 2);
        }
        Some((entry.at, entry.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop every pending event and rewind the clock to [`Time::ZERO`],
    /// keeping the grown calendar geometry (bucket count and width) and
    /// every bucket's allocation for reuse. Retaining the geometry is
    /// safe for bit-identity: pop order is the total `(time, seq)` order
    /// regardless of how events hash into days, so a recycled calendar
    /// drives a model through the identical event sequence a fresh one
    /// would — it just skips re-growing to the workload's natural size.
    pub fn clear(&mut self) {
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.current = 0;
        self.bucket_start = 0;
        self.len = 0;
        self.next_seq = 0;
        self.last_popped = Time::ZERO;
    }

    fn resize(&mut self, new_buckets: usize) {
        // Re-estimate width from the average spacing of the queue contents
        // (Brown's heuristic, simplified: span / count). Min and max come
        // from a direct scan — no need to sort anything for that.
        let lo = self
            .buckets
            .iter()
            .flat_map(|b| b.iter().map(|e| e.at.ticks()))
            .min();
        let hi = self
            .buckets
            .iter()
            .flat_map(|b| b.iter().map(|e| e.at.ticks()))
            .max();
        let width = match (lo, hi) {
            (Some(lo), Some(hi)) if hi > lo && self.len > 1 => {
                (3 * (hi - lo) / self.len as u64).max(1)
            }
            _ => self.width,
        };
        // Each bucket is already sorted by (time, seq); a k-way merge over
        // the bucket heads yields the globally sorted stream in O(n log k)
        // without comparing entries that never interleave. All three pieces
        // of working storage (merge heap, merged stream, bucket deques) are
        // recycled across resizes, so in steady state — where the FEL can
        // cross the resize band repeatedly — a resize allocates nothing.
        let mut head_storage = std::mem::take(&mut self.heads_scratch);
        head_storage.clear();
        head_storage.extend(
            self.buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| b.front().map(|e| std::cmp::Reverse((e.at, e.seq, i)))),
        );
        let mut heads = std::collections::BinaryHeap::from(head_storage);
        let mut merged = std::mem::take(&mut self.merge_scratch);
        merged.clear();
        while let Some(std::cmp::Reverse((_, _, i))) = heads.pop() {
            let entry = self.buckets[i]
                .pop_front()
                // lint:allow(P001): a bucket index only enters the merge
                // heap while that bucket has a head
                .expect("merge heap tracks non-empty buckets");
            if let Some(next) = self.buckets[i].front() {
                heads.push(std::cmp::Reverse((next.at, next.seq, i)));
            }
            merged.push(entry);
        }
        // Adjust the (now all-empty) bucket array, parking surplus deques
        // in the spare pool and drawing shortfalls back out of it.
        while self.buckets.len() > new_buckets {
            if let Some(d) = self.buckets.pop() {
                self.spare.push(d);
            }
        }
        while self.buckets.len() < new_buckets {
            self.buckets.push(self.spare.pop().unwrap_or_default());
        }
        self.width = width;
        let anchor = self.last_popped;
        self.current = ((anchor.ticks() / width) % new_buckets as u64) as usize;
        self.bucket_start = (anchor.ticks() / width) * width;
        for entry in merged.drain(..) {
            // The merged stream is globally sorted, so appending keeps
            // every destination bucket sorted; original seqs are kept so
            // FIFO ties survive the resize.
            let idx = self.bucket_of(entry.at);
            self.buckets[idx].push_back(entry);
        }
        self.merge_scratch = merged;
        self.heads_scratch = heads.into_vec();
        // `len` and `next_seq` are unchanged: every entry was moved.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        q.push(Time::from_ticks(300), "c");
        q.push(Time::from_ticks(100), "a");
        q.push(Time::from_ticks(200), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = CalendarQueue::new();
        let t = Time::from_ticks(500);
        for i in 0..200 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn agrees_with_binary_heap_on_random_workload() {
        use crate::event::EventQueue;
        use crate::rng::SimRng;
        let mut rng = SimRng::new(31);
        let mut cal = CalendarQueue::new();
        let mut heap = EventQueue::new();
        let mut clock = 0u64;
        let mut id = 0u64;
        for _ in 0..5_000 {
            // Interleave pushes and pops the way a simulation would.
            let pushes = rng.uniform_inclusive(0, 3);
            for _ in 0..pushes {
                let at = Time::from_ticks(clock + rng.uniform_inclusive(0, 500));
                cal.push(at, id);
                heap.push(at, id);
                id += 1;
            }
            if rng.bernoulli(0.7) {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(
                    a.as_ref().map(|(t, e)| (*t, *e)),
                    b.as_ref().map(|(t, e)| (*t, *e))
                );
                if let Some((t, _)) = a {
                    clock = t.ticks();
                }
            }
        }
        // Drain both completely.
        loop {
            let a = cal.pop();
            let b = heap.pop();
            assert_eq!(
                a.as_ref().map(|(t, e)| (*t, *e)),
                b.as_ref().map(|(t, e)| (*t, *e))
            );
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn peek_matches_pop_and_leaves_queue_intact() {
        use crate::rng::SimRng;
        let mut rng = SimRng::new(47);
        let mut q = CalendarQueue::with_geometry(16, 10);
        let mut clock = 0u64;
        for i in 0..2_000u64 {
            q.push(Time::from_ticks(clock + rng.uniform_inclusive(0, 300)), i);
            if rng.bernoulli(0.6) {
                let before = q.len();
                let peeked = q.peek_time();
                // Peeking twice is idempotent and removes nothing.
                assert_eq!(q.peek_time(), peeked);
                assert_eq!(q.len(), before);
                let (t, _) = q.pop().unwrap();
                assert_eq!(peeked, Some(t));
                clock = t.ticks();
            }
        }
        while let Some(t) = q.peek_time() {
            assert_eq!(q.pop().map(|(at, _)| at), Some(t));
        }
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn survives_resize_up_and_down() {
        let mut q = CalendarQueue::with_geometry(16, 10);
        for i in 0..10_000u64 {
            q.push(Time::from_ticks(i * 3), i);
        }
        assert_eq!(q.len(), 10_000);
        let mut prev = 0u64;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t.ticks() >= prev);
            prev = t.ticks();
            count += 1;
        }
        assert_eq!(count, 10_000);
        assert!(q.is_empty());
    }

    /// Resize keeps the `(time, seq)` order exactly: a workload of heavy
    /// ties (many simultaneous events) pushed through both the doubling
    /// and halving paths drains in strict FIFO-per-time order.
    #[test]
    fn resize_preserves_time_seq_order() {
        use crate::rng::SimRng;
        let mut rng = SimRng::new(83);
        let mut q = CalendarQueue::with_geometry(16, 5);
        let mut pushed: Vec<(u64, u64)> = Vec::new();
        // Grow far past several doubling thresholds with heavy ties.
        for id in 0..4_000u64 {
            let t = rng.uniform_inclusive(0, 40); // only 41 distinct times
            q.push(Time::from_ticks(t), id);
            pushed.push((t, id));
        }
        // Expected order: stable sort by time keeps push order per time,
        // which is exactly (time, seq) because seq is the push counter.
        pushed.sort_by_key(|&(t, _)| t);
        // Drain fully — the shrink path runs repeatedly on the way down.
        let mut drained = Vec::new();
        while let Some((t, id)) = q.pop() {
            drained.push((t.ticks(), id));
        }
        assert_eq!(drained, pushed);
    }

    /// Seeded property test: random interleaved push/peek/pop traffic with
    /// time plateaus (forcing ties) and bursts (forcing resizes in both
    /// directions) must agree with the binary-heap FEL at every step.
    #[test]
    fn prop_agrees_with_heap_through_resizes() {
        use crate::event::EventQueue;
        use crate::rng::SimRng;
        for case in 0..40u64 {
            let mut rng = SimRng::new(9_000 + case);
            let mut cal = CalendarQueue::with_geometry(16, 1 + (case % 7) * 3);
            let mut heap = EventQueue::new();
            let mut clock = 0u64;
            let mut id = 0u64;
            for _ in 0..600 {
                // Bursts grow the queue past resize-up; drain phases pull
                // it back down through resize-down.
                let burst = if rng.bernoulli(0.1) {
                    rng.uniform_inclusive(20, 60)
                } else {
                    rng.uniform_inclusive(0, 2)
                };
                for _ in 0..burst {
                    let dt = if rng.bernoulli(0.3) {
                        0 // plateau: simultaneous events
                    } else {
                        rng.uniform_inclusive(0, 200)
                    };
                    let at = Time::from_ticks(clock + dt);
                    cal.push(at, id);
                    heap.push(at, id);
                    id += 1;
                }
                let drains = rng.uniform_inclusive(0, 8);
                for _ in 0..drains {
                    assert_eq!(cal.peek_time(), heap.peek_time());
                    let a = cal.pop();
                    let b = heap.pop();
                    assert_eq!(
                        a.as_ref().map(|(t, e)| (*t, *e)),
                        b.as_ref().map(|(t, e)| (*t, *e)),
                        "diverged in case {case}"
                    );
                    if let Some((t, _)) = a {
                        clock = t.ticks();
                    }
                }
            }
            loop {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(
                    a.as_ref().map(|(t, e)| (*t, *e)),
                    b.as_ref().map(|(t, e)| (*t, *e))
                );
                if a.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn sparse_far_future_events_found() {
        let mut q = CalendarQueue::with_geometry(16, 10);
        q.push(Time::from_ticks(1_000_000), "far");
        q.push(Time::from_ticks(2_000_000), "farther");
        assert_eq!(q.peek_time(), Some(Time::from_ticks(1_000_000)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("far"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("farther"));
        assert_eq!(q.pop(), None);
    }

    /// A cleared calendar — even one whose geometry grew and whose clock
    /// advanced far past zero — must drain a fresh workload in exactly the
    /// order a brand-new queue would.
    #[test]
    fn clear_matches_fresh_queue_after_growth() {
        use crate::rng::SimRng;
        let mut grown = CalendarQueue::with_geometry(16, 5);
        for i in 0..5_000u64 {
            grown.push(Time::from_ticks(i * 7), i);
        }
        while grown.pop().is_some() {}
        grown.clear();
        assert!(grown.is_empty());
        assert_eq!(grown.peek_time(), None);

        let mut fresh = CalendarQueue::with_geometry(16, 5);
        let mut rng = SimRng::new(271);
        let mut clock = 0u64;
        for id in 0..3_000u64 {
            let dt = if rng.bernoulli(0.3) {
                0
            } else {
                rng.uniform_inclusive(0, 120)
            };
            let at = Time::from_ticks(clock + dt);
            grown.push(at, id);
            fresh.push(at, id);
            if rng.bernoulli(0.5) {
                let a = grown.pop();
                let b = fresh.pop();
                assert_eq!(
                    a.as_ref().map(|(t, e)| (*t, *e)),
                    b.as_ref().map(|(t, e)| (*t, *e))
                );
                if let Some((t, _)) = a {
                    clock = t.ticks();
                }
            }
        }
        loop {
            let a = grown.pop();
            let b = fresh.pop();
            assert_eq!(
                a.as_ref().map(|(t, e)| (*t, *e)),
                b.as_ref().map(|(t, e)| (*t, *e))
            );
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn zero_time_events() {
        let mut q = CalendarQueue::new();
        q.push(Time::ZERO, 1);
        q.push(Time::ZERO, 2);
        assert_eq!(q.pop(), Some((Time::ZERO, 1)));
        assert_eq!(q.pop(), Some((Time::ZERO, 2)));
    }
}
