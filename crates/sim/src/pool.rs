//! Deterministic fixed-size worker pool (indexed scatter/gather).
//!
//! The experiment harness runs many *independent* simulations — every
//! `(ltot, replication)` pair of a sweep, every figure of the CLI suite.
//! Each simulation is a pure function of `(config, seed)`, so fanning the
//! work out over threads can never change a single output bit **provided
//! the results are reassembled by submission index, not by completion
//! order**. [`WorkerPool`] implements exactly that discipline:
//!
//! * a fixed number of `std::thread` workers (no external crates, no
//!   channels) pull task indices from a shared atomic cursor;
//! * every result is written into the slot of its *submission* index;
//! * [`WorkerPool::run`] returns the results in submission order, no
//!   matter which worker finished first.
//!
//! With `jobs = 1` the pool degenerates to a plain in-order loop on the
//! calling thread — byte-for-byte the sequential behavior, useful both as
//! the reproducibility baseline and under debuggers.
//!
//! This module is the **only** place in the workspace allowed to touch
//! raw threading primitives; lint rule D004 enforces that everything else
//! goes through the pool (see `crates/lint`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "LOCKGRAN_JOBS";

/// A task that panicked inside [`WorkerPool::try_run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskPanic {
    /// Submission index of the failed task.
    pub index: usize,
    /// The panic payload rendered as text (`&str` / `String` payloads
    /// verbatim; anything else as a placeholder).
    pub message: String,
}

impl std::fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task #{} panicked: {}", self.index, self.message)
    }
}

/// Render a caught panic payload as text.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A fixed-size worker pool with deterministic result ordering.
#[derive(Clone, Debug)]
pub struct WorkerPool {
    jobs: usize,
}

impl WorkerPool {
    /// A pool with exactly `jobs` workers (`0` is clamped to `1`).
    pub fn new(jobs: usize) -> Self {
        WorkerPool { jobs: jobs.max(1) }
    }

    /// The host's available parallelism (`1` if it cannot be queried).
    pub fn available_parallelism() -> usize {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }

    /// Resolve a job count: `Some(n)` is used as given; `None` falls back
    /// to the `LOCKGRAN_JOBS` environment variable, then to the host's
    /// available parallelism. The returned value is always ≥ 1.
    ///
    /// A set-but-unparsable `LOCKGRAN_JOBS` is *not* silently ignored: a
    /// one-line warning goes to stderr before falling back, so a typo like
    /// `LOCKGRAN_JOBS=4x` is visible instead of quietly changing the
    /// worker count.
    pub fn resolve_jobs(requested: Option<usize>) -> usize {
        if let Some(n) = requested {
            return n.max(1);
        }
        if let Some(v) = std::env::var_os(JOBS_ENV) {
            match Self::parse_jobs(&v.to_string_lossy()) {
                Ok(n) => return n,
                Err(e) => eprintln!(
                    "warning: ignoring {JOBS_ENV}={}: {e}; falling back to available parallelism",
                    v.to_string_lossy()
                ),
            }
        }
        Self::available_parallelism()
    }

    /// Parse a `LOCKGRAN_JOBS`-style value into a worker count ≥ 1.
    /// Factored out of [`WorkerPool::resolve_jobs`] so the parse rules are
    /// testable without mutating process-global environment state.
    pub fn parse_jobs(value: &str) -> Result<usize, String> {
        match value.trim().parse::<usize>() {
            Ok(n) => Ok(n.max(1)),
            Err(_) => Err(format!("expected a non-negative integer, got '{value}'")),
        }
    }

    /// Number of workers this pool runs.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Execute every task, returning results **in submission order**.
    ///
    /// Tasks are claimed by workers from a shared cursor (so long tasks
    /// do not serialize behind each other), but each result lands in the
    /// slot of its submission index; completion order is invisible to the
    /// caller. A task panic propagates to the caller after the scope
    /// joins.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        if self.jobs == 1 || n <= 1 {
            // Sequential baseline: exactly the pre-pool behavior.
            return tasks.into_iter().map(|t| t()).collect();
        }

        // Scatter: one mutex'd cell per task so a worker can take
        // ownership of the `FnOnce` it claimed; one shared cursor hands
        // out indices.
        let cells: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let cursor = AtomicUsize::new(0);
        // Gather: results accumulate per worker and merge into indexed
        // slots, so the output order is the submission order.
        let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());

        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(n) {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let task = cells[i]
                            .lock()
                            // lint:allow(P001): a poisoned cell means a
                            // sibling task panicked; propagating is correct
                            .expect("task cell poisoned")
                            .take()
                            // lint:allow(P001): the cursor hands out each
                            // index exactly once
                            .expect("task claimed twice");
                        local.push((i, task()));
                    }
                    let mut merged = slots
                        .lock()
                        // lint:allow(P001): a poisoned gather means a
                        // sibling task panicked; propagating is correct
                        .expect("result slots poisoned");
                    for (i, v) in local {
                        merged[i] = Some(v);
                    }
                });
            }
        });

        slots
            .into_inner()
            // lint:allow(P001): all workers joined without panicking above
            .expect("result slots poisoned")
            .into_iter()
            // lint:allow(P001): every index was claimed and merged exactly once
            .map(|slot| slot.expect("task produced no result"))
            .collect()
    }

    /// Execute every task with per-task panic isolation, returning one
    /// `Result` per task **in submission order**.
    ///
    /// Unlike [`WorkerPool::run`], a panicking task does not abort the
    /// batch (or poison sibling workers): each task runs under
    /// `catch_unwind`, so a poisoned input degrades to an `Err` carrying
    /// the submission index and the panic payload while every other task
    /// completes normally. The scheduling discipline (shared cursor,
    /// indexed gather, sequential `jobs = 1` baseline) is exactly `run`'s.
    pub fn try_run<T, F>(&self, tasks: Vec<F>) -> Vec<Result<T, TaskPanic>>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let wrapped: Vec<_> = tasks
            .into_iter()
            .enumerate()
            .map(|(index, task)| {
                move || {
                    catch_unwind(AssertUnwindSafe(task)).map_err(|payload| TaskPanic {
                        index,
                        message: panic_message(payload.as_ref()),
                    })
                }
            })
            .collect();
        self.run(wrapped)
    }

    /// Execute every task against a per-worker scratch state, with
    /// per-task panic isolation, returning one `Result` per task **in
    /// submission order**.
    ///
    /// `mk` builds one state per worker thread (one on the calling thread
    /// in the sequential `jobs = 1` baseline); each task gets `&mut` to
    /// the state of whichever worker claimed it. This is how the sweep
    /// harness threads reusable run arenas through the pool. The state is
    /// *scratch*: which tasks share a state depends on the job count and
    /// claim timing, so a task's result must not observably depend on the
    /// state's history — that is exactly the reset-equals-fresh contract
    /// `tests/parallel_determinism.rs` enforces end to end. After a caught
    /// panic the worker's state is discarded and rebuilt with `mk`, since
    /// the panic may have left it mid-mutation.
    pub fn try_run_with_state<S, T, F, M>(&self, mk: M, tasks: Vec<F>) -> Vec<Result<T, TaskPanic>>
    where
        T: Send,
        F: FnOnce(&mut S) -> T + Send,
        M: Fn() -> S + Sync,
    {
        let n = tasks.len();
        if self.jobs == 1 || n <= 1 {
            let mut state = mk();
            let mut out = Vec::with_capacity(n);
            for (index, task) in tasks.into_iter().enumerate() {
                match catch_unwind(AssertUnwindSafe(|| task(&mut state))) {
                    Ok(v) => out.push(Ok(v)),
                    Err(payload) => {
                        state = mk();
                        out.push(Err(TaskPanic {
                            index,
                            message: panic_message(payload.as_ref()),
                        }));
                    }
                }
            }
            return out;
        }

        let cells: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<Result<T, TaskPanic>>>> =
            Mutex::new((0..n).map(|_| None).collect());

        std::thread::scope(|scope| {
            for _ in 0..self.jobs.min(n) {
                scope.spawn(|| {
                    let mut state = mk();
                    let mut local: Vec<(usize, Result<T, TaskPanic>)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let task = cells[i]
                            .lock()
                            // lint:allow(P001): a poisoned cell means a
                            // sibling task panicked; propagating is correct
                            .expect("task cell poisoned")
                            .take()
                            // lint:allow(P001): the cursor hands out each
                            // index exactly once
                            .expect("task claimed twice");
                        match catch_unwind(AssertUnwindSafe(|| task(&mut state))) {
                            Ok(v) => local.push((i, Ok(v))),
                            Err(payload) => {
                                state = mk();
                                local.push((
                                    i,
                                    Err(TaskPanic {
                                        index: i,
                                        message: panic_message(payload.as_ref()),
                                    }),
                                ));
                            }
                        }
                    }
                    let mut merged = slots
                        .lock()
                        // lint:allow(P001): a poisoned gather means a
                        // sibling worker panicked outside catch_unwind;
                        // propagating is correct
                        .expect("result slots poisoned");
                    for (i, v) in local {
                        merged[i] = Some(v);
                    }
                });
            }
        });

        slots
            .into_inner()
            // lint:allow(P001): all workers joined without panicking above
            .expect("result slots poisoned")
            .into_iter()
            // lint:allow(P001): every index was claimed and merged exactly once
            .map(|slot| slot.expect("task produced no result"))
            .collect()
    }
}

impl Default for WorkerPool {
    /// A pool sized by [`WorkerPool::resolve_jobs`]`(None)`.
    fn default() -> Self {
        WorkerPool::new(Self::resolve_jobs(None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Boxed stateful task used by the `try_run_with_state` tests.
    type StatefulTask = Box<dyn FnOnce(&mut u64) -> u64 + Send>;

    #[test]
    fn empty_task_list() {
        let pool = WorkerPool::new(4);
        let out: Vec<u32> = pool.run(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let tasks = |mult: u64| -> Vec<_> {
            (0..64u64)
                .map(|i| move || i.wrapping_mul(mult).wrapping_add(7))
                .collect()
        };
        let seq = WorkerPool::new(1).run(tasks(31));
        for jobs in [2, 3, 8, 64] {
            assert_eq!(WorkerPool::new(jobs).run(tasks(31)), seq, "jobs={jobs}");
        }
    }

    #[test]
    fn more_workers_than_tasks() {
        let out = WorkerPool::new(16).run((0..3u32).map(|i| move || i * i).collect::<Vec<_>>());
        assert_eq!(out, vec![0, 1, 4]);
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).jobs(), 1);
    }

    #[test]
    fn resolve_explicit_request_wins() {
        assert_eq!(WorkerPool::resolve_jobs(Some(5)), 5);
        assert_eq!(WorkerPool::resolve_jobs(Some(0)), 1);
    }

    #[test]
    fn parse_jobs_accepts_integers_and_clamps_zero() {
        assert_eq!(WorkerPool::parse_jobs("4"), Ok(4));
        assert_eq!(WorkerPool::parse_jobs(" 8 "), Ok(8));
        assert_eq!(WorkerPool::parse_jobs("0"), Ok(1));
    }

    #[test]
    fn parse_jobs_rejects_garbage() {
        assert!(WorkerPool::parse_jobs("4x").is_err());
        assert!(WorkerPool::parse_jobs("").is_err());
        assert!(WorkerPool::parse_jobs("-2").is_err());
    }

    #[test]
    fn try_run_isolates_a_panicking_task() {
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> = (0..6u32)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("poisoned input {i}");
                    }
                    i * 10
                }) as Box<dyn FnOnce() -> u32 + Send>
            })
            .collect();
        let out = WorkerPool::new(4).try_run(tasks);
        assert_eq!(out.len(), 6);
        for (i, r) in out.iter().enumerate() {
            if i == 3 {
                let err = r.as_ref().unwrap_err();
                assert_eq!(err.index, 3);
                assert_eq!(err.message, "poisoned input 3");
                assert_eq!(err.to_string(), "task #3 panicked: poisoned input 3");
            } else {
                assert_eq!(*r, Ok(i as u32 * 10));
            }
        }
    }

    #[test]
    fn try_run_sequential_path_also_isolates_panics() {
        let tasks: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            vec![Box::new(|| panic!("first")), Box::new(|| 7)];
        let out = WorkerPool::new(1).try_run(tasks);
        assert!(out[0].is_err());
        assert_eq!(out[1], Ok(7));
    }

    #[test]
    fn try_run_all_ok_matches_run() {
        let mk = || (0..16u64).map(|i| move || i * i).collect::<Vec<_>>();
        let plain = WorkerPool::new(4).run(mk());
        let tried = WorkerPool::new(4).try_run(mk());
        let unwrapped: Vec<u64> = tried.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(plain, unwrapped);
    }

    #[test]
    fn with_state_reuses_state_and_keeps_submission_order() {
        // Each task increments its worker's counter; with one worker the
        // counter threads through every task, proving state reuse. The
        // *results* are still pure functions of the task input.
        let mk_tasks = || -> Vec<StatefulTask> {
            (0..32u64)
                .map(|i| {
                    Box::new(move |calls: &mut u64| {
                        *calls += 1;
                        i * 3
                    }) as StatefulTask
                })
                .collect()
        };
        let seq = WorkerPool::new(1).try_run_with_state(|| 0u64, mk_tasks());
        for jobs in [2, 4, 16] {
            let par = WorkerPool::new(jobs).try_run_with_state(|| 0u64, mk_tasks());
            assert_eq!(par, seq, "jobs={jobs}");
        }
        let values: Vec<u64> = seq.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, (0..32u64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn with_state_rebuilds_state_after_a_panic() {
        // State is a counter of tasks run since construction. Task 2
        // panics; the rebuilt state must restart from zero for later
        // tasks on the same (single) worker.
        let tasks: Vec<StatefulTask> = (0..5u64)
            .map(|i| {
                Box::new(move |since_mk: &mut u64| {
                    if i == 2 {
                        panic!("boom {i}");
                    }
                    *since_mk += 1;
                    *since_mk
                }) as StatefulTask
            })
            .collect();
        let out = WorkerPool::new(1).try_run_with_state(|| 0u64, tasks);
        assert_eq!(out[0], Ok(1));
        assert_eq!(out[1], Ok(2));
        let err = out[2].as_ref().unwrap_err();
        assert_eq!((err.index, err.message.as_str()), (2, "boom 2"));
        // Fresh state after the panic: the count restarts.
        assert_eq!(out[3], Ok(1));
        assert_eq!(out[4], Ok(2));
    }

    #[test]
    fn results_in_submission_order_under_adversarial_timing() {
        // Earlier tasks take the longest: completion order is roughly the
        // reverse of submission order, so any completion-ordered gather
        // would scramble the output.
        let n = 24u64;
        let tasks: Vec<_> = (0..n)
            .map(|i| {
                move || {
                    std::thread::sleep(std::time::Duration::from_millis(2 * (n - i)));
                    i
                }
            })
            .collect();
        let out = WorkerPool::new(8).run(tasks);
        assert_eq!(out, (0..n).collect::<Vec<_>>());
    }
}
