//! Simulated time.
//!
//! Time is measured in integer **ticks**. One *model time unit* (the unit
//! the paper's parameters are expressed in — e.g. `iotime = 0.2`) is
//! [`TICKS_PER_UNIT`] ticks, so the smallest representable interval is
//! 0.001 model units. All of the paper's parameters (`0.2`, `0.1`, `0.05`,
//! `0.01`, `0`) are exactly representable, which keeps event ordering exact
//! and simulations reproducible: there is no floating-point accumulation
//! anywhere on the simulation's critical path.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of clock ticks per model time unit.
pub const TICKS_PER_UNIT: u64 = 1_000;

/// An absolute point in simulated time, in ticks since the start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A non-negative span of simulated time, in ticks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; useful as an "unset horizon".
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from raw ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        Time(ticks)
    }

    /// Construct from model time units (e.g. `Time::from_units(10_000.0)`
    /// for the paper's `tmax`). Rounds to the nearest tick.
    #[inline]
    pub fn from_units(units: f64) -> Self {
        debug_assert!(units >= 0.0, "time cannot be negative");
        Time((units * TICKS_PER_UNIT as f64).round() as u64)
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// This instant expressed in model time units.
    #[inline]
    pub fn units(self) -> f64 {
        self.0 as f64 / TICKS_PER_UNIT as f64
    }

    /// Span from an earlier instant to this one.
    ///
    /// # Panics
    /// In debug builds, panics if `earlier` is after `self`.
    #[inline]
    pub fn since(self, earlier: Time) -> Dur {
        debug_assert!(earlier <= self, "since() called with a later instant");
        Dur(self.0 - earlier.0)
    }

    /// Saturating version of [`Time::since`]: returns zero if `earlier`
    /// is actually later.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    /// The empty span.
    pub const ZERO: Dur = Dur(0);

    /// Construct from raw ticks.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        Dur(ticks)
    }

    /// Construct from model time units; rounds to the nearest tick.
    ///
    /// All parameter values used in the paper (0.2, 0.1, 0.05, 0.01, 0)
    /// convert exactly.
    #[inline]
    pub fn from_units(units: f64) -> Self {
        debug_assert!(units >= 0.0, "durations cannot be negative");
        Dur((units * TICKS_PER_UNIT as f64).round() as u64)
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// This span expressed in model time units.
    #[inline]
    pub fn units(self) -> f64 {
        self.0 as f64 / TICKS_PER_UNIT as f64
    }

    /// True if the span is zero ticks.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiply by an integer count (e.g. per-entity cost × entity count).
    #[inline]
    pub const fn times(self, n: u64) -> Dur {
        Dur(self.0 * n)
    }

    /// Split this span into `n` near-equal shares that sum exactly to the
    /// whole: the first `ticks % n` shares are one tick longer.
    ///
    /// Used to spread lock-processing work across all processors without
    /// losing or inventing ticks ("we assume that processors share the work
    /// for locking mechanism", paper §2).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn split_even(self, n: u64) -> impl Iterator<Item = Dur> {
        assert!(n > 0, "cannot split into zero shares");
        let base = self.0 / n;
        let extra = self.0 % n;
        (0..n).map(move |i| Dur(base + u64::from(i < extra)))
    }

    /// Checked subtraction; `None` if `other` is longer.
    #[inline]
    pub fn checked_sub(self, other: Dur) -> Option<Dur> {
        self.0.checked_sub(other.0).map(Dur)
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        Dur(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.units())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.units())
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}u", self.units())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.units())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversion_is_exact_for_paper_parameters() {
        for &u in &[0.2, 0.1, 0.05, 0.01, 0.0] {
            let d = Dur::from_units(u);
            assert!((d.units() - u).abs() < 1e-12, "{u} did not round-trip");
        }
        assert_eq!(Dur::from_units(0.05).ticks(), 50);
        assert_eq!(Dur::from_units(0.2).ticks(), 200);
        assert_eq!(Dur::from_units(0.0).ticks(), 0);
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::from_units(5.0);
        let d = Dur::from_units(2.5);
        assert_eq!((t + d).units(), 7.5);
        assert_eq!((t + d).since(t), d);
        assert_eq!(t.saturating_since(t + d), Dur::ZERO);
    }

    #[test]
    fn dur_times_scales() {
        // IOtime_i = NU_i * iotime with NU_i = 250, iotime = 0.2 -> 50 units.
        let io = Dur::from_units(0.2).times(250);
        assert_eq!(io.units(), 50.0);
    }

    #[test]
    fn split_even_conserves_total() {
        for total in [0u64, 1, 7, 100, 12_345] {
            for n in [1u64, 2, 3, 7, 30] {
                let d = Dur::from_ticks(total);
                let shares: Vec<Dur> = d.split_even(n).collect();
                assert_eq!(shares.len(), n as usize);
                assert_eq!(shares.iter().copied().sum::<Dur>(), d);
                let max = shares.iter().max().unwrap().ticks();
                let min = shares.iter().min().unwrap().ticks();
                assert!(max - min <= 1, "shares must differ by at most one tick");
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero shares")]
    fn split_even_rejects_zero() {
        let _ = Dur::from_ticks(10).split_even(0).count();
    }

    #[test]
    fn ordering_and_display() {
        assert!(Time::from_units(1.0) < Time::from_units(1.001));
        assert_eq!(format!("{}", Time::from_units(2.5)), "2.5");
        assert_eq!(format!("{:?}", Dur::from_units(0.2)), "0.2u");
    }

    #[test]
    fn checked_sub() {
        let a = Dur::from_ticks(10);
        let b = Dur::from_ticks(4);
        assert_eq!(a.checked_sub(b), Some(Dur::from_ticks(6)));
        assert_eq!(b.checked_sub(a), None);
    }
}
