//! Single-server resource with two priority classes and preemptive-resume
//! scheduling.
//!
//! Each processor in the shared-nothing machine owns one CPU server and one
//! I/O (disk) server. Two job classes exist:
//!
//! * [`Class::Lock`] — lock request/set/release processing. Per the paper,
//!   "the locking mechanism has preemptive power over running transactions
//!   for I/O and CPU resources": a Lock job preempts an in-service
//!   Transaction job, which resumes afterwards with its remaining demand
//!   (preemptive-resume).
//! * [`Class::Transaction`] — sub-transaction I/O or CPU work, served FCFS
//!   within the class.
//!
//! The server is a passive state machine driven by the model: `submit`
//! hands over a job, `on_completion` reports that a previously returned
//! [`Completion`] fired. Because a binary-heap future-event list cannot
//! cheaply delete events, preempted completions are invalidated by a
//! monotone [`Token`]: a stale token is simply ignored when it fires.
//!
//! Busy time is accounted per class as service segments close, which gives
//! the paper's `lockcpus` / `lockios` (Lock-class busy time) and
//! `totcpus` / `totios` (all-class busy time) directly.

use std::collections::VecDeque;

use crate::stats::TimeWeighted;
use crate::time::{Dur, Time};

/// Order in which queued Transaction-class jobs are served. Lock-class
/// work is always FCFS among itself (and ahead of transactions).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Discipline {
    /// First come, first served (the paper's model).
    #[default]
    Fcfs,
    /// Shortest job first among *queued* jobs (non-preemptive): at each
    /// service completion the shortest waiting transaction job starts.
    /// Used to test the paper's §4 remark that sub-transaction-level
    /// scheduling "has only marginal effect" on locking granularity.
    Sjf,
}

/// Identifies the logical owner of a job (e.g. a transaction id plus a
/// sub-transaction index, packed by the model).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct JobId(pub u64);

/// Service priority class.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Class {
    /// Lock management work; preempts `Transaction` work.
    Lock,
    /// Ordinary sub-transaction work; FCFS among itself.
    Transaction,
}

impl Class {
    fn index(self) -> usize {
        match self {
            Class::Lock => 0,
            Class::Transaction => 1,
        }
    }
}

/// A unit of work offered to a server.
#[derive(Clone, Copy, Debug)]
pub struct Job {
    /// Model-level identity, returned unchanged on completion.
    pub id: JobId,
    /// Remaining service demand.
    pub demand: Dur,
    /// Priority class.
    pub class: Class,
}

/// Opaque handle tying a scheduled completion event to a service segment.
/// Stale tokens (from preempted segments) are ignored.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Token(u64);

/// Instruction to the model: schedule a completion event for this server at
/// `at`, carrying `token`.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// Absolute completion time.
    pub at: Time,
    /// Token to present back via [`Server::on_completion`].
    pub token: Token,
}

/// Result of presenting a completion token.
#[derive(Debug)]
pub enum CompletionOutcome {
    /// The token belonged to a preempted segment; nothing happened.
    Stale,
    /// The job finished. If another job started service, its completion
    /// must be scheduled.
    Finished {
        /// The job that completed.
        job: Job,
        /// Completion of the next job now in service, if any.
        next: Option<Completion>,
    },
}

/// Result of cancelling a job by id (see [`Server::cancel`]).
#[derive(Debug)]
pub enum CancelOutcome {
    /// No job with that id is queued or in service.
    NotFound,
    /// The job was waiting in a queue; it never received service.
    Dequeued(Job),
    /// The job was in service. Its partial service is charged as busy
    /// time (the work is genuinely wasted, not refunded), its completion
    /// token is now stale, and if another job started service its
    /// completion must be scheduled.
    InService {
        /// The cancelled job with its *remaining* (unserved) demand.
        job: Job,
        /// Completion of the next job now in service, if any.
        next: Option<Completion>,
    },
}

struct InService {
    job: Job,
    segment_start: Time,
    ends_at: Time,
    token: Token,
}

/// Single-server queueing resource (see module docs).
pub struct Server {
    lock_queue: VecDeque<Job>,
    txn_queue: VecDeque<Job>,
    current: Option<InService>,
    next_token: u64,
    /// Busy time per class: `[Lock, Transaction]`.
    busy: [Dur; 2],
    /// Completed job count per class.
    completed: [u64; 2],
    /// Time-weighted number of jobs present (queued + in service).
    population: TimeWeighted,
    /// Whether Lock-class work preempts an in-service Transaction job.
    preemptive: bool,
    /// Queued-transaction service order.
    discipline: Discipline,
}

impl Default for Server {
    fn default() -> Self {
        Self::new()
    }
}

impl Server {
    /// A fresh, idle server with preemptive lock priority (the paper's
    /// semantics).
    pub fn new() -> Self {
        Server {
            lock_queue: VecDeque::new(),
            txn_queue: VecDeque::new(),
            current: None,
            next_token: 0,
            busy: [Dur::ZERO; 2],
            completed: [0; 2],
            population: TimeWeighted::new(),
            preemptive: true,
            discipline: Discipline::Fcfs,
        }
    }

    /// Set the queued-transaction service discipline.
    #[must_use]
    pub fn with_discipline(mut self, discipline: Discipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// A server where Lock-class work has *non-preemptive* (head-of-line)
    /// priority: it still overtakes every queued Transaction job, but the
    /// job in service finishes first. Ablation of the paper's
    /// "preemptive power" assumption.
    pub fn non_preemptive() -> Self {
        Server {
            preemptive: false,
            ..Server::new()
        }
    }

    /// Restore fresh-construction semantics in place, keeping the queues'
    /// grown capacity: after this the server is observationally identical
    /// to `Server::new()` (or [`Server::non_preemptive`]) with the given
    /// discipline — idle, zero accounting, token counter restarted.
    pub fn reset(&mut self, preemptive: bool, discipline: Discipline) {
        self.lock_queue.clear();
        self.txn_queue.clear();
        self.current = None;
        self.next_token = 0;
        self.busy = [Dur::ZERO; 2];
        self.completed = [0; 2];
        self.population = TimeWeighted::new();
        self.preemptive = preemptive;
        self.discipline = discipline;
    }

    /// Dequeue the next transaction job per the discipline.
    fn pop_txn(&mut self) -> Option<Job> {
        match self.discipline {
            Discipline::Fcfs => self.txn_queue.pop_front(),
            Discipline::Sjf => {
                let idx = self
                    .txn_queue
                    .iter()
                    .enumerate()
                    .min_by_key(|(i, j)| (j.demand, *i))? // stable on ties
                    .0;
                self.txn_queue.remove(idx)
            }
        }
    }

    fn fresh_token(&mut self) -> Token {
        let t = Token(self.next_token);
        self.next_token += 1;
        t
    }

    fn start(&mut self, now: Time, job: Job) -> Completion {
        let token = self.fresh_token();
        let ends_at = now + job.demand;
        self.current = Some(InService {
            job,
            segment_start: now,
            ends_at,
            token,
        });
        Completion { at: ends_at, token }
    }

    /// Close the current service segment at `now`, accounting its busy
    /// time, and return the job with its demand reduced to the unserved
    /// remainder.
    fn close_segment(&mut self, now: Time) -> Job {
        let cur = self
            .current
            .take()
            // lint:allow(P001): private helper; every caller checks the
            // server is busy before closing the segment
            .expect("close_segment with idle server");
        let served = now.since(cur.segment_start);
        self.busy[cur.job.class.index()] += served;
        let mut job = cur.job;
        job.demand = cur.ends_at.since(now); // remaining demand
        job
    }

    /// Offer a job for service. Returns a [`Completion`] to schedule when
    /// the job (or, after a preemption, the new head-of-line job) enters
    /// service; `None` if the job merely queued.
    ///
    /// Zero-demand jobs are legal (the paper's `liotime = 0` case) and
    /// complete at their service start instant.
    pub fn submit(&mut self, now: Time, job: Job) -> Option<Completion> {
        self.population
            .record(now, self.jobs_present() as f64 + 1.0);
        match (&self.current, job.class) {
            (None, _) => Some(self.start(now, job)),
            (Some(cur), Class::Lock) if self.preemptive && cur.job.class == Class::Transaction => {
                // Preemptive-resume: park the transaction job at the head
                // of its queue with only its remaining demand.
                let preempted = self.close_segment(now);
                self.txn_queue.push_front(preempted);
                Some(self.start(now, job))
            }
            (Some(_), Class::Lock) => {
                // Lock work does not preempt lock work: FCFS within class.
                self.lock_queue.push_back(job);
                None
            }
            (Some(_), Class::Transaction) => {
                self.txn_queue.push_back(job);
                None
            }
        }
    }

    /// Present a fired completion token.
    pub fn on_completion(&mut self, now: Time, token: Token) -> CompletionOutcome {
        match &self.current {
            Some(cur) if cur.token == token => {
                debug_assert_eq!(cur.ends_at, now, "completion fired at the wrong time");
                let finished = self.close_segment(now);
                debug_assert!(finished.demand.is_zero());
                self.completed[finished.class.index()] += 1;
                let next = self
                    .lock_queue
                    .pop_front()
                    .or_else(|| self.pop_txn())
                    .map(|j| self.start(now, j));
                self.population.record(now, self.jobs_present() as f64);
                CompletionOutcome::Finished {
                    job: finished,
                    next,
                }
            }
            _ => CompletionOutcome::Stale,
        }
    }

    /// Remove a job by id, wherever it is (in service or queued).
    ///
    /// Used by the failure model to withdraw a dead transaction's work. A
    /// queued job simply leaves its queue; an in-service job has its
    /// segment closed at `now` (charging the partial service as busy
    /// time — failed work costs real resource time) and the next
    /// head-of-line job, if any, enters service. The cancelled job's old
    /// completion token becomes stale automatically, since only the
    /// current segment's token is honoured by [`Server::on_completion`].
    pub fn cancel(&mut self, now: Time, id: JobId) -> CancelOutcome {
        if self.current.as_ref().is_some_and(|cur| cur.job.id == id) {
            let job = self.close_segment(now);
            let next = self
                .lock_queue
                .pop_front()
                .or_else(|| self.pop_txn())
                .map(|j| self.start(now, j));
            self.population.record(now, self.jobs_present() as f64);
            return CancelOutcome::InService { job, next };
        }
        let dequeued = [&mut self.lock_queue, &mut self.txn_queue]
            .into_iter()
            .find_map(|queue| {
                queue
                    .iter()
                    .position(|j| j.id == id)
                    .and_then(|pos| queue.remove(pos))
            });
        match dequeued {
            Some(job) => {
                self.population.record(now, self.jobs_present() as f64);
                CancelOutcome::Dequeued(job)
            }
            None => CancelOutcome::NotFound,
        }
    }

    /// Jobs present (in service + queued).
    pub fn jobs_present(&self) -> usize {
        usize::from(self.current.is_some()) + self.lock_queue.len() + self.txn_queue.len()
    }

    /// True if no job is in service or queued.
    pub fn is_idle(&self) -> bool {
        self.jobs_present() == 0
    }

    /// Busy time accumulated for a class in *closed* segments. Call
    /// [`Server::flush`] first to include the open segment.
    pub fn busy_time(&self, class: Class) -> Dur {
        self.busy[class.index()]
    }

    /// Total busy time across both classes (closed segments).
    pub fn total_busy(&self) -> Dur {
        self.busy[0] + self.busy[1]
    }

    /// Completed job count for a class.
    pub fn completed(&self, class: Class) -> u64 {
        self.completed[class.index()]
    }

    /// Time-weighted mean number of jobs present up to the last recorded
    /// change (diagnostic).
    pub fn mean_population(&self, now: Time) -> f64 {
        self.population.mean_at(now)
    }

    /// Account the open service segment up to `now` (without completing
    /// the job). Used at the measurement horizon so that busy-time
    /// counters cover work in flight. The in-service job, its token and
    /// its completion time are untouched; only the accounting segment is
    /// closed and reopened at `now`.
    pub fn flush(&mut self, now: Time) {
        if let Some(cur) = &mut self.current {
            debug_assert!(cur.segment_start <= now);
            let served = now.since(cur.segment_start);
            self.busy[cur.job.class.index()] += served;
            cur.segment_start = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, ticks: u64, class: Class) -> Job {
        Job {
            id: JobId(id),
            demand: Dur::from_ticks(ticks),
            class,
        }
    }

    #[test]
    fn reset_restores_fresh_semantics() {
        // Abandon a busy server mid-service, reset it, and hold every
        // observable — completion times, token values, accounting — to
        // what a fresh server produces for the same submissions.
        let mut used = Server::new();
        let _ = used.submit(Time::from_ticks(0), job(1, 10, Class::Transaction));
        let _ = used.submit(Time::from_ticks(0), job(2, 7, Class::Lock));
        used.flush(Time::from_ticks(20));
        used.reset(true, Discipline::Fcfs);

        let mut fresh = Server::new();
        assert_eq!(used.jobs_present(), 0);
        assert!(used.is_idle());
        assert_eq!(used.total_busy(), Dur::ZERO);
        for (now, j) in [
            (0u64, job(3, 5, Class::Transaction)),
            (2, job(4, 3, Class::Lock)),
        ] {
            let a = used.submit(Time::from_ticks(now), j);
            let b = fresh.submit(Time::from_ticks(now), j);
            assert_eq!(
                a.map(|c| (c.at, c.token.0)),
                b.map(|c| (c.at, c.token.0)),
                "reset server diverged from fresh at t={now}"
            );
        }
        used.flush(Time::from_ticks(10));
        fresh.flush(Time::from_ticks(10));
        assert_eq!(used.total_busy(), fresh.total_busy());
        assert_eq!(used.jobs_present(), fresh.jobs_present());
    }

    /// Drive a server through a scripted sequence, emulating the event
    /// queue with a sorted list of (time, token).
    struct Harness {
        server: Server,
        pending: Vec<Completion>,
        finished: Vec<(u64, JobId, Class)>,
    }

    impl Harness {
        fn new() -> Self {
            Harness {
                server: Server::new(),
                pending: Vec::new(),
                finished: Vec::new(),
            }
        }

        fn submit(&mut self, now: u64, j: Job) {
            if let Some(c) = self.server.submit(Time::from_ticks(now), j) {
                self.pending.push(c);
            }
        }

        /// Fire all pending completions up to `until`, in time order.
        fn drain(&mut self, until: u64) {
            loop {
                self.pending.sort_by_key(|c| (c.at, c.token.0));
                let Some(idx) = self
                    .pending
                    .iter()
                    .position(|c| c.at <= Time::from_ticks(until))
                else {
                    break;
                };
                let c = self.pending.remove(idx);
                match self.server.on_completion(c.at, c.token) {
                    CompletionOutcome::Stale => {}
                    CompletionOutcome::Finished { job, next } => {
                        self.finished.push((c.at.ticks(), job.id, job.class));
                        if let Some(n) = next {
                            self.pending.push(n);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fcfs_single_class() {
        let mut h = Harness::new();
        h.submit(0, job(1, 10, Class::Transaction));
        h.submit(0, job(2, 5, Class::Transaction));
        h.submit(0, job(3, 1, Class::Transaction));
        h.drain(100);
        assert_eq!(
            h.finished,
            vec![
                (10, JobId(1), Class::Transaction),
                (15, JobId(2), Class::Transaction),
                (16, JobId(3), Class::Transaction),
            ]
        );
        assert_eq!(h.server.busy_time(Class::Transaction), Dur::from_ticks(16));
        assert!(h.server.is_idle());
    }

    #[test]
    fn lock_preempts_transaction_and_resumes() {
        let mut h = Harness::new();
        h.submit(0, job(1, 10, Class::Transaction));
        // At t=4, a lock job of 3 ticks arrives: it runs 4..7, then the
        // transaction resumes with 6 remaining and finishes at 13.
        h.drain(3); // nothing finishes before t=4
        h.submit(4, job(2, 3, Class::Lock));
        h.drain(100);
        assert_eq!(
            h.finished,
            vec![
                (7, JobId(2), Class::Lock),
                (13, JobId(1), Class::Transaction)
            ]
        );
        assert_eq!(h.server.busy_time(Class::Lock), Dur::from_ticks(3));
        assert_eq!(h.server.busy_time(Class::Transaction), Dur::from_ticks(10));
    }

    #[test]
    fn stale_token_after_preemption_is_ignored() {
        let mut server = Server::new();
        let c1 = server
            .submit(Time::from_ticks(0), job(1, 10, Class::Transaction))
            .unwrap();
        let _c2 = server
            .submit(Time::from_ticks(4), job(2, 3, Class::Lock))
            .unwrap();
        // The original completion (t=10) fires but its segment was
        // preempted — must be reported stale, not double-complete.
        match server.on_completion(Time::from_ticks(10), c1.token) {
            CompletionOutcome::Stale => {}
            other => panic!("expected Stale, got {other:?}"),
        }
    }

    #[test]
    fn lock_does_not_preempt_lock() {
        let mut h = Harness::new();
        h.submit(0, job(1, 10, Class::Lock));
        h.submit(2, job(2, 5, Class::Lock));
        h.drain(100);
        assert_eq!(
            h.finished,
            vec![(10, JobId(1), Class::Lock), (15, JobId(2), Class::Lock)]
        );
    }

    #[test]
    fn queued_lock_work_runs_before_queued_transactions() {
        let mut h = Harness::new();
        h.submit(0, job(1, 10, Class::Transaction));
        h.submit(1, job(2, 4, Class::Transaction)); // queued
        h.submit(2, job(3, 2, Class::Lock)); // preempts job 1
        h.submit(3, job(4, 2, Class::Lock)); // queues behind job 3
        h.drain(100);
        // Timeline: txn1 0..2, lock3 2..4, lock4 4..6, txn1 resumes 6..14,
        // txn2 14..18.
        assert_eq!(
            h.finished,
            vec![
                (4, JobId(3), Class::Lock),
                (6, JobId(4), Class::Lock),
                (14, JobId(1), Class::Transaction),
                (18, JobId(2), Class::Transaction),
            ]
        );
    }

    #[test]
    fn zero_demand_job_completes_at_start_instant() {
        let mut h = Harness::new();
        h.submit(5, job(1, 0, Class::Lock));
        h.drain(5);
        assert_eq!(h.finished, vec![(5, JobId(1), Class::Lock)]);
        assert!(h.server.is_idle());
    }

    #[test]
    fn multiple_preemptions_preserve_total_demand() {
        let mut h = Harness::new();
        h.submit(0, job(1, 100, Class::Transaction));
        for k in 0..5u64 {
            h.drain(10 * k + 5 - 1);
            h.submit(10 * k + 5, job(100 + k, 2, Class::Lock));
        }
        h.drain(10_000);
        let txn_end = h
            .finished
            .iter()
            .find(|(_, id, _)| *id == JobId(1))
            .map(|(t, _, _)| *t)
            .unwrap();
        // 100 ticks of transaction demand + 5 * 2 ticks of preempting lock
        // work: finishes exactly at 110.
        assert_eq!(txn_end, 110);
        assert_eq!(h.server.busy_time(Class::Transaction), Dur::from_ticks(100));
        assert_eq!(h.server.busy_time(Class::Lock), Dur::from_ticks(10));
        assert_eq!(h.server.completed(Class::Lock), 5);
    }

    #[test]
    fn sjf_serves_shortest_queued_job_first() {
        let mut h = Harness::new();
        h.server = Server::new().with_discipline(Discipline::Sjf);
        h.submit(0, job(1, 10, Class::Transaction)); // in service
        h.submit(1, job(2, 8, Class::Transaction));
        h.submit(2, job(3, 2, Class::Transaction));
        h.submit(3, job(4, 5, Class::Transaction));
        h.drain(100);
        // After job 1 (0..10): SJF order 3 (2), 4 (5), 2 (8).
        assert_eq!(
            h.finished,
            vec![
                (10, JobId(1), Class::Transaction),
                (12, JobId(3), Class::Transaction),
                (17, JobId(4), Class::Transaction),
                (25, JobId(2), Class::Transaction),
            ]
        );
    }

    #[test]
    fn sjf_ties_break_by_arrival_order() {
        let mut h = Harness::new();
        h.server = Server::new().with_discipline(Discipline::Sjf);
        h.submit(0, job(1, 4, Class::Transaction));
        h.submit(1, job(2, 3, Class::Transaction));
        h.submit(2, job(3, 3, Class::Transaction));
        h.drain(100);
        assert_eq!(
            h.finished.iter().map(|(_, id, _)| id.0).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn sjf_still_conserves_work() {
        let mut h = Harness::new();
        h.server = Server::new().with_discipline(Discipline::Sjf);
        for i in 0..10u64 {
            h.submit(0, job(i, (i % 4) * 3 + 1, Class::Transaction));
        }
        h.drain(10_000);
        assert_eq!(h.finished.len(), 10);
        let total: u64 = (0..10u64).map(|i| (i % 4) * 3 + 1).sum();
        assert_eq!(
            h.server.busy_time(Class::Transaction),
            Dur::from_ticks(total)
        );
    }

    #[test]
    fn non_preemptive_server_finishes_in_service_job_first() {
        let mut h = Harness::new();
        h.server = Server::non_preemptive();
        h.submit(0, job(1, 10, Class::Transaction));
        h.submit(2, job(2, 20, Class::Transaction)); // queued
        h.drain(3); // nothing done yet
        h.submit(4, job(3, 3, Class::Lock));
        h.drain(100);
        // Lock job waits for job 1 (ends t=10), then runs 10..13, then the
        // queued transaction 13..33.
        assert_eq!(
            h.finished,
            vec![
                (10, JobId(1), Class::Transaction),
                (13, JobId(3), Class::Lock),
                (33, JobId(2), Class::Transaction),
            ]
        );
    }

    #[test]
    fn cancel_in_service_charges_partial_busy_and_starts_next() {
        let mut server = Server::new();
        let c1 = server
            .submit(Time::from_ticks(0), job(1, 10, Class::Transaction))
            .unwrap();
        assert!(server
            .submit(Time::from_ticks(1), job(2, 4, Class::Transaction))
            .is_none());
        match server.cancel(Time::from_ticks(6), JobId(1)) {
            CancelOutcome::InService { job: j, next } => {
                assert_eq!(j.id, JobId(1));
                assert_eq!(j.demand, Dur::from_ticks(4)); // 10 − 6 unserved
                let next = next.expect("queued job should enter service");
                assert_eq!(next.at, Time::from_ticks(10)); // 6 + 4
                                                           // The cancelled job's old token is now stale.
                match server.on_completion(Time::from_ticks(10), c1.token) {
                    CompletionOutcome::Stale => {}
                    other => panic!("expected Stale, got {other:?}"),
                }
                match server.on_completion(Time::from_ticks(10), next.token) {
                    CompletionOutcome::Finished { job: j2, next } => {
                        assert_eq!(j2.id, JobId(2));
                        assert!(next.is_none());
                    }
                    other => panic!("expected Finished, got {other:?}"),
                }
            }
            other => panic!("expected InService, got {other:?}"),
        }
        // 6 ticks of wasted service on job 1 + 4 ticks on job 2.
        assert_eq!(server.busy_time(Class::Transaction), Dur::from_ticks(10));
        assert_eq!(server.completed(Class::Transaction), 1);
        assert!(server.is_idle());
    }

    #[test]
    fn cancel_queued_job_leaves_service_untouched() {
        let mut server = Server::new();
        let c1 = server
            .submit(Time::from_ticks(0), job(1, 10, Class::Transaction))
            .unwrap();
        assert!(server
            .submit(Time::from_ticks(1), job(2, 4, Class::Transaction))
            .is_none());
        match server.cancel(Time::from_ticks(3), JobId(2)) {
            CancelOutcome::Dequeued(j) => {
                assert_eq!(j.id, JobId(2));
                assert_eq!(j.demand, Dur::from_ticks(4)); // never served
            }
            other => panic!("expected Dequeued, got {other:?}"),
        }
        // Job 1 still completes on its original schedule.
        match server.on_completion(Time::from_ticks(10), c1.token) {
            CompletionOutcome::Finished { job: j, next } => {
                assert_eq!(j.id, JobId(1));
                assert!(next.is_none());
            }
            other => panic!("expected Finished, got {other:?}"),
        }
    }

    #[test]
    fn cancel_missing_job_is_not_found() {
        let mut server = Server::new();
        server.submit(Time::from_ticks(0), job(1, 10, Class::Transaction));
        assert!(matches!(
            server.cancel(Time::from_ticks(2), JobId(99)),
            CancelOutcome::NotFound
        ));
    }

    #[test]
    fn cancel_queued_lock_job() {
        let mut server = Server::new();
        server.submit(Time::from_ticks(0), job(1, 10, Class::Lock));
        assert!(server
            .submit(Time::from_ticks(1), job(2, 3, Class::Lock))
            .is_none());
        match server.cancel(Time::from_ticks(2), JobId(2)) {
            CancelOutcome::Dequeued(j) => assert_eq!(j.id, JobId(2)),
            other => panic!("expected Dequeued, got {other:?}"),
        }
        assert_eq!(server.jobs_present(), 1);
    }

    #[test]
    fn cancel_idle_server_is_not_found() {
        let mut server = Server::new();
        assert!(matches!(
            server.cancel(Time::from_ticks(0), JobId(1)),
            CancelOutcome::NotFound
        ));
    }

    #[test]
    fn flush_accounts_open_segment_without_completing() {
        let mut server = Server::new();
        let c = server
            .submit(Time::from_ticks(0), job(1, 10, Class::Transaction))
            .unwrap();
        server.flush(Time::from_ticks(6));
        assert_eq!(server.busy_time(Class::Transaction), Dur::from_ticks(6));
        // The original completion must still be honoured.
        match server.on_completion(Time::from_ticks(10), c.token) {
            CompletionOutcome::Finished { job, next } => {
                assert_eq!(job.id, JobId(1));
                assert!(next.is_none());
            }
            other => panic!("expected Finished, got {other:?}"),
        }
        assert_eq!(server.busy_time(Class::Transaction), Dur::from_ticks(10));
    }
}
