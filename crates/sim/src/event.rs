//! Future-event list.
//!
//! A thin wrapper over [`std::collections::BinaryHeap`] that orders events
//! by `(time, sequence)`. The monotone sequence number makes ordering among
//! simultaneous events **stable FIFO** — whoever scheduled first fires
//! first — which is essential for reproducibility: a plain binary heap
//! breaks ties arbitrarily and would make runs depend on heap layout.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Time;

struct Entry<E> {
    at: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of pending events with stable FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Remove and return the earliest event, together with its firing time.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostic).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Drop every pending event and restart the sequence counter, keeping
    /// the heap's allocation for reuse. After `clear` the queue is
    /// indistinguishable from a fresh one except for retained capacity.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Time;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_ticks(30), "c");
        q.push(Time::from_ticks(10), "a");
        q.push(Time::from_ticks(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_ticks(5);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_pushes_keep_fifo_within_time() {
        let mut q = EventQueue::new();
        q.push(Time::from_ticks(10), 1);
        q.push(Time::from_ticks(5), 0);
        q.push(Time::from_ticks(10), 2);
        assert_eq!(q.pop(), Some((Time::from_ticks(5), 0)));
        q.push(Time::from_ticks(10), 3);
        assert_eq!(q.pop(), Some((Time::from_ticks(10), 1)));
        assert_eq!(q.pop(), Some((Time::from_ticks(10), 2)));
        assert_eq!(q.pop(), Some((Time::from_ticks(10), 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn clear_restores_fresh_semantics() {
        let mut q = EventQueue::new();
        for i in 0..50 {
            q.push(Time::from_ticks(100 - i), i);
        }
        q.pop();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 0);
        // A cleared queue orders (and FIFO-ties) exactly like a fresh one.
        let t = Time::from_ticks(5);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Time::from_ticks(7), ());
        assert_eq!(q.peek_time(), Some(Time::from_ticks(7)));
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.peek_time(), None);
    }
}
