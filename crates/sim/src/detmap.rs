//! `DetMap`: a deterministic open-addressing hash map over `u64` keys.
//!
//! The repo's D001 policy bans `std::collections::HashMap`/`HashSet`
//! because their iteration order is randomized per process, and an order
//! that leaks into any output breaks bit-identical goldens. `DetMap`
//! gets hash-map speed without that hazard *by construction*:
//!
//! * **Fixed multiplicative hash.** Slots come from
//!   `key.wrapping_mul(2^64 / φ) >> (64 - log2(capacity))` — no
//!   per-process seed, no `RandomState`. The same key set always lands
//!   in the same slots.
//! * **Insertion-order side list.** Every entry is threaded onto a
//!   doubly-linked list in insertion order, and [`DetMap::iter`] walks
//!   that list. Iteration order is therefore a pure function of the
//!   operation sequence, never of the probe layout — even code that
//!   *does* iterate cannot observe the hash.
//! * **Tombstone-free backward-shift deletion.** Removals compact the
//!   probe window in place (Knuth's algorithm R), so lookup cost never
//!   degrades with churn and the index needs no periodic rebuild.
//!
//! Entries live in a slab (`Vec<Node>`) recycled through a free list;
//! the open-addressed index stores `slot + 1` (0 = empty). [`clear`]
//! retains both the slab and index capacity, so a warmed map satisfies
//! the reset-equals-fresh RunArena contract: steady-state insert/remove
//! cycles after a clear allocate nothing.
//!
//! [`clear`]: DetMap::clear

/// Sentinel for "no node" in slab links.
const NIL: u32 = u32::MAX;

/// 2^64 divided by the golden ratio, the classic Fibonacci-hash
/// multiplier: consecutive keys scatter maximally.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Minimum index capacity (slots); must be a power of two.
const MIN_CAP: usize = 8;

#[derive(Clone, Debug)]
struct Node<V> {
    key: u64,
    /// `None` only while the slot sits on the free list.
    value: Option<V>,
    /// Insertion-order links (NIL-terminated). `next` doubles as the
    /// free-list link while the slot is free.
    prev: u32,
    next: u32,
}

/// A deterministic `u64 -> V` hash map. See the module docs for the
/// determinism argument.
#[derive(Clone, Debug)]
pub struct DetMap<V> {
    /// Open-addressed index of `slot + 1`; 0 = empty. Power-of-two len.
    index: Vec<u32>,
    /// Right-shift applied to the multiplied key: `64 - log2(index.len())`.
    shift: u32,
    /// Entry slab; freed slots are threaded through `free`.
    nodes: Vec<Node<V>>,
    free: u32,
    /// Insertion-order list endpoints.
    head: u32,
    tail: u32,
    len: usize,
}

impl<V> Default for DetMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> DetMap<V> {
    /// An empty map with the minimum index footprint.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty map pre-sized so `cap` entries insert without growth.
    pub fn with_capacity(cap: usize) -> Self {
        let slots = index_size_for(cap);
        DetMap {
            index: vec![0; slots],
            shift: 64 - slots.trailing_zeros(),
            nodes: Vec::with_capacity(cap),
            free: NIL,
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop every entry but retain the slab and index allocations, so a
    /// cleared map re-fills without touching the allocator
    /// (reset-equals-fresh).
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.index.fill(0);
        self.free = NIL;
        self.head = NIL;
        self.tail = NIL;
        self.len = 0;
    }

    /// The ideal index slot for `key` at the current capacity.
    #[inline]
    fn ideal(&self, key: u64) -> usize {
        (key.wrapping_mul(FIB) >> self.shift) as usize
    }

    /// Find the index position holding `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let mask = self.index.len() - 1;
        let mut pos = self.ideal(key);
        loop {
            let cell = self.index[pos];
            if cell == 0 {
                return None;
            }
            if self.nodes[(cell - 1) as usize].key == key {
                return Some(pos);
            }
            pos = (pos + 1) & mask;
        }
    }

    /// Borrow the value for `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        let pos = self.find(key)?;
        let slot = (self.index[pos] - 1) as usize;
        self.nodes[slot].value.as_ref()
    }

    /// Mutably borrow the value for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let pos = self.find(key)?;
        let slot = (self.index[pos] - 1) as usize;
        self.nodes[slot].value.as_mut()
    }

    /// True if `key` has a live entry.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Mutably borrow the value for `key`, inserting `make()` first when
    /// absent (the missing `entry` API for the hot paths).
    pub fn get_or_insert_with<F: FnOnce() -> V>(&mut self, key: u64, make: F) -> &mut V {
        if self.find(key).is_none() {
            self.insert(key, make());
        }
        let pos = match self.find(key) {
            Some(p) => p,
            None => unreachable!("key present after insert"),
        };
        let slot = (self.index[pos] - 1) as usize;
        match self.nodes[slot].value.as_mut() {
            Some(v) => v,
            None => unreachable!("indexed slot holds a live value"),
        }
    }

    /// Insert or replace. Returns the previous value when `key` was
    /// already present (its insertion-order position is kept, matching
    /// `BTreeMap::insert` observable behavior for lookups).
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        if let Some(pos) = self.find(key) {
            let slot = (self.index[pos] - 1) as usize;
            return self.nodes[slot].value.replace(value);
        }
        self.grow_if_needed();
        // Claim a slab slot: recycle the free list before growing the Vec.
        let slot = if self.free != NIL {
            let s = self.free as usize;
            self.free = self.nodes[s].next;
            self.nodes[s] = Node {
                key,
                value: Some(value),
                prev: self.tail,
                next: NIL,
            };
            s as u32
        } else {
            self.nodes.push(Node {
                key,
                value: Some(value),
                prev: self.tail,
                next: NIL,
            });
            (self.nodes.len() - 1) as u32
        };
        // Append to the insertion-order list.
        if self.tail == NIL {
            self.head = slot;
        } else {
            self.nodes[self.tail as usize].next = slot;
        }
        self.tail = slot;
        // Link into the index at the first free probe position.
        let mask = self.index.len() - 1;
        let mut pos = self.ideal(key);
        while self.index[pos] != 0 {
            pos = (pos + 1) & mask;
        }
        self.index[pos] = slot + 1;
        self.len += 1;
        None
    }

    /// Remove `key`, returning its value. Backward-shift deletion keeps
    /// the probe sequences of every remaining key intact without
    /// tombstones.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let pos = self.find(key)?;
        let slot = self.index[pos] - 1;
        self.shift_out(pos);
        // Unlink from the insertion-order list.
        let (prev, next) = {
            let n = &self.nodes[slot as usize];
            (n.prev, n.next)
        };
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
        // Return the slab slot to the free list.
        let value = self.nodes[slot as usize].value.take();
        self.nodes[slot as usize].next = self.free;
        self.free = slot;
        self.len -= 1;
        value
    }

    /// Knuth algorithm R: compact the probe window after vacating `pos`.
    /// An entry at `j` moves back into the hole at `i` iff its ideal slot
    /// lies at or before `i` in probe order, i.e. its displacement from
    /// ideal is at least its distance from the hole.
    fn shift_out(&mut self, mut i: usize) {
        let mask = self.index.len() - 1;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let cell = self.index[j];
            if cell == 0 {
                break;
            }
            let ideal = self.ideal(self.nodes[(cell - 1) as usize].key);
            if (j.wrapping_sub(ideal) & mask) >= (j.wrapping_sub(i) & mask) {
                self.index[i] = cell;
                i = j;
            }
        }
        self.index[i] = 0;
    }

    /// Pre-size the map so `cap` live entries fit without any further
    /// allocation — the warm-up hook for closed-system callers whose
    /// concurrent-entry count has a known bound (e.g. the
    /// multiprogramming level). Existing entries are preserved; index
    /// layout is never observable, so a reserve is invisible to
    /// iteration.
    pub fn reserve(&mut self, cap: usize) {
        if cap > self.nodes.capacity() {
            self.nodes.reserve(cap - self.nodes.len());
        }
        let slots = index_size_for(cap.max(self.len));
        if slots > self.index.len() {
            self.rebuild_index(slots);
        }
    }

    /// Double the index when the next insert would push the load factor
    /// past 7/8. Re-links every live entry in insertion order (layout is
    /// never observable, but determinism costs nothing here).
    fn grow_if_needed(&mut self) {
        if (self.len + 1) * 8 <= self.index.len() * 7 {
            return;
        }
        self.rebuild_index(self.index.len() * 2);
    }

    /// Rebuild the index at `slots` capacity (a power of two), re-linking
    /// every live entry in insertion order.
    fn rebuild_index(&mut self, slots: usize) {
        self.index.clear();
        self.index.resize(slots, 0);
        self.shift = 64 - slots.trailing_zeros();
        let mask = slots - 1;
        let mut cur = self.head;
        while cur != NIL {
            let key = self.nodes[cur as usize].key;
            let mut pos = self.ideal(key);
            while self.index[pos] != 0 {
                pos = (pos + 1) & mask;
            }
            self.index[pos] = cur + 1;
            cur = self.nodes[cur as usize].next;
        }
    }

    /// Iterate `(key, &value)` in insertion order.
    pub fn iter(&self) -> Iter<'_, V> {
        Iter {
            map: self,
            cur: self.head,
        }
    }

    /// Iterate keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterate `&mut value` over every live entry, in **slab order** (not
    /// insertion order). Slab layout is a pure function of the operation
    /// history, so this is still deterministic; use it for sweeps whose
    /// effect is order-independent.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.nodes.iter_mut().filter_map(|n| n.value.as_mut())
    }
}

/// Insertion-order iterator over a [`DetMap`].
pub struct Iter<'a, V> {
    map: &'a DetMap<V>,
    cur: u32,
}

impl<'a, V> Iterator for Iter<'a, V> {
    type Item = (u64, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let node = &self.map.nodes[self.cur as usize];
        self.cur = node.next;
        node.value.as_ref().map(|v| (node.key, v))
    }
}

/// Smallest power-of-two slot count that keeps `cap` entries under the
/// 7/8 load ceiling.
fn index_size_for(cap: usize) -> usize {
    let mut slots = MIN_CAP;
    while cap * 8 > slots * 7 {
        slots *= 2;
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = DetMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(7, "a"), None);
        assert_eq!(m.insert(7, "b"), Some("a"));
        assert_eq!(m.get(7), Some(&"b"));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(7), Some("b"));
        assert_eq!(m.remove(7), None);
        assert!(m.get(7).is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn iteration_is_insertion_order() {
        let mut m = DetMap::new();
        for k in [9u64, 2, 400, 3, 77] {
            m.insert(k, k * 10);
        }
        let keys: Vec<u64> = m.keys().collect();
        assert_eq!(keys, vec![9, 2, 400, 3, 77]);
        m.remove(400);
        m.insert(400, 1); // re-insert moves to the back
        let keys: Vec<u64> = m.keys().collect();
        assert_eq!(keys, vec![9, 2, 3, 77, 400]);
    }

    #[test]
    fn replacing_insert_keeps_position() {
        let mut m = DetMap::new();
        for k in [1u64, 2, 3] {
            m.insert(k, 0u32);
        }
        m.insert(2, 9);
        let pairs: Vec<(u64, u32)> = m.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(pairs, vec![(1, 0), (2, 9), (3, 0)]);
    }

    #[test]
    fn growth_preserves_entries() {
        let mut m = DetMap::with_capacity(0);
        for k in 0..1000u64 {
            m.insert(k * 0x1_0001, k);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(m.get(k * 0x1_0001), Some(&k), "key {k}");
        }
    }

    #[test]
    fn backward_shift_keeps_colliding_keys_reachable() {
        // Craft keys that collide: same ideal slot at MIN_CAP. With the
        // multiplicative hash, keys k and k + 2^shift * inv collide only
        // accidentally, so instead brute-force a colliding cluster.
        let mut m: DetMap<u64> = DetMap::new();
        let probe = DetMap::<u64>::new();
        let target = probe.ideal(1);
        let cluster: Vec<u64> = (1..5000u64).filter(|&k| probe.ideal(k) == target).collect();
        assert!(cluster.len() >= 3, "need a collision cluster to test");
        for &k in cluster.iter().take(3) {
            m.insert(k, k);
        }
        // Remove the first inserted (earliest probe position): the
        // backward shift must pull the later ones into reach.
        m.remove(cluster[0]);
        assert_eq!(m.get(cluster[1]), Some(&cluster[1]));
        assert_eq!(m.get(cluster[2]), Some(&cluster[2]));
    }

    #[test]
    fn clear_retains_capacity_and_reuses_slots() {
        let mut m = DetMap::with_capacity(64);
        for k in 0..64u64 {
            m.insert(k, k);
        }
        let index_cap = m.index.len();
        let slab_cap = m.nodes.capacity();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.index.len(), index_cap);
        for k in 0..64u64 {
            m.insert(k, k + 1);
        }
        assert_eq!(m.index.len(), index_cap, "clear+refill must not grow");
        assert_eq!(m.nodes.capacity(), slab_cap);
        assert_eq!(m.get(5), Some(&6));
    }

    #[test]
    fn free_list_recycles_before_slab_growth() {
        let mut m = DetMap::new();
        for k in 0..16u64 {
            m.insert(k, k);
        }
        let slab = m.nodes.len();
        for k in 0..8u64 {
            m.remove(k);
        }
        for k in 100..108u64 {
            m.insert(k, k);
        }
        assert_eq!(m.nodes.len(), slab, "freed slots must be reused");
    }

    /// Seeded differential loop against `BTreeMap`: same operations,
    /// identical lookups and identical sorted content at every step.
    #[test]
    fn differential_against_btreemap() {
        let mut rng = SimRng::new(0xD37);
        let mut det: DetMap<u64> = DetMap::new();
        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        for step in 0..20_000u64 {
            // Small key space so hits, collisions and churn all occur.
            let key = rng.next_u64() % 257;
            match rng.next_u64() % 4 {
                0 | 1 => {
                    assert_eq!(det.insert(key, step), reference.insert(key, step));
                }
                2 => {
                    assert_eq!(det.remove(key), reference.remove(&key));
                }
                _ => {
                    assert_eq!(det.get(key), reference.get(&key));
                }
            }
            assert_eq!(det.len(), reference.len());
        }
        // Full content check: sorted pairs match.
        let mut pairs: Vec<(u64, u64)> = det.iter().map(|(k, v)| (k, *v)).collect();
        pairs.sort_unstable();
        let want: Vec<(u64, u64)> = reference.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(pairs, want);
    }

    /// The layout-determinism claim: two maps built by the same operation
    /// sequence iterate identically, and iteration never depends on
    /// remove/re-insert history beyond what insertion order dictates.
    #[test]
    fn iteration_order_is_a_function_of_the_operation_sequence() {
        let build = || {
            let mut m = DetMap::new();
            let mut rng = SimRng::new(99);
            for step in 0..5000u64 {
                let key = rng.next_u64() % 123;
                if rng.next_u64().is_multiple_of(3) {
                    m.remove(key);
                } else {
                    m.insert(key, step);
                }
            }
            m
        };
        let a: Vec<(u64, u64)> = build().iter().map(|(k, v)| (k, *v)).collect();
        let b: Vec<(u64, u64)> = build().iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(a, b);
    }
}
