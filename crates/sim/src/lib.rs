//! # lockgran-sim — deterministic discrete-event simulation engine
//!
//! A small, fully deterministic discrete-event simulation (DES) kernel used
//! as the substrate for the locking-granularity model of Dandamudi & Au
//! (ICDE 1991). The paper's study is a closed queueing-network simulation;
//! this crate provides everything such a simulation needs and nothing more:
//!
//! * [`time`] — an integer-tick simulated clock ([`Time`], [`Dur`]). Using
//!   integer ticks instead of `f64` seconds makes event ordering exact and
//!   runs bit-for-bit reproducible across platforms.
//! * [`event`] — a future-event list ([`EventQueue`]) with stable FIFO
//!   ordering among simultaneous events.
//! * [`engine`] — a minimal executor ([`Executor`], [`Model`]) that pumps
//!   events into a user model until a horizon is reached.
//! * [`server`] — a single-server resource ([`Server`]) with two priority
//!   classes and preemptive-resume scheduling. The paper gives the locking
//!   mechanism "preemptive power over running transactions for I/O and CPU
//!   resources"; the high-priority class models exactly that.
//! * [`rng`] — a seedable, splittable in-tree xoshiro256++ generator
//!   ([`SimRng`]) so that independent stochastic streams (workload,
//!   conflicts, placement) can be varied independently and the byte
//!   sequence of every stream is owned by this repository.
//! * [`json`] — a minimal JSON document model ([`Json`]) with a writer and
//!   parser, plus the [`ToJson`]/[`FromJson`] traits the rest of the
//!   workspace implements by hand (zero-dependency serialization).
//! * [`stats`] — busy-time accounting, Welford tallies, time-weighted
//!   levels, histograms and batch-means confidence intervals.
//! * [`pool`] — a fixed-size worker pool ([`WorkerPool`]) with
//!   deterministic, submission-ordered scatter/gather for running many
//!   *independent* simulations in parallel.
//!
//! The kernel itself is intentionally synchronous and single-threaded:
//! one simulation is one deterministic event loop. Parallelism lives one
//! level up — whole `(config, seed)` runs are independent pure functions,
//! so the experiment harness fans them out across a [`WorkerPool`] and
//! reassembles results by submission index, which is bit-identical to
//! running them sequentially.
//!
//! ## Example
//!
//! ```
//! use lockgran_sim::{Dur, Executor, Model, Time};
//!
//! struct Ping { count: u32 }
//! #[derive(Debug)]
//! enum Ev { Tick }
//!
//! impl Model for Ping {
//!     type Event = Ev;
//!     fn handle(&mut self, _now: Time, _ev: Ev, ex: &mut Executor<Ev>) {
//!         self.count += 1;
//!         if self.count < 10 {
//!             ex.schedule_in(Dur::from_units(1.0), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut model = Ping { count: 0 };
//! let mut ex = Executor::new();
//! ex.schedule(Time::ZERO, Ev::Tick);
//! ex.run(&mut model, Time::from_units(100.0));
//! assert_eq!(model.count, 10);
//! ```

#![warn(missing_docs)]

pub mod calendar;
pub mod detmap;
pub mod engine;
pub mod event;
pub mod json;
pub mod pool;
pub mod rng;
pub mod server;
pub mod stats;
pub mod time;

pub use calendar::CalendarQueue;
pub use detmap::DetMap;
pub use engine::{Executor, FelKind, Model};
pub use event::EventQueue;
pub use json::{FromJson, Json, ToJson};
pub use pool::{TaskPanic, WorkerPool};
pub use rng::SimRng;
pub use server::{
    CancelOutcome, Class, Completion, CompletionOutcome, Discipline, Job, JobId, Server, Token,
};
pub use stats::{BatchMeans, BusyTime, Histogram, Tally, TimeWeighted};
pub use time::{Dur, Time, TICKS_PER_UNIT};
