//! Seedable, splittable random-number streams.
//!
//! [`SimRng`] is a self-contained **xoshiro256++** generator (Blackman &
//! Vigna 2019) exposed through the handful of sampling primitives the
//! model needs. The generator is implemented in-tree — no external crate
//! — so the byte sequence of every stream is owned by this repository.
//! Three design points matter:
//!
//! * **Determinism** — every stream is created from an explicit 64-bit
//!   seed; the same seed always yields the same run on every platform.
//! * **Stream stability** — the mapping `seed → byte sequence` is part of
//!   this crate's public contract. It can only change in a commit that
//!   deliberately re-pins the seed-sensitive expected values in the test
//!   suite (see `tests/determinism.rs`); dependency upgrades can never
//!   shift it, because there is no dependency.
//! * **Stream splitting** — [`SimRng::split`] derives an independent child
//!   stream by hashing the parent seed with a label. This lets the
//!   workload generator, the conflict model, and the partitioner consume
//!   randomness without perturbing each other: changing how many draws one
//!   component makes cannot shift the sequence another component sees.
//!   (Common-random-numbers variance reduction across sweep points falls
//!   out for free.)
//!
//! ## Algorithm
//!
//! The 256-bit state is initialized by iterating the splitmix64 finalizer
//! over the (already splitmix64-decorrelated) user seed, which guarantees
//! a non-zero state and decouples nearby seeds. Each `next_u64` applies
//! the xoshiro256++ output function `rotl(s0 + s3, 23) + s0` followed by
//! the linear state transition. Bounded draws use Lemire's unbiased
//! multiply-shift rejection; `uniform01` uses the top 53 bits.

/// A deterministic random stream.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

/// SplitMix64 finalizer — used to decorrelate derived seeds and to expand
/// a 64-bit seed into the 256-bit xoshiro state. A single
/// multiply-xor-shift chain is enough to turn related seeds (seed, seed+1,
/// seed ^ label) into statistically independent streams.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // Expand the decorrelated seed into 256 bits of state with a
        // splitmix64 sequence (the initialization Vigna recommends). The
        // sequence cannot be all-zero: splitmix64 is a bijection of a
        // strictly increasing counter.
        let mut z = splitmix64(seed);
        let mut state = [0u64; 4];
        for s in &mut state {
            z = splitmix64(z);
            *s = z;
        }
        SimRng { state, seed }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The next raw 64-bit output of the generator.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Derive an independent child stream identified by `label`.
    /// Deterministic: the same (seed, label) pair always yields the same
    /// child, regardless of how much the parent has been used.
    pub fn split(&self, label: &str) -> SimRng {
        let mut h = self.seed;
        for &b in label.as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        SimRng::new(h)
    }

    /// Derive an independent child stream identified by an index (e.g. a
    /// replication number).
    pub fn split_index(&self, index: u64) -> SimRng {
        SimRng::new(splitmix64(self.seed ^ splitmix64(index)))
    }

    /// Uniform draw from the closed integer range `[lo, hi]`, unbiased
    /// (Lemire's multiply-shift rejection).
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn uniform_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            // Full 2^64 range.
            return self.next_u64();
        }
        let mut m = u128::from(self.next_u64()) * u128::from(span);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                m = u128::from(self.next_u64()) * u128::from(span);
                low = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform draw from the half-open real interval `[0, 1)` (the top 53
    /// bits of one output, so every value is a multiple of 2⁻⁵³).
    pub fn uniform01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform01() < p.clamp(0.0, 1.0)
    }

    /// Sample `k` *distinct* values from `0..n` using Floyd's algorithm
    /// (O(k) expected work, independent of `n`). The result order is the
    /// insertion order of Floyd's algorithm, which is deterministic for a
    /// given stream state.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: u64, k: u64) -> Vec<u64> {
        let mut chosen = Vec::with_capacity(k as usize);
        self.sample_distinct_into(n, k, &mut chosen);
        chosen
    }

    /// [`SimRng::sample_distinct`] into a caller-owned buffer (cleared
    /// first; identical draw sequence), so steady-state callers reuse
    /// capacity instead of allocating a fresh `Vec` per sample.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_distinct_into(&mut self, n: u64, k: u64, chosen: &mut Vec<u64>) {
        assert!(k <= n, "cannot sample {k} distinct values from 0..{n}");
        chosen.clear();
        for j in (n - k)..n {
            let t = self.uniform_inclusive(0, j);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference implementation check: the raw xoshiro256++ sequence for
    /// the all-explicit state {1, 2, 3, 4} must match the published
    /// algorithm. Values computed independently from the Blackman–Vigna
    /// reference C code (xoshiro256plusplus.c).
    #[test]
    fn matches_reference_vectors() {
        let mut rng = SimRng::new(0);
        rng.state = [1, 2, 3, 4];
        let expected: [u64; 5] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(
                a.uniform_inclusive(0, 1_000_000),
                b.uniform_inclusive(0, 1_000_000)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100)
            .filter(|_| {
                a.uniform_inclusive(0, u64::MAX - 1) == b.uniform_inclusive(0, u64::MAX - 1)
            })
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_is_independent_of_parent_consumption() {
        let parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        // Burn draws on parent2 — children must still agree.
        for _ in 0..50 {
            parent2.uniform01();
        }
        let mut c1 = parent1.split("workload");
        let mut c2 = parent2.split("workload");
        for _ in 0..100 {
            assert_eq!(c1.uniform_inclusive(0, 999), c2.uniform_inclusive(0, 999));
        }
    }

    #[test]
    fn split_labels_decorrelate() {
        let parent = SimRng::new(7);
        let mut a = parent.split("workload");
        let mut b = parent.split("conflict");
        let matches = (0..100)
            .filter(|_| {
                a.uniform_inclusive(0, u64::MAX - 1) == b.uniform_inclusive(0, u64::MAX - 1)
            })
            .count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn uniform_inclusive_covers_endpoints() {
        let mut rng = SimRng::new(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            match rng.uniform_inclusive(1, 5) {
                1 => saw_lo = true,
                5 => saw_hi = true,
                v => assert!((1..=5).contains(&v)),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn uniform_inclusive_full_range_does_not_panic() {
        let mut rng = SimRng::new(17);
        for _ in 0..100 {
            let _ = rng.uniform_inclusive(0, u64::MAX);
        }
    }

    #[test]
    fn uniform_inclusive_mean_is_centered() {
        // The paper's NU_i ~ U(1, maxtransize) has mean (1+max)/2.
        let mut rng = SimRng::new(11);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| rng.uniform_inclusive(1, 500)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 250.5).abs() < 2.0, "mean {mean} too far from 250.5");
    }

    #[test]
    fn uniform01_in_range_and_centered() {
        let mut rng = SimRng::new(13);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.uniform01();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut rng = SimRng::new(9);
        for _ in 0..200 {
            let v = rng.sample_distinct(30, 13);
            assert_eq!(v.len(), 13);
            let mut s = v.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 13, "duplicates in {v:?}");
            assert!(v.iter().all(|&x| x < 30));
        }
    }

    #[test]
    fn sample_distinct_full_population() {
        let mut rng = SimRng::new(5);
        let mut v = rng.sample_distinct(8, 8);
        v.sort_unstable();
        assert_eq!(v, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SimRng::new(1);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(rng.bernoulli(2.0)); // clamped
    }
}
