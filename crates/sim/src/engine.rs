//! Event loop.
//!
//! [`Executor`] owns the clock and the future-event list; a user-supplied
//! [`Model`] owns all simulation state and reacts to events. The executor
//! is deliberately dumb: pop the earliest event, advance the clock, hand it
//! to the model, repeat until the horizon. Everything interesting —
//! queues, servers, blocking — lives in the model, which keeps this kernel
//! reusable and trivially testable.
//!
//! The future-event list is pluggable via [`FelKind`]: the binary-heap
//! [`EventQueue`] (O(log n) per op, zero tuning) or the bucketed
//! [`CalendarQueue`] (O(1) amortized). Both order events by the same
//! stable `(time, seq)` key, so a model observes the identical event
//! sequence — and therefore makes the identical RNG draws — under either.

use crate::calendar::CalendarQueue;
use crate::event::EventQueue;
use crate::time::{Dur, Time};

/// A discrete-event model: reacts to its own event type, scheduling
/// follow-on events through the executor.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handle one event at simulated time `now`. New events are scheduled
    /// via [`Executor::schedule`] / [`Executor::schedule_in`].
    fn handle(&mut self, now: Time, event: Self::Event, ex: &mut Executor<Self::Event>);
}

/// Which future-event list implementation an [`Executor`] pumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FelKind {
    /// Binary-heap [`EventQueue`]: O(log n), no tuning, the reference.
    Heap,
    /// [`CalendarQueue`]: O(1) amortized, self-resizing buckets.
    Calendar,
}

/// The future-event list behind an executor. Both variants share the
/// stable `(time, seq)` total order, so they are interchangeable without
/// perturbing event order (the bit-identity contract DESIGN.md §9
/// documents).
enum Fel<E> {
    Heap(EventQueue<E>),
    Calendar(CalendarQueue<E>),
}

impl<E> Fel<E> {
    fn push(&mut self, at: Time, event: E) {
        match self {
            Fel::Heap(q) => q.push(at, event),
            Fel::Calendar(q) => q.push(at, event),
        }
    }

    fn pop(&mut self) -> Option<(Time, E)> {
        match self {
            Fel::Heap(q) => q.pop(),
            Fel::Calendar(q) => q.pop(),
        }
    }

    /// `&mut` because the calendar's peek advances its day cursor (the
    /// contents are untouched and the result is stable across calls).
    fn peek_time(&mut self) -> Option<Time> {
        match self {
            Fel::Heap(q) => q.peek_time(),
            Fel::Calendar(q) => q.peek_time(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Fel::Heap(q) => q.len(),
            Fel::Calendar(q) => q.len(),
        }
    }

    fn clear(&mut self) {
        match self {
            Fel::Heap(q) => q.clear(),
            Fel::Calendar(q) => q.clear(),
        }
    }
}

/// The simulation executor: clock plus future-event list.
pub struct Executor<E> {
    queue: Fel<E>,
    now: Time,
    events_processed: u64,
}

impl<E> Default for Executor<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Executor<E> {
    /// A fresh executor with the clock at [`Time::ZERO`], pumping the
    /// binary-heap FEL (the no-tuning reference; production runs use
    /// [`Executor::with_fel`] to pick the calendar).
    pub fn new() -> Self {
        Self::with_fel(FelKind::Heap)
    }

    /// A fresh executor pumping the chosen future-event list.
    pub fn with_fel(kind: FelKind) -> Self {
        let queue = match kind {
            FelKind::Heap => Fel::Heap(EventQueue::new()),
            FelKind::Calendar => Fel::Calendar(CalendarQueue::new()),
        };
        Executor {
            queue,
            now: Time::ZERO,
            events_processed: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Rewind to a pristine state — clock at [`Time::ZERO`], no pending
    /// events, counters zeroed — while keeping the FEL's grown storage.
    /// A reset executor is observationally identical to a fresh one (same
    /// FEL kind, same `(time, seq)` pop order), so sweep harnesses can
    /// reuse one executor across runs without perturbing results.
    pub fn reset(&mut self) {
        self.queue.clear();
        self.now = Time::ZERO;
        self.events_processed = 0;
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// In debug builds, panics if `at` is in the past — scheduling into the
    /// past is always a model bug.
    pub fn schedule(&mut self, at: Time, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past ({at:?} < {:?})",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedule `event` after a delay of `d` from the current time.
    pub fn schedule_in(&mut self, d: Dur, event: E) {
        self.queue.push(self.now + d, event);
    }

    /// Number of events handled so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Run the model until the event list drains or the next event would
    /// fire strictly after `until`. Events at exactly `until` are
    /// processed. Returns the final clock value (== `until` if the horizon
    /// was hit, otherwise the time of the last processed event).
    pub fn run<M: Model<Event = E>>(&mut self, model: &mut M, until: Time) -> Time {
        while let Some(at) = self.queue.peek_time() {
            if at > until {
                break;
            }
            let Some((at, event)) = self.queue.pop() else {
                break;
            };
            self.now = at;
            self.events_processed += 1;
            model.handle(at, event, self);
        }
        // The horizon defines "end of measurement" even if the system went
        // quiet earlier; report it so busy-time denominators are consistent.
        if until > self.now {
            self.now = until;
        }
        self.now
    }

    /// Run a bounded number of events (diagnostic / stepping aid).
    /// Returns the number actually processed.
    pub fn step<M: Model<Event = E>>(&mut self, model: &mut M, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events {
            match self.queue.pop() {
                Some((at, event)) => {
                    self.now = at;
                    self.events_processed += 1;
                    model.handle(at, event, self);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        seen: Vec<(u64, u32)>,
    }

    #[derive(Debug)]
    struct Tagged(u32);

    impl Model for Recorder {
        type Event = Tagged;
        fn handle(&mut self, now: Time, ev: Tagged, _ex: &mut Executor<Tagged>) {
            self.seen.push((now.ticks(), ev.0));
        }
    }

    #[test]
    fn processes_in_order_and_stops_at_horizon() {
        let mut m = Recorder::default();
        let mut ex = Executor::new();
        ex.schedule(Time::from_ticks(10), Tagged(1));
        ex.schedule(Time::from_ticks(5), Tagged(0));
        ex.schedule(Time::from_ticks(50), Tagged(9)); // beyond horizon
        let end = ex.run(&mut m, Time::from_ticks(20));
        assert_eq!(m.seen, vec![(5, 0), (10, 1)]);
        assert_eq!(end, Time::from_ticks(20));
        assert_eq!(ex.pending(), 1);
        assert_eq!(ex.events_processed(), 2);
    }

    #[test]
    fn event_at_exact_horizon_fires() {
        let mut m = Recorder::default();
        let mut ex = Executor::new();
        ex.schedule(Time::from_ticks(20), Tagged(7));
        ex.run(&mut m, Time::from_ticks(20));
        assert_eq!(m.seen, vec![(20, 7)]);
    }

    struct Chain {
        hops: u32,
    }
    impl Model for Chain {
        type Event = ();
        fn handle(&mut self, _now: Time, _ev: (), ex: &mut Executor<()>) {
            self.hops += 1;
            ex.schedule_in(Dur::from_ticks(3), ());
        }
    }

    #[test]
    fn self_scheduling_chain_respects_horizon() {
        let mut m = Chain { hops: 0 };
        let mut ex = Executor::new();
        ex.schedule(Time::ZERO, ());
        ex.run(&mut m, Time::from_ticks(10));
        // Fires at t = 0, 3, 6, 9; next (12) is beyond the horizon.
        assert_eq!(m.hops, 4);
    }

    #[test]
    fn step_bounds_work() {
        let mut m = Chain { hops: 0 };
        let mut ex = Executor::new();
        ex.schedule(Time::ZERO, ());
        assert_eq!(ex.step(&mut m, 5), 5);
        assert_eq!(m.hops, 5);
    }

    #[test]
    fn clock_advances_to_horizon_when_queue_drains() {
        let mut m = Recorder::default();
        let mut ex = Executor::new();
        ex.schedule(Time::from_ticks(2), Tagged(0));
        let end = ex.run(&mut m, Time::from_ticks(100));
        assert_eq!(end, Time::from_ticks(100));
        assert_eq!(ex.now(), Time::from_ticks(100));
    }

    /// A reset executor replays a workload identically to a fresh one,
    /// for both FEL kinds.
    #[test]
    fn reset_executor_replays_identically() {
        for kind in [FelKind::Heap, FelKind::Calendar] {
            let drive = |ex: &mut Executor<Tagged>| {
                let mut m = Recorder::default();
                for i in 0..80u32 {
                    ex.schedule(Time::from_ticks(u64::from(i % 9) * 7), Tagged(i));
                }
                ex.run(&mut m, Time::from_ticks(1_000));
                m.seen
            };
            let mut ex = Executor::with_fel(kind);
            let first = drive(&mut ex);
            assert!(ex.now() > Time::ZERO);
            ex.reset();
            assert_eq!(ex.now(), Time::ZERO);
            assert_eq!(ex.pending(), 0);
            assert_eq!(ex.events_processed(), 0);
            let second = drive(&mut ex);
            assert_eq!(first, second);
        }
    }

    /// Both FEL kinds drive a model through the identical event sequence —
    /// including FIFO ties — which is the bit-identity foundation the
    /// production engine relies on.
    #[test]
    fn heap_and_calendar_executors_see_identical_sequences() {
        let run = |kind: FelKind| {
            let mut m = Recorder::default();
            let mut ex = Executor::with_fel(kind);
            for i in 0..50u32 {
                ex.schedule(Time::from_ticks(u64::from(i % 7) * 10), Tagged(i));
            }
            ex.run(&mut m, Time::from_ticks(1_000));
            m.seen
        };
        assert_eq!(run(FelKind::Heap), run(FelKind::Calendar));
    }
}
