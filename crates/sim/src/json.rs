//! A minimal, dependency-free JSON layer.
//!
//! The workspace's serialization needs are narrow: emit figure artifacts,
//! parse batch-configuration files, and round-trip model configurations in
//! tests. [`Json`] is a small document model with a writer and a
//! recursive-descent parser covering exactly that — no derive macros, no
//! external crates, and an output format byte-compatible with the
//! artifacts the repository already ships (`results/*.json`):
//!
//! * objects keep insertion order (struct field order);
//! * `pretty()` indents with two spaces and puts one space after `:`;
//! * floats print their shortest round-trip representation, with a
//!   trailing `.0` for integral values (`1.0`, not `1`), exactly as the
//!   previous serde_json/ryu emitter did;
//! * integers print without a decimal point.
//!
//! Conversion to and from domain types goes through the [`ToJson`] and
//! [`FromJson`] traits, implemented by hand next to each type. The
//! conventions mirror the previous serde derive output so existing files
//! (e.g. `configs/sample_batch.json`) keep parsing: unit enum variants are
//! plain strings (`"Best"`), data-carrying variants are externally tagged
//! single-key objects (`{"Uniform": {"max": 500}}`), `Option` is `null`
//! or the value, and unknown object keys are ignored.

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without a decimal point or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

/// Convert a domain value into a [`Json`] document.
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

/// Reconstruct a domain value from a [`Json`] document.
pub trait FromJson: Sized {
    /// Parse `v`, describing the first problem found.
    fn from_json(v: &Json) -> Result<Self, String>;
}

impl Json {
    /// Build an object from key/value pairs (helper for `to_json` impls).
    pub fn object(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field, decoded via [`FromJson`].
    pub fn field<T: FromJson>(&self, key: &str) -> Result<T, String> {
        match self.get(key) {
            Some(v) => T::from_json(v).map_err(|e| format!("field '{key}': {e}")),
            None => Err(format!("missing field '{key}'")),
        }
    }

    /// Optional object field: `Ok(None)` when missing or `null`.
    pub fn opt_field<T: FromJson>(&self, key: &str) -> Result<Option<T>, String> {
        match self.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => T::from_json(v)
                .map(Some)
                .map_err(|e| format!("field '{key}': {e}")),
        }
    }

    /// Optional object field with a default for missing/`null`.
    pub fn field_or<T: FromJson>(&self, key: &str, default: T) -> Result<T, String> {
        Ok(self.opt_field(key)?.unwrap_or(default))
    }

    /// The value as a float; integers widen.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as an unsigned integer (rejects negatives and fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) if i >= 0 => Some(i as u64),
            // lint:allow(D003): integrality test — fract() is exactly 0.0
            // for whole floats, by IEEE 754 definition
            Json::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// The value as a signed integer.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(i) => Some(i),
            Json::Float(f)
                // lint:allow(D003): integrality test — fract() is exactly
                // 0.0 for whole floats, by IEEE 754 definition
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) =>
            {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Compact rendering (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering: two-space indent, one space after `:` — the
    /// format of the repository's existing JSON artifacts.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{i}"));
            }
            Json::Float(f) => out.push_str(&format_float(*f)),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

impl std::ops::Index<&str> for Json {
    type Output = Json;
    /// Member access; yields `Json::Null` for anything missing, so lookups
    /// chain like `v["panels"][0]["label"]`.
    fn index(&self, key: &str) -> &Json {
        static NULL: Json = Json::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;
    /// Element access; yields `Json::Null` out of bounds or on non-arrays.
    fn index(&self, idx: usize) -> &Json {
        static NULL: Json = Json::Null;
        match self {
            Json::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Json {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(other)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Shortest round-trip float formatting with ryu-compatible `.0` for
/// integral values. Non-finite values render as `null` (JSON has no
/// representation for them).
fn format_float(f: f64) -> String {
    if !f.is_finite() {
        return "null".to_string();
    }
    if f == f.trunc() && f.abs() < 1e16 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----- primitive ToJson / FromJson impls -----

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, String> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, String> {
        v.as_bool().ok_or_else(|| format!("expected bool, got {v}"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, String> {
        v.as_f64()
            .ok_or_else(|| format!("expected number, got {v}"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, String> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("expected string, got {v}"))
    }
}

macro_rules! int_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, String> {
                let i = v.as_i64().ok_or_else(|| format!("expected integer, got {v}"))?;
                <$t>::try_from(i).map_err(|_| format!("integer {i} out of range"))
            }
        }
    )*};
}
int_json!(i64, i32, u32, usize);

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        // Counts in this workspace stay far below i64::MAX; widen to float
        // (exact up to 2^53) rather than wrap if one ever does not.
        if *self <= i64::MAX as u64 {
            Json::Int(*self as i64)
        } else {
            Json::Float(*self as f64)
        }
    }
}

impl FromJson for u64 {
    fn from_json(v: &Json) -> Result<Self, String> {
        v.as_u64()
            .ok_or_else(|| format!("expected unsigned integer, got {v}"))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, String> {
        let items = v
            .as_array()
            .ok_or_else(|| format!("expected array, got {v}"))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_json(item).map_err(|e| format!("[{i}]: {e}")))
            .collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, String> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(format!("expected 2-element array, got {v}")),
        }
    }
}

// ----- parsing -----

/// A parse failure, with a 1-based line/column position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column of the offending byte.
    pub col: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// content rejected).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing content after JSON value"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: impl Into<String>) -> JsonError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError {
            line,
            col,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected character '{}'", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if !(self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u'))
                                {
                                    return Err(self.error("unpaired high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.error("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 character (input is &str, so valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digit expected after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("digit expected in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("0.5").unwrap(), Json::Float(0.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse("-2.5e-2").unwrap(), Json::Float(-0.025));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures() {
        let v = parse(r#"{"a": [1, 2.5, "x"], "b": {"c": null}}"#).unwrap();
        assert_eq!(v["a"][0], Json::Int(1));
        assert_eq!(v["a"][1], Json::Float(2.5));
        assert_eq!(v["a"][2], "x");
        assert!(v["b"]["c"].is_null());
        assert!(v["nope"].is_null());
        assert!(v["a"][99].is_null());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\"b\\c\/d\n\t\u0041\u00e9""#).unwrap();
        assert_eq!(v, "a\"b\\c/d\n\tAé");
        // Surrogate pair: U+1F600.
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap(), "😀");
        // Raw UTF-8 passes through.
        assert_eq!(parse("\"héllo — 世界\"").unwrap(), "héllo — 世界");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "01",
            "1.",
            "1e",
            "\"\\x\"",
            "\"unterminated",
            "[1] trailing",
            "\"\\ud800\"",
            "{1: 2}",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse("{\n  \"a\": tru\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("true"));
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn writes_compact_and_pretty() {
        let v = Json::object(vec![
            ("id", Json::Str("fig1".into())),
            ("xs", Json::Array(vec![Json::Int(1), Json::Float(2.0)])),
            ("empty", Json::Array(vec![])),
        ]);
        assert_eq!(
            v.to_string_compact(),
            r#"{"id":"fig1","xs":[1,2.0],"empty":[]}"#
        );
        assert_eq!(
            v.pretty(),
            "{\n  \"id\": \"fig1\",\n  \"xs\": [\n    1,\n    2.0\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn float_formatting_matches_previous_emitter() {
        assert_eq!(format_float(1.0), "1.0");
        assert_eq!(format_float(-3.0), "-3.0");
        assert_eq!(format_float(0.5769), "0.5769");
        assert_eq!(format_float(0.0019730233990840913), "0.0019730233990840913");
        assert_eq!(format_float(f64::NAN), "null");
        assert_eq!(format_float(f64::INFINITY), "null");
    }

    #[test]
    fn round_trips_preserve_values() {
        let src = r#"{"a": [0.1, 100, -5, true, null, "s\u00e9q"], "b": {"c": [[1, 2]]}}"#;
        let v = parse(src).unwrap();
        let emitted = v.pretty();
        assert_eq!(parse(&emitted).unwrap(), v);
        let compact = v.to_string_compact();
        assert_eq!(parse(&compact).unwrap(), v);
    }

    #[test]
    fn string_escaping_round_trips() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{01} é 世界 😀";
        let v = Json::Str(nasty.to_string());
        assert_eq!(
            parse(&v.to_string_compact()).unwrap(),
            Json::Str(nasty.into())
        );
    }

    #[test]
    fn field_helpers_decode_and_default() {
        let v = parse(r#"{"n": 3, "s": "x", "f": 1.5, "opt": null}"#).unwrap();
        assert_eq!(v.field::<u64>("n").unwrap(), 3);
        assert_eq!(v.field::<String>("s").unwrap(), "x");
        assert_eq!(v.field::<f64>("f").unwrap(), 1.5);
        assert_eq!(v.field::<f64>("n").unwrap(), 3.0);
        assert_eq!(v.opt_field::<u64>("opt").unwrap(), None);
        assert_eq!(v.opt_field::<u64>("missing").unwrap(), None);
        assert_eq!(v.field_or("missing", 9u64).unwrap(), 9);
        assert!(v.field::<u64>("missing").is_err());
        assert!(v.field::<u64>("s").is_err());
        assert!(v.field::<u32>("f").is_err());
    }

    #[test]
    fn tuple_and_vec_round_trip() {
        let pairs: Vec<(f64, u64)> = vec![(0.8, 50), (0.2, 500)];
        let j = pairs.to_json();
        assert_eq!(j.to_string_compact(), "[[0.8,50],[0.2,500]]");
        let back: Vec<(f64, u64)> = FromJson::from_json(&j).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn integers_and_floats_are_distinguished() {
        assert_eq!(parse("5").unwrap().to_string_compact(), "5");
        assert_eq!(parse("5.0").unwrap().to_string_compact(), "5.0");
        // Integers beyond i64 fall back to floats.
        assert!(matches!(
            parse("99999999999999999999").unwrap(),
            Json::Float(_)
        ));
    }
}
