//! Busy-time accumulator for a pool of resources.
//!
//! The paper's primary resource outputs are aggregate busy times:
//! `totcpus` / `totios` (all work) and `lockcpus` / `lockios` (lock
//! management work only). [`BusyTime`] sums exact tick durations and
//! derives utilizations against an observation interval.

use crate::time::{Dur, Time};

/// Accumulates busy durations for one class of work across any number of
/// resources.
#[derive(Clone, Copy, Debug, Default)]
pub struct BusyTime {
    total: Dur,
}

impl BusyTime {
    /// Zeroed accumulator.
    pub fn new() -> Self {
        BusyTime { total: Dur::ZERO }
    }

    /// Add one busy segment.
    pub fn add(&mut self, d: Dur) {
        self.total += d;
    }

    /// Total accumulated busy time.
    pub fn total(&self) -> Dur {
        self.total
    }

    /// Busy time in model units.
    pub fn units(&self) -> f64 {
        self.total.units()
    }

    /// Mean utilization of `n` resources over the interval `[start, end]`:
    /// `total / (n * (end - start))`. Returns 0 for an empty interval.
    pub fn utilization(&self, n: u64, start: Time, end: Time) -> f64 {
        let span = end.saturating_since(start);
        if span.is_zero() || n == 0 {
            return 0.0;
        }
        self.total.units() / (n as f64 * span.units())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_exactly() {
        let mut b = BusyTime::new();
        b.add(Dur::from_ticks(250));
        b.add(Dur::from_ticks(750));
        assert_eq!(b.total(), Dur::from_ticks(1000));
        assert_eq!(b.units(), 1.0);
    }

    #[test]
    fn utilization_of_pool() {
        let mut b = BusyTime::new();
        b.add(Dur::from_units(30.0));
        // 30 busy units across 2 resources over a 100-unit window = 15%.
        let u = b.utilization(2, Time::ZERO, Time::from_units(100.0));
        assert!((u - 0.15).abs() < 1e-12);
    }

    #[test]
    fn degenerate_interval_is_zero() {
        let mut b = BusyTime::new();
        b.add(Dur::from_units(5.0));
        assert_eq!(
            b.utilization(1, Time::from_units(3.0), Time::from_units(3.0)),
            0.0
        );
        assert_eq!(b.utilization(0, Time::ZERO, Time::from_units(1.0)), 0.0);
    }
}
