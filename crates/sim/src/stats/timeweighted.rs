//! Time-weighted level statistic.
//!
//! Tracks a piecewise-constant level (queue length, active-transaction
//! count, multiprogramming level) and integrates it over simulated time,
//! yielding the time-average of the level — the standard DES statistic for
//! quantities that persist between events.

use crate::time::Time;

/// Integrates a piecewise-constant level over time.
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    level: f64,
    last_change: Time,
    area: f64,
    start: Time,
    max_level: f64,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// Level 0 from time 0.
    pub fn new() -> Self {
        TimeWeighted {
            level: 0.0,
            last_change: Time::ZERO,
            area: 0.0,
            start: Time::ZERO,
            max_level: 0.0,
        }
    }

    /// Record that the level changed to `level` at time `now`. Times must
    /// be non-decreasing across calls.
    pub fn record(&mut self, now: Time, level: f64) {
        debug_assert!(now >= self.last_change, "time went backwards");
        self.area += self.level * now.since(self.last_change).units();
        self.level = level;
        self.last_change = now;
        self.max_level = self.max_level.max(level);
    }

    /// Current level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Largest level ever recorded.
    pub fn max_level(&self) -> f64 {
        self.max_level
    }

    /// Time-average of the level over `[start, now]`, extending the last
    /// level to `now`. Returns the current level for an empty interval.
    pub fn mean_at(&self, now: Time) -> f64 {
        let span = now.saturating_since(self.start).units();
        // lint:allow(D003): empty-interval guard — saturating_since
        // returns exactly 0.0 when now <= start, and any non-zero span
        // must divide the area below
        if span == 0.0 {
            return self.level;
        }
        let tail = self.level * now.saturating_since(self.last_change).units();
        (self.area + tail) / span
    }

    /// Restart measurement at `now` with the current level (warm-up reset).
    pub fn reset(&mut self, now: Time) {
        self.area = 0.0;
        self.start = now;
        self.last_change = now;
        self.max_level = self.level;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_level() {
        let mut tw = TimeWeighted::new();
        tw.record(Time::ZERO, 3.0);
        assert!((tw.mean_at(Time::from_units(10.0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn step_function_average() {
        let mut tw = TimeWeighted::new();
        tw.record(Time::ZERO, 0.0);
        tw.record(Time::from_units(2.0), 4.0); // level 0 for 2u
        tw.record(Time::from_units(6.0), 1.0); // level 4 for 4u
                                               // level 1 for 4u more -> mean = (0*2 + 4*4 + 1*4) / 10 = 2.0
        assert!((tw.mean_at(Time::from_units(10.0)) - 2.0).abs() < 1e-12);
        assert_eq!(tw.max_level(), 4.0);
    }

    #[test]
    fn reset_discards_history() {
        let mut tw = TimeWeighted::new();
        tw.record(Time::ZERO, 100.0);
        tw.record(Time::from_units(5.0), 2.0);
        tw.reset(Time::from_units(5.0));
        assert!((tw.mean_at(Time::from_units(15.0)) - 2.0).abs() < 1e-12);
        assert_eq!(tw.max_level(), 2.0);
    }

    #[test]
    fn empty_interval_returns_current_level() {
        let mut tw = TimeWeighted::new();
        tw.record(Time::ZERO, 7.0);
        assert_eq!(tw.mean_at(Time::ZERO), 7.0);
    }
}
