//! Fixed-boundary histogram with percentile queries.
//!
//! Used for response-time distributions: the paper reports only means, but
//! distribution tails are where granularity effects (blocking of large
//! transactions) show up, so the harness records them as an extension.

/// Histogram over `[0, upper)` with `buckets` equal-width buckets plus an
/// overflow bucket.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    width: f64,
    upper: f64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram covering `[0, upper)` with `buckets` buckets.
    ///
    /// # Panics
    /// Panics if `buckets == 0` or `upper <= 0`.
    pub fn new(upper: f64, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(upper > 0.0, "upper bound must be positive");
        Histogram {
            counts: vec![0; buckets],
            width: upper / buckets as f64,
            upper,
            overflow: 0,
            total: 0,
        }
    }

    /// Restore fresh-construction semantics in place, reusing the bucket
    /// storage when the count is unchanged: after this the histogram is
    /// observationally identical to `Histogram::new(upper, buckets)`.
    ///
    /// # Panics
    /// Panics if `buckets == 0` or `upper <= 0`.
    pub fn reset(&mut self, upper: f64, buckets: usize) {
        assert!(buckets > 0, "need at least one bucket");
        assert!(upper > 0.0, "upper bound must be positive");
        if self.counts.len() == buckets {
            self.counts.fill(0);
        } else {
            self.counts.clear();
            self.counts.resize(buckets, 0);
        }
        self.width = upper / buckets as f64;
        self.upper = upper;
        self.overflow = 0;
        self.total = 0;
    }

    /// Record one observation (negative values clamp to bucket 0).
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x >= self.upper {
            self.overflow += 1;
        } else {
            let idx = ((x.max(0.0)) / self.width) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Upper edge of the bucket containing the `q`-quantile
    /// (`0 <= q <= 1`). Returns `None` if empty; returns `upper` if the
    /// quantile falls in the overflow bucket.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some((i as f64 + 1.0) * self.width);
            }
        }
        Some(self.upper)
    }

    /// Iterate `(bucket_upper_edge, count)` pairs, excluding overflow.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| ((i as f64 + 1.0) * self.width, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_right_buckets() {
        let mut h = Histogram::new(10.0, 10);
        h.record(0.5);
        h.record(9.9);
        h.record(10.0); // overflow
        h.record(-1.0); // clamps to bucket 0
        assert_eq!(h.total(), 4);
        assert_eq!(h.overflow(), 1);
        let counts: Vec<u64> = h.buckets().map(|(_, c)| c).collect();
        assert_eq!(counts[0], 2);
        assert_eq!(counts[9], 1);
    }

    #[test]
    fn reset_matches_fresh_construction() {
        let mut h = Histogram::new(10.0, 10);
        for i in 0..50 {
            h.record(f64::from(i) * 0.3);
        }
        // Same geometry: bucket storage is reused.
        h.reset(10.0, 10);
        assert_eq!(h.total(), 0);
        assert_eq!(h.overflow(), 0);
        assert!(h.buckets().all(|(_, c)| c == 0));
        // Changed geometry: widths and bucket count follow the new shape.
        h.reset(20.0, 5);
        h.record(19.9);
        h.record(20.0);
        let fresh_counts: Vec<u64> = Histogram::new(20.0, 5).buckets().map(|(_, c)| c).collect();
        assert_eq!(fresh_counts.len(), 5);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.buckets().map(|(_, c)| c).sum::<u64>(), 1);
    }

    #[test]
    fn quantiles_of_uniform_fill() {
        let mut h = Histogram::new(100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() <= 1.0, "median bucket edge {median}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 - 99.0).abs() <= 1.0, "p99 bucket edge {p99}");
        assert_eq!(h.quantile(0.0), Some(1.0));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new(1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn overflow_quantile_reports_upper() {
        let mut h = Histogram::new(1.0, 4);
        for _ in 0..10 {
            h.record(5.0);
        }
        assert_eq!(h.quantile(0.5), Some(1.0));
    }
}
