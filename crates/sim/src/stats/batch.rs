//! Batch-means estimation.
//!
//! A single long simulation run produces autocorrelated observations
//! (successive response times share queue state). The batch-means method
//! groups consecutive observations into fixed-size batches and treats the
//! batch averages as approximately independent samples, giving an honest
//! confidence interval for the steady-state mean from one run.

use super::tally::Tally;

/// Groups a stream of observations into fixed-size batches and summarizes
/// batch means.
#[derive(Clone, Debug)]
pub struct BatchMeans {
    batch_size: u64,
    in_batch: u64,
    batch_sum: f64,
    batches: Tally,
}

impl BatchMeans {
    /// Create with the given batch size.
    ///
    /// # Panics
    /// Panics if `batch_size == 0`.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            in_batch: 0,
            batch_sum: 0.0,
            batches: Tally::new(),
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.batch_sum += x;
        self.in_batch += 1;
        if self.in_batch == self.batch_size {
            self.batches.record(self.batch_sum / self.batch_size as f64);
            self.batch_sum = 0.0;
            self.in_batch = 0;
        }
    }

    /// Number of completed batches.
    pub fn batches(&self) -> u64 {
        self.batches.count()
    }

    /// Grand mean over completed batches (the partial batch is excluded so
    /// every batch mean has equal weight).
    pub fn mean(&self) -> f64 {
        self.batches.mean()
    }

    /// 95% confidence half-width for the steady-state mean, based on the
    /// completed batch means. Returns 0 with fewer than two batches.
    pub fn ci95_half_width(&self) -> f64 {
        self.batches.ci95_half_width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grand_mean_matches_observation_mean_for_full_batches() {
        let mut bm = BatchMeans::new(10);
        for i in 0..100 {
            bm.record(i as f64);
        }
        assert_eq!(bm.batches(), 10);
        assert!((bm.mean() - 49.5).abs() < 1e-12);
    }

    #[test]
    fn partial_batch_is_excluded() {
        let mut bm = BatchMeans::new(10);
        for _ in 0..10 {
            bm.record(1.0);
        }
        for _ in 0..5 {
            bm.record(1000.0); // incomplete batch — must not pollute mean
        }
        assert_eq!(bm.batches(), 1);
        assert_eq!(bm.mean(), 1.0);
    }

    #[test]
    fn ci_shrinks_with_more_batches() {
        let mut narrow = BatchMeans::new(5);
        let mut wide = BatchMeans::new(5);
        let noise = |i: u64| ((i * 2_654_435_761) % 100) as f64;
        for i in 0..50 {
            wide.record(noise(i));
        }
        for i in 0..5_000 {
            narrow.record(noise(i));
        }
        assert!(narrow.ci95_half_width() < wide.ci95_half_width());
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        let _ = BatchMeans::new(0);
    }
}
