//! Batch-means estimation.
//!
//! A single long simulation run produces autocorrelated observations
//! (successive response times share queue state). The batch-means method
//! groups consecutive observations into fixed-size batches and treats the
//! batch averages as approximately independent samples, giving an honest
//! confidence interval for the steady-state mean from one run.
//!
//! Two flavors:
//!
//! * [`BatchMeans::new`] — fixed batch size, streaming Welford over the
//!   batch means. O(1) memory, but the analyst must guess a batch size
//!   large enough for the means to decorrelate.
//! * [`BatchMeans::with_doubling`] — bounded storage with **batch-size
//!   doubling**: completed batch means are retained up to a cap; at the
//!   cap, adjacent means are pairwise-merged and the batch size doubles.
//!   The batch size thus grows with the stream (size ≈ `n / cap`), which
//!   is what makes the estimator consistent for runs of unknown length —
//!   at 10⁸+ events the batches are millions of observations wide while
//!   memory stays O(cap). This is the flavor the production engine wires
//!   into response-time collection.

use super::tally::Tally;

/// Groups a stream of observations into consecutive batches and
/// summarizes batch means.
#[derive(Clone, Debug)]
pub struct BatchMeans {
    batch_size: u64,
    in_batch: u64,
    batch_sum: f64,
    /// Fixed-size mode (`cap == 0`): streaming summary of batch means.
    batches: Tally,
    /// Doubling mode (`cap > 0`): retained batch means, length < `cap`,
    /// capacity preallocated to `cap` so recording never allocates.
    means: Vec<f64>,
    cap: usize,
}

impl BatchMeans {
    /// Create with the given fixed batch size.
    ///
    /// # Panics
    /// Panics if `batch_size == 0`.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            in_batch: 0,
            batch_sum: 0.0,
            batches: Tally::new(),
            means: Vec::new(),
            cap: 0,
        }
    }

    /// Create in doubling mode: batches start at `initial_batch_size`
    /// observations; whenever `max_batches` batch means have accumulated,
    /// adjacent pairs are merged and the batch size doubles. Memory is
    /// O(`max_batches`) forever (preallocated here — the record path is
    /// allocation-free).
    ///
    /// # Panics
    /// Panics if `initial_batch_size == 0`, or `max_batches` is odd or
    /// smaller than 4 (pairwise merging needs an even cap, and fewer than
    /// 4 batches cannot give a useful interval).
    pub fn with_doubling(initial_batch_size: u64, max_batches: usize) -> Self {
        assert!(initial_batch_size > 0, "batch size must be positive");
        assert!(
            max_batches >= 4 && max_batches.is_multiple_of(2),
            "max_batches must be even and at least 4"
        );
        BatchMeans {
            batch_size: initial_batch_size,
            in_batch: 0,
            batch_sum: 0.0,
            batches: Tally::new(),
            means: Vec::with_capacity(max_batches),
            cap: max_batches,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.batch_sum += x;
        self.in_batch += 1;
        if self.in_batch == self.batch_size {
            let mean = self.batch_sum / self.batch_size as f64;
            self.batch_sum = 0.0;
            self.in_batch = 0;
            if self.cap == 0 {
                self.batches.record(mean);
                return;
            }
            self.means.push(mean);
            if self.means.len() == self.cap {
                // Pairwise merge: every retained mean keeps representing
                // exactly `batch_size` observations after the doubling,
                // so the grand mean stays an equal-weight average.
                for i in 0..self.cap / 2 {
                    self.means[i] = (self.means[2 * i] + self.means[2 * i + 1]) / 2.0;
                }
                self.means.truncate(self.cap / 2);
                self.batch_size *= 2;
            }
        }
    }

    /// Number of completed (currently retained, in doubling mode)
    /// batches.
    pub fn batches(&self) -> u64 {
        if self.cap == 0 {
            self.batches.count()
        } else {
            self.means.len() as u64
        }
    }

    /// Observations per batch (grows by doubling in doubling mode).
    pub fn batch_size(&self) -> u64 {
        self.batch_size
    }

    /// Streaming summary (count / mean / variance) of the retained batch
    /// means.
    fn summary(&self) -> Tally {
        if self.cap == 0 {
            return self.batches.clone();
        }
        let mut t = Tally::new();
        for &m in &self.means {
            t.record(m);
        }
        t
    }

    /// Grand mean over completed batches (the partial batch is excluded so
    /// every batch mean has equal weight).
    pub fn mean(&self) -> f64 {
        self.summary().mean()
    }

    /// Sample variance of the retained batch means (0 with fewer than two
    /// batches).
    pub fn variance(&self) -> f64 {
        self.summary().variance()
    }

    /// 95% confidence half-width for the steady-state mean, based on the
    /// completed batch means. Returns 0 with fewer than two batches.
    pub fn ci95_half_width(&self) -> f64 {
        self.summary().ci95_half_width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grand_mean_matches_observation_mean_for_full_batches() {
        let mut bm = BatchMeans::new(10);
        for i in 0..100 {
            bm.record(i as f64);
        }
        assert_eq!(bm.batches(), 10);
        assert!((bm.mean() - 49.5).abs() < 1e-12);
    }

    #[test]
    fn partial_batch_is_excluded() {
        let mut bm = BatchMeans::new(10);
        for _ in 0..10 {
            bm.record(1.0);
        }
        for _ in 0..5 {
            bm.record(1000.0); // incomplete batch — must not pollute mean
        }
        assert_eq!(bm.batches(), 1);
        assert_eq!(bm.mean(), 1.0);
    }

    #[test]
    fn ci_shrinks_with_more_batches() {
        let mut narrow = BatchMeans::new(5);
        let mut wide = BatchMeans::new(5);
        let noise = |i: u64| ((i * 2_654_435_761) % 100) as f64;
        for i in 0..50 {
            wide.record(noise(i));
        }
        for i in 0..5_000 {
            narrow.record(noise(i));
        }
        assert!(narrow.ci95_half_width() < wide.ci95_half_width());
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        let _ = BatchMeans::new(0);
    }

    #[test]
    #[should_panic(expected = "max_batches")]
    fn odd_cap_rejected() {
        let _ = BatchMeans::with_doubling(1, 7);
    }

    #[test]
    #[should_panic(expected = "max_batches")]
    fn tiny_cap_rejected() {
        let _ = BatchMeans::with_doubling(1, 2);
    }

    #[test]
    fn doubling_invariants_hold_across_merges() {
        // cap = 8, initial size 4: after n observations the batch size is
        // 4·2^t with t chosen so the retained count stays below the cap,
        // and retained · size + partial accounts for every observation.
        let mut bm = BatchMeans::with_doubling(4, 8);
        let mut recorded = 0u64;
        for i in 0..10_000u64 {
            bm.record(i as f64);
            recorded += 1;
            let size = bm.batch_size();
            let kept = bm.batches();
            assert!(kept < 8, "cap breached: {kept} batches");
            assert!(size.is_power_of_two() && size >= 4, "size {size}");
            assert!(kept * size <= recorded, "over-counted observations");
            assert!(
                recorded < (kept + 1) * size,
                "partial batch larger than a batch: n={recorded} kept={kept} size={size}"
            );
        }
        // 10_000 observations at cap 8 must have doubled well past 4.
        assert!(bm.batch_size() >= 10_000 / 8, "size {}", bm.batch_size());
    }

    #[test]
    fn doubling_grand_mean_matches_observation_mean() {
        // Feed exactly 2^t full initial batches: every observation lands
        // in a completed batch at every doubling level, so the grand mean
        // is the plain average regardless of how many merges happened.
        let mut bm = BatchMeans::with_doubling(2, 4);
        let n = 2u64.pow(12);
        for i in 0..n {
            bm.record(i as f64);
        }
        let expect = (n - 1) as f64 / 2.0;
        assert!(
            (bm.mean() - expect).abs() < 1e-9,
            "mean {} vs {expect}",
            bm.mean()
        );
    }

    #[test]
    fn doubling_mean_matches_fixed_mode_at_same_effective_size() {
        // After the merges settle, doubling mode with initial size 1 that
        // grew to size 2^t must agree with fixed mode at batch size 2^t
        // on a stream that fills both exactly.
        let noise = |i: u64| ((i * 2_654_435_761) % 1000) as f64;
        let mut doubling = BatchMeans::with_doubling(1, 8);
        for i in 0..4096 {
            doubling.record(noise(i));
        }
        let grown = doubling.batch_size();
        let mut fixed = BatchMeans::new(grown);
        for i in 0..4096 {
            fixed.record(noise(i));
        }
        assert_eq!(doubling.batches(), fixed.batches());
        assert!((doubling.mean() - fixed.mean()).abs() < 1e-9);
        assert!((doubling.variance() - fixed.variance()).abs() < 1e-9);
        assert!((doubling.ci95_half_width() - fixed.ci95_half_width()).abs() < 1e-9);
    }

    #[test]
    fn doubling_mode_never_reallocates() {
        let mut bm = BatchMeans::with_doubling(1, 16);
        let cap_before = bm.means.capacity();
        for i in 0..100_000u64 {
            bm.record(i as f64);
        }
        assert_eq!(bm.means.capacity(), cap_before, "record path reallocated");
    }
}
